//! Workspace umbrella crate: re-exports every Banger crate so integration
//! tests and examples can use one import root.

pub use banger as core;
pub use banger_calc as calc;
pub use banger_codegen as codegen;
pub use banger_exec as exec;
pub use banger_machine as machine;
pub use banger_sched as sched;
pub use banger_sim as sim;
pub use banger_taskgraph as taskgraph;
