//! Tree-walking interpreter for PITS programs — the engine behind
//! Banger's "trial run" button.
//!
//! A trial run supplies values for the task's `in` variables, executes the
//! body (with a step budget guarding against runaway loops), and returns
//! the `out` variables plus everything `print`ed and an operation count.
//! The operation count doubles as a measured task weight for the
//! scheduler, giving the instant feedback loop the paper emphasises.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::builtins;
use crate::error::RunError;
use crate::value::{to_index, Value};
use std::collections::BTreeMap;

/// Interpreter configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterpConfig {
    /// Maximum primitive steps before aborting with
    /// [`RunError::StepLimit`]. One step ≈ one statement or operator.
    pub max_steps: u64,
    /// Force the tree-walking reference interpreter instead of the
    /// compiled VM ([`crate::vm`]). Both engines produce identical
    /// [`Outcome`]s; the tree-walker is kept as the executable
    /// specification (and for debugging the VM itself). Selected by
    /// `banger trial --reference`.
    pub reference: bool,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_steps: 10_000_000,
            reference: false,
        }
    }
}

/// The result of a trial run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Values of the task's `out` variables.
    pub outputs: BTreeMap<String, Value>,
    /// Lines produced by `print` statements, in order.
    pub prints: Vec<String>,
    /// Abstract operations executed — a measured task weight.
    pub ops: u64,
}

/// Runs `prog` with the given inputs under the default configuration.
pub fn run(prog: &Program, inputs: &BTreeMap<String, Value>) -> Result<Outcome, RunError> {
    run_with(prog, inputs, InterpConfig::default())
}

/// Runs `prog` with explicit configuration.
pub fn run_with(
    prog: &Program,
    inputs: &BTreeMap<String, Value>,
    config: InterpConfig,
) -> Result<Outcome, RunError> {
    let mut env: BTreeMap<String, Value> = BTreeMap::new();
    for (name, v) in builtins::CONSTANTS {
        env.insert(name.to_string(), Value::Num(v));
    }
    for name in &prog.inputs {
        let v = inputs
            .get(name)
            .ok_or_else(|| RunError::MissingInput(name.clone()))?;
        env.insert(name.clone(), v.clone());
    }
    let mut st = State {
        env,
        prints: Vec::new(),
        ops: 0,
        max_steps: config.max_steps,
    };
    st.exec_block(&prog.body)?;

    let mut outputs = BTreeMap::new();
    for name in &prog.outputs {
        let v = st
            .env
            .get(name)
            .ok_or_else(|| RunError::Undefined(name.clone()))?;
        outputs.insert(name.clone(), v.clone());
    }
    Ok(Outcome {
        outputs,
        prints: st.prints,
        ops: st.ops,
    })
}

/// Evaluates a bare expression against an environment — the calculator
/// panel's immediate mode ("some means of obtaining numerical results,
/// upon demand").
pub fn eval_expr(expr: &Expr, vars: &BTreeMap<String, Value>) -> Result<Value, RunError> {
    let mut env: BTreeMap<String, Value> = BTreeMap::new();
    for (name, v) in builtins::CONSTANTS {
        env.insert(name.to_string(), Value::Num(v));
    }
    env.extend(vars.clone());
    let mut st = State {
        env,
        prints: Vec::new(),
        ops: 0,
        max_steps: InterpConfig::default().max_steps,
    };
    st.eval(expr)
}

struct State {
    env: BTreeMap<String, Value>,
    prints: Vec<String>,
    ops: u64,
    max_steps: u64,
}

impl State {
    fn tick(&mut self, cost: u64) -> Result<(), RunError> {
        self.ops += cost;
        if self.ops > self.max_steps {
            Err(RunError::StepLimit(self.max_steps))
        } else {
            Ok(())
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<(), RunError> {
        for s in stmts {
            self.exec(s)?;
        }
        Ok(())
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<(), RunError> {
        self.tick(1)?;
        match stmt {
            Stmt::Assign { var, expr, .. } => {
                let v = self.eval(expr)?;
                self.env.insert(var.clone(), v);
            }
            Stmt::AssignIndex {
                var, index, expr, ..
            } => {
                let idxv = self.eval(index)?.as_num("array index")?;
                let val = self.eval(expr)?.as_num("array element")?;
                let arr = match self.env.get_mut(var) {
                    // CoW write gate: copy the buffer only if it is still
                    // shared with another binding (no tick either way).
                    Some(Value::Array(a)) => crate::value::make_mut_counted(a),
                    Some(Value::Num(_)) => return Err(RunError::NotAnArray(var.clone())),
                    None => return Err(RunError::Undefined(var.clone())),
                };
                let i = to_index(idxv, var, arr.len())?;
                arr[i] = val;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                if self.eval(cond)?.truthy("if condition")? {
                    self.exec_block(then_body)?;
                } else {
                    self.exec_block(else_body)?;
                }
            }
            Stmt::While { cond, body, .. } => {
                while self.eval(cond)?.truthy("while condition")? {
                    self.exec_block(body)?;
                    self.tick(1)?;
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let from = self.eval(from)?.as_num("for start")?;
                let to = self.eval(to)?.as_num("for end")?;
                let mut i = from.round();
                let end = to.round();
                while i <= end {
                    self.env.insert(var.clone(), Value::Num(i));
                    self.exec_block(body)?;
                    self.tick(1)?;
                    i += 1.0;
                }
            }
            Stmt::Print { expr: e, .. } => {
                let v = self.eval(e)?;
                self.prints.push(v.to_string());
            }
        }
        Ok(())
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, RunError> {
        match expr {
            Expr::Num(v) => Ok(Value::Num(*v)),
            Expr::Var(name) => self
                .env
                .get(name)
                .cloned()
                .ok_or_else(|| RunError::Undefined(name.clone())),
            Expr::Index(name, idx) => {
                let idxv = self.eval(idx)?.as_num("array index")?;
                let arr = match self.env.get(name) {
                    Some(Value::Array(a)) => a,
                    Some(Value::Num(_)) => return Err(RunError::NotAnArray(name.clone())),
                    None => return Err(RunError::Undefined(name.clone())),
                };
                let i = to_index(idxv, name, arr.len())?;
                let v = arr[i];
                self.tick(1)?;
                Ok(Value::Num(v))
            }
            Expr::Call(name, args) => {
                let b = builtins::lookup(name)
                    .ok_or_else(|| RunError::UnknownFunction(name.clone()))?;
                if args.len() != b.arity {
                    return Err(RunError::BadArity {
                        name: name.clone(),
                        expected: b.arity,
                        got: args.len(),
                    });
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.tick(b.cost)?;
                builtins::apply(name, &vals)
            }
            Expr::Bin(op, lhs, rhs) => {
                // Short-circuit logic first.
                match op {
                    BinOp::And => {
                        let l = self.eval(lhs)?.truthy("and operand")?;
                        self.tick(1)?;
                        if !l {
                            return Ok(Value::Num(0.0));
                        }
                        let r = self.eval(rhs)?.truthy("and operand")?;
                        return Ok(Value::Num(if r { 1.0 } else { 0.0 }));
                    }
                    BinOp::Or => {
                        let l = self.eval(lhs)?.truthy("or operand")?;
                        self.tick(1)?;
                        if l {
                            return Ok(Value::Num(1.0));
                        }
                        let r = self.eval(rhs)?.truthy("or operand")?;
                        return Ok(Value::Num(if r { 1.0 } else { 0.0 }));
                    }
                    _ => {}
                }
                let l = self.eval(lhs)?.as_num("left operand")?;
                let r = self.eval(rhs)?.as_num("right operand")?;
                self.tick(1)?;
                let v = match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => l / r, // IEEE semantics: x/0 = inf, like a calculator
                    BinOp::Mod => l.rem_euclid(r),
                    BinOp::Pow => l.powf(r),
                    BinOp::Eq => bool_num(l == r),
                    BinOp::Ne => bool_num(l != r),
                    BinOp::Lt => bool_num(l < r),
                    BinOp::Le => bool_num(l <= r),
                    BinOp::Gt => bool_num(l > r),
                    BinOp::Ge => bool_num(l >= r),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                Ok(Value::Num(v))
            }
            Expr::Un(op, inner) => {
                let v = self.eval(inner)?;
                self.tick(1)?;
                match op {
                    UnOp::Neg => Ok(Value::Num(-v.as_num("negation operand")?)),
                    UnOp::Not => Ok(Value::Num(bool_num(!v.truthy("not operand")?))),
                }
            }
        }
    }
}

fn bool_num(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn inputs(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    const SQRT_SRC: &str = "\
task SquareRoot
  in a
  out x
  local g, prev
begin
  g := a / 2
  prev := 0
  while abs(g - prev) > 1e-12 do
    prev := g
    g := (g + a / g) / 2
  end
  x := g
end";

    #[test]
    fn figure4_newton_raphson_sqrt() {
        let p = parse_program(SQRT_SRC).unwrap();
        for a in [2.0, 9.0, 100.0, 12345.678] {
            let out = run(&p, &inputs(&[("a", Value::Num(a))])).unwrap();
            let x = out.outputs["x"].as_num("x").unwrap();
            assert!((x - a.sqrt()).abs() < 1e-9, "sqrt({a}) = {x}");
            assert!(out.ops > 0);
        }
    }

    #[test]
    fn op_count_grows_with_work() {
        let p = parse_program(SQRT_SRC).unwrap();
        let cheap = run(&p, &inputs(&[("a", Value::Num(1.0))])).unwrap();
        let costly = run(&p, &inputs(&[("a", Value::Num(1e12))])).unwrap();
        assert!(costly.ops > cheap.ops, "{} !> {}", costly.ops, cheap.ops);
    }

    #[test]
    fn missing_input_error() {
        let p = parse_program(SQRT_SRC).unwrap();
        assert_eq!(
            run(&p, &BTreeMap::new()),
            Err(RunError::MissingInput("a".into()))
        );
    }

    #[test]
    fn unassigned_output_error() {
        let p = parse_program("task T in a out x begin a := a end").unwrap();
        assert_eq!(
            run(&p, &inputs(&[("a", Value::Num(1.0))])),
            Err(RunError::Undefined("x".into()))
        );
    }

    #[test]
    fn step_limit_stops_runaway_loop() {
        let p = parse_program("task T out x begin x := 0 while 1 do x := x + 1 end end").unwrap();
        let err = run_with(
            &p,
            &BTreeMap::new(),
            InterpConfig {
                max_steps: 1000,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, RunError::StepLimit(1000));
    }

    #[test]
    fn if_else_branches() {
        let p = parse_program("task T in a out s begin if a >= 0 then s := 1 else s := -1 end end")
            .unwrap();
        let pos = run(&p, &inputs(&[("a", Value::Num(3.0))])).unwrap();
        assert_eq!(pos.outputs["s"], Value::Num(1.0));
        let neg = run(&p, &inputs(&[("a", Value::Num(-3.0))])).unwrap();
        assert_eq!(neg.outputs["s"], Value::Num(-1.0));
    }

    #[test]
    fn for_loop_sums() {
        let p = parse_program(
            "task T in n out s local i begin s := 0 for i := 1 to n do s := s + i end end",
        )
        .unwrap();
        let out = run(&p, &inputs(&[("n", Value::Num(100.0))])).unwrap();
        assert_eq!(out.outputs["s"], Value::Num(5050.0));
    }

    #[test]
    fn for_loop_zero_iterations() {
        let p = parse_program(
            "task T out s local i begin s := 0 for i := 1 to 0 do s := s + 1 end end",
        )
        .unwrap();
        let out = run(&p, &BTreeMap::new()).unwrap();
        assert_eq!(out.outputs["s"], Value::Num(0.0));
    }

    #[test]
    fn arrays_roundtrip() {
        let p = parse_program(
            "task T in v out w local i, n begin \
             n := len(v) \
             w := zeros(n) \
             for i := 1 to n do w[i] := v[i] * 2 end \
             end",
        )
        .unwrap();
        let out = run(&p, &inputs(&[("v", Value::array(vec![1.0, 2.0, 3.0]))])).unwrap();
        assert_eq!(out.outputs["w"], Value::array(vec![2.0, 4.0, 6.0]));
    }

    #[test]
    fn array_errors() {
        let p = parse_program("task T in v out x begin x := v[5] end").unwrap();
        let err = run(&p, &inputs(&[("v", Value::array(vec![1.0]))])).unwrap_err();
        assert!(matches!(err, RunError::IndexOutOfRange { .. }));

        let p2 = parse_program("task T in v out x begin v[1] := 0 x := 0 end").unwrap();
        let err2 = run(&p2, &inputs(&[("v", Value::Num(3.0))])).unwrap_err();
        assert_eq!(err2, RunError::NotAnArray("v".into()));
    }

    #[test]
    fn prints_collected() {
        let p = parse_program("task T in a begin print a print a * 2 end").unwrap();
        let out = run(&p, &inputs(&[("a", Value::Num(5.0))])).unwrap();
        assert_eq!(out.prints, vec!["5", "10"]);
    }

    #[test]
    fn constants_available() {
        let e = parse_expr("2 * pi").unwrap();
        let v = eval_expr(&e, &BTreeMap::new()).unwrap();
        assert!((v.as_num("x").unwrap() - std::f64::consts::TAU).abs() < 1e-12);
    }

    #[test]
    fn immediate_mode_with_variables() {
        let e = parse_expr("sqrt(x ^ 2 + y ^ 2)").unwrap();
        let v = eval_expr(
            &e,
            &inputs(&[("x", Value::Num(3.0)), ("y", Value::Num(4.0))]),
        )
        .unwrap();
        assert_eq!(v, Value::Num(5.0));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // `0 and (1/0 = boom)` — RHS has an undefined var; must not be hit.
        let e = parse_expr("0 and nosuchvar").unwrap();
        assert_eq!(eval_expr(&e, &BTreeMap::new()).unwrap(), Value::Num(0.0));
        let e2 = parse_expr("1 or nosuchvar").unwrap();
        assert_eq!(eval_expr(&e2, &BTreeMap::new()).unwrap(), Value::Num(1.0));
    }

    #[test]
    fn division_by_zero_is_calculator_style() {
        let e = parse_expr("1 / 0").unwrap();
        let v = eval_expr(&e, &BTreeMap::new()).unwrap();
        assert!(v.as_num("x").unwrap().is_infinite());
    }

    #[test]
    fn modulo_is_euclidean() {
        let e = parse_expr("-7 % 3").unwrap();
        // rem_euclid of the *negated* 7: note `-7 % 3` parses as -(7) % 3
        // with unary minus binding tighter than %? No: unary < prod, so
        // it's (-7) % 3 = 2 under Euclidean semantics.
        assert_eq!(eval_expr(&e, &BTreeMap::new()).unwrap(), Value::Num(2.0));
    }

    #[test]
    fn comparison_returns_zero_one() {
        for (src, want) in [
            ("3 > 2", 1.0),
            ("2 > 3", 0.0),
            ("2 = 2", 1.0),
            ("2 <> 2", 0.0),
            ("not 0", 1.0),
            ("not 5", 0.0),
        ] {
            let e = parse_expr(src).unwrap();
            assert_eq!(
                eval_expr(&e, &BTreeMap::new()).unwrap(),
                Value::Num(want),
                "{src}"
            );
        }
    }

    #[test]
    fn undefined_variable_error() {
        let e = parse_expr("q + 1").unwrap();
        assert_eq!(
            eval_expr(&e, &BTreeMap::new()),
            Err(RunError::Undefined("q".into()))
        );
    }

    #[test]
    fn bad_arity_error() {
        let e = parse_expr("sqrt(1, 2)").unwrap();
        assert!(matches!(
            eval_expr(&e, &BTreeMap::new()),
            Err(RunError::BadArity { .. })
        ));
    }
}
