//! Register VM for compiled PITS programs.
//!
//! Executes the flat op stream produced by [`crate::compile`] over a
//! reusable `Vec<Value>` frame. Variable references are plain vector
//! indexing (the compiler resolved every name to a dense slot), builtin
//! calls are direct function-pointer invocations, and the frame, its
//! init mask, and the print log live inside a [`Vm`] that worker threads
//! keep across task executions — so the steady-state hot loop performs
//! no allocation beyond what the program's own values require.
//!
//! The observable contract is *identical* to the tree-walker
//! ([`crate::interp`]): same `Outcome` (outputs, prints, and — crucially
//! for the scheduler, which consumes `ops` as a measured task weight —
//! the same op count), same errors, and `StepLimit` at the same budget.
//! `tests/prop_vm.rs` enforces this differentially over generated
//! programs.

use crate::ast::BinOp;
use crate::builtins;
use crate::compile::{compile, ctx, CompiledProgram, Op};
use crate::error::RunError;
use crate::interp::{InterpConfig, Outcome};
use crate::value::{to_index, Value};
use std::collections::BTreeMap;

/// The result of a dense-port run ([`Vm::run_dense`]): outputs in
/// `CompiledProgram::output_slots` order instead of a name-keyed map, so
/// the executor can route values by integer index without touching
/// strings. `ops` is the same measured weight an [`Outcome`] carries.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseOutcome {
    /// Output values, positionally aligned with `prog.output_slots`.
    pub outputs: Vec<Value>,
    /// Lines produced by `print` statements, in order.
    pub prints: Vec<String>,
    /// Abstract operations executed — a measured task weight.
    pub ops: u64,
}

/// A reusable execution frame. Cheap to create; cheaper to keep.
#[derive(Debug, Default)]
pub struct Vm {
    regs: Vec<Value>,
    init: Vec<bool>,
}

impl Vm {
    /// A VM with an empty frame (grown on first run).
    pub fn new() -> Self {
        Vm::default()
    }

    /// Resets the frame and preloads constants and the literal pool.
    /// `clear` + `resize` keeps the allocation across runs.
    fn reset(&mut self, prog: &CompiledProgram) {
        self.regs.clear();
        self.regs.resize(prog.frame_size, Value::Num(0.0));
        self.init.clear();
        self.init.resize(prog.frame_size, false);

        for &(slot, v) in &prog.const_slots {
            self.regs[slot as usize] = Value::Num(v);
            self.init[slot as usize] = true;
        }
        // The literal pool: read-only slots ops reference directly.
        for &(slot, v) in &prog.lit_slots {
            self.regs[slot as usize] = Value::Num(v);
            self.init[slot as usize] = true;
        }
    }

    /// Runs a compiled program. The frame is recycled between calls.
    pub fn run(
        &mut self,
        prog: &CompiledProgram,
        inputs: &BTreeMap<String, Value>,
        config: InterpConfig,
    ) -> Result<Outcome, RunError> {
        self.reset(prog);
        for &slot in &prog.input_slots {
            let name = &prog.var_names[slot as usize];
            let v = inputs
                .get(name)
                .ok_or_else(|| RunError::MissingInput(name.clone()))?;
            self.regs[slot as usize] = v.clone();
            self.init[slot as usize] = true;
        }

        let mut prints = Vec::new();
        let ops = self.dispatch(prog, config.max_steps, &mut prints)?;

        let mut outputs = BTreeMap::new();
        for &slot in &prog.output_slots {
            let name = &prog.var_names[slot as usize];
            if !self.init[slot as usize] {
                return Err(RunError::Undefined(name.clone()));
            }
            outputs.insert(name.clone(), self.regs[slot as usize].clone());
        }
        Ok(Outcome {
            outputs,
            prints,
            ops,
        })
    }

    /// Runs a compiled program with positionally-bound inputs: `inputs[i]`
    /// feeds `prog.input_slots[i]` (the executor's dense-port fast path —
    /// no name lookups, every bind an `Arc` bump). Observable semantics —
    /// outputs, prints, ops, errors, `StepLimit` budget — are identical
    /// to [`Vm::run`] with the equivalent name-keyed map.
    pub fn run_dense(
        &mut self,
        prog: &CompiledProgram,
        inputs: &[Value],
        config: InterpConfig,
    ) -> Result<DenseOutcome, RunError> {
        debug_assert_eq!(inputs.len(), prog.input_slots.len());
        self.reset(prog);
        for (&slot, v) in prog.input_slots.iter().zip(inputs) {
            self.regs[slot as usize] = v.clone();
            self.init[slot as usize] = true;
        }

        let mut prints = Vec::new();
        let ops = self.dispatch(prog, config.max_steps, &mut prints)?;

        let mut outputs = Vec::with_capacity(prog.output_slots.len());
        for &slot in &prog.output_slots {
            if !self.init[slot as usize] {
                return Err(RunError::Undefined(prog.var_names[slot as usize].clone()));
            }
            outputs.push(self.regs[slot as usize].clone());
        }
        Ok(DenseOutcome {
            outputs,
            prints,
            ops,
        })
    }

    /// The dispatch loop. Returns the op count (the measured weight).
    fn dispatch(
        &mut self,
        prog: &CompiledProgram,
        max_steps: u64,
        prints: &mut Vec<String>,
    ) -> Result<u64, RunError> {
        let code = &prog.ops[..];
        let mut pc = 0usize;
        let mut ops: u64 = 0;

        macro_rules! tick {
            ($n:expr) => {{
                ops += $n;
                if ops > max_steps {
                    return Err(RunError::StepLimit(max_steps));
                }
            }};
        }
        macro_rules! put {
            ($dst:expr, $v:expr) => {{
                let d = $dst as usize;
                self.regs[d] = $v;
                self.init[d] = true;
            }};
        }
        // Reads a scalar the compiler guarantees is one (loop counters
        // and bounds after `CheckNumRound`).
        macro_rules! own_num {
            ($r:expr) => {
                match self.regs[$r as usize] {
                    Value::Num(v) => v,
                    Value::Array(_) => unreachable!("VM-owned register holds an array"),
                }
            };
        }
        // The tree-walker's variable read: `Undefined` on a never-
        // assigned name. Scratch and literal-pool registers are always
        // initialised, so for them this is a predictable no-op branch —
        // which is what lets the compiler pass named slots directly as
        // operands.
        macro_rules! check_init {
            ($r:expr) => {{
                let r = $r as usize;
                if !self.init[r] {
                    return Err(RunError::Undefined(
                        prog.var_names.get(r).cloned().unwrap_or_default(),
                    ));
                }
            }};
        }
        // Evaluates a fused 1–3-op scalar chain (`ChainSpec`), replaying
        // each constituent `BinNum`'s checks and ticks in order. The
        // non-chained operand of each stage keeps its original left/right
        // error context (`swap` = the chained value was the right-hand
        // operand, so the register operand is the left).
        macro_rules! chain_stage {
            ($v:expr, $op:expr, $other:expr, $swap:expr) => {{
                check_init!($other);
                if $swap {
                    let o = self.regs[$other as usize].as_num(ctx::LEFT_OPERAND)?;
                    tick!(1);
                    apply_bin($op, o, $v)
                } else {
                    let o = self.regs[$other as usize].as_num(ctx::RIGHT_OPERAND)?;
                    tick!(1);
                    apply_bin($op, $v, o)
                }
            }};
        }
        macro_rules! chain_eval {
            ($ch:expr) => {{
                let ch = $ch;
                check_init!(ch.a);
                let l = self.regs[ch.a as usize].as_num(ctx::LEFT_OPERAND)?;
                check_init!(ch.b);
                let r = self.regs[ch.b as usize].as_num(ctx::RIGHT_OPERAND)?;
                tick!(1);
                let mut v = apply_bin(ch.op1, l, r);
                if ch.len >= 2 {
                    v = chain_stage!(v, ch.op2, ch.c, ch.swap2);
                }
                if ch.len >= 3 {
                    v = chain_stage!(v, ch.op3, ch.d, ch.swap3);
                }
                v
            }};
        }

        while pc < code.len() {
            match code[pc] {
                Op::Tick(n) => tick!(n),
                Op::Const { dst, val } => put!(dst, Value::Num(val)),
                Op::Copy { dst, src } => {
                    let v = self.regs[src as usize].clone();
                    put!(dst, v);
                }
                Op::LoadVar { dst, slot } => {
                    if !self.init[slot as usize] {
                        return Err(RunError::Undefined(prog.var_names[slot as usize].clone()));
                    }
                    let v = self.regs[slot as usize].clone();
                    put!(dst, v);
                }
                Op::IndexGet { dst, slot, idx } => {
                    check_init!(idx);
                    let raw = self.regs[idx as usize].as_num(ctx::ARRAY_INDEX)?;
                    let name = &prog.var_names[slot as usize];
                    if !self.init[slot as usize] {
                        return Err(RunError::Undefined(name.clone()));
                    }
                    let v = match &self.regs[slot as usize] {
                        Value::Array(a) => a[to_index(raw, name, a.len())?],
                        Value::Num(_) => return Err(RunError::NotAnArray(name.clone())),
                    };
                    tick!(1);
                    put!(dst, Value::Num(v));
                }
                Op::IndexSet { slot, idx, val } => {
                    check_init!(idx);
                    let raw = self.regs[idx as usize].as_num(ctx::ARRAY_INDEX)?;
                    check_init!(val);
                    let v = self.regs[val as usize].as_num(ctx::ARRAY_ELEMENT)?;
                    let name = &prog.var_names[slot as usize];
                    if !self.init[slot as usize] {
                        return Err(RunError::Undefined(name.clone()));
                    }
                    match &mut self.regs[slot as usize] {
                        Value::Array(a) => {
                            let i = to_index(raw, name, a.len())?;
                            // CoW write gate: copies the buffer only if it
                            // is still shared (no tick either way).
                            crate::value::make_mut_counted(a)[i] = v;
                        }
                        Value::Num(_) => return Err(RunError::NotAnArray(name.clone())),
                    }
                }
                Op::BinNum { op, dst, lhs, rhs } => {
                    check_init!(lhs);
                    let l = self.regs[lhs as usize].as_num(ctx::LEFT_OPERAND)?;
                    check_init!(rhs);
                    let r = self.regs[rhs as usize].as_num(ctx::RIGHT_OPERAND)?;
                    tick!(1);
                    put!(dst, Value::Num(apply_bin(op, l, r)));
                }
                // The fused chains replay their constituent `BinNum`s'
                // check/tick/compute sequences exactly; intermediates
                // live in a local instead of scratch registers. A
                // chained intermediate needs no checks (it is a number
                // the VM just produced), matching how the original read
                // of an always-initialised scratch slot could not fail.
                Op::BinChain { ref chain, dst } => {
                    let v = chain_eval!(chain);
                    put!(dst, Value::Num(v));
                }
                Op::IdxGetChain {
                    ref chain,
                    slot,
                    dst,
                } => {
                    // The chain computes the index; then exactly the
                    // `IndexGet` sequence (its index checks are the
                    // trivially-passing scratch reads).
                    let raw = chain_eval!(chain);
                    let name = &prog.var_names[slot as usize];
                    if !self.init[slot as usize] {
                        return Err(RunError::Undefined(name.clone()));
                    }
                    let v = match &self.regs[slot as usize] {
                        Value::Array(a) => a[to_index(raw, name, a.len())?],
                        Value::Num(_) => return Err(RunError::NotAnArray(name.clone())),
                    };
                    tick!(1);
                    put!(dst, Value::Num(v));
                }
                Op::IdxSetChain {
                    ref chain,
                    slot,
                    idx,
                } => {
                    // The chain computes the element *value* (it ran
                    // before the `IndexSet` in the unfused stream); the
                    // index check below is the real one.
                    let v = chain_eval!(chain);
                    check_init!(idx);
                    let raw = self.regs[idx as usize].as_num(ctx::ARRAY_INDEX)?;
                    let name = &prog.var_names[slot as usize];
                    if !self.init[slot as usize] {
                        return Err(RunError::Undefined(name.clone()));
                    }
                    match &mut self.regs[slot as usize] {
                        Value::Array(a) => {
                            let i = to_index(raw, name, a.len())?;
                            crate::value::make_mut_counted(a)[i] = v;
                        }
                        Value::Num(_) => return Err(RunError::NotAnArray(name.clone())),
                    }
                }
                Op::Neg { dst, src } => {
                    check_init!(src);
                    tick!(1);
                    let v = self.regs[src as usize].as_num(ctx::NEG_OPERAND)?;
                    put!(dst, Value::Num(-v));
                }
                Op::Not { dst, src } => {
                    check_init!(src);
                    tick!(1);
                    let b = self.regs[src as usize].truthy(ctx::NOT_OPERAND)?;
                    put!(dst, Value::Num(bool_num(!b)));
                }
                Op::Call {
                    builtin,
                    dst,
                    first,
                    argc,
                } => {
                    let b = &builtins::BUILTINS[builtin as usize];
                    tick!(b.cost);
                    let args = if argc == 0 {
                        &[][..]
                    } else {
                        &self.regs[first as usize..first as usize + argc as usize]
                    };
                    let v = (b.func)(args)?;
                    put!(dst, v);
                }
                Op::Jump(target) => {
                    pc = target as usize;
                    continue;
                }
                Op::JumpIfFalse { cond, target, what } => {
                    check_init!(cond);
                    if !self.regs[cond as usize].truthy(what)? {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::ShortCircuit {
                    src,
                    dst,
                    target,
                    is_and,
                } => {
                    let what = if is_and {
                        ctx::AND_OPERAND
                    } else {
                        ctx::OR_OPERAND
                    };
                    check_init!(src);
                    let l = self.regs[src as usize].truthy(what)?;
                    tick!(1);
                    if l != is_and {
                        // `and` with false lhs, or `or` with true lhs:
                        // the result is decided.
                        put!(dst, Value::Num(bool_num(l)));
                        pc = target as usize;
                        continue;
                    }
                }
                Op::BoolCast { src, dst, is_and } => {
                    let what = if is_and {
                        ctx::AND_OPERAND
                    } else {
                        ctx::OR_OPERAND
                    };
                    check_init!(src);
                    let r = self.regs[src as usize].truthy(what)?;
                    put!(dst, Value::Num(bool_num(r)));
                }
                Op::CheckNum { src, what } => {
                    check_init!(src);
                    self.regs[src as usize].as_num(what)?;
                }
                Op::CheckNumRound { src, what } => {
                    let v = self.regs[src as usize].as_num(what)?;
                    self.regs[src as usize] = Value::Num(v.round());
                }
                Op::ForTest { i, end, target } => {
                    if own_num!(i) > own_num!(end) {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::ForInc { i } => {
                    let v = own_num!(i);
                    self.regs[i as usize] = Value::Num(v + 1.0);
                }
                Op::ForNext { i, head } => {
                    tick!(1);
                    let v = own_num!(i);
                    self.regs[i as usize] = Value::Num(v + 1.0);
                    pc = head as usize;
                    continue;
                }
                Op::ForTestCopy {
                    i,
                    end,
                    var,
                    target,
                } => {
                    if own_num!(i) > own_num!(end) {
                        pc = target as usize;
                        continue;
                    }
                    let v = self.regs[i as usize].clone();
                    put!(var, v);
                }
                Op::Print { src } => {
                    check_init!(src);
                    prints.push(self.regs[src as usize].to_string());
                }
                Op::Fail(i) => return Err(prog.fails[i as usize].clone()),
            }
            pc += 1;
        }
        Ok(ops)
    }
}

fn bool_num(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Scalar arithmetic shared by [`Op::BinNum`] and the fused chain ops.
#[inline(always)]
fn apply_bin(op: BinOp, l: f64, r: f64) -> f64 {
    match op {
        BinOp::Add => l + r,
        BinOp::Sub => l - r,
        BinOp::Mul => l * r,
        BinOp::Div => l / r, // IEEE semantics, like the tree-walker
        BinOp::Mod => l.rem_euclid(r),
        BinOp::Pow => l.powf(r),
        BinOp::Eq => bool_num(l == r),
        BinOp::Ne => bool_num(l != r),
        BinOp::Lt => bool_num(l < r),
        BinOp::Le => bool_num(l <= r),
        BinOp::Gt => bool_num(l > r),
        BinOp::Ge => bool_num(l >= r),
        BinOp::And | BinOp::Or => unreachable!("compiled to ShortCircuit"),
    }
}

/// One-shot convenience: runs an already-compiled program on a fresh
/// frame. Prefer keeping a [`Vm`] when running many tasks.
pub fn run_compiled(
    prog: &CompiledProgram,
    inputs: &BTreeMap<String, Value>,
    config: InterpConfig,
) -> Result<Outcome, RunError> {
    Vm::new().run(prog, inputs, config)
}

/// One-shot convenience: compiles and runs in one go (tests, REPL).
pub fn compile_and_run(
    prog: &crate::ast::Program,
    inputs: &BTreeMap<String, Value>,
    config: InterpConfig,
) -> Result<Outcome, RunError> {
    run_compiled(&compile(prog), inputs, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use crate::parser::parse_program;

    fn inputs(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Asserts VM and tree-walker agree exactly on a program + inputs,
    /// at the default budget and at a few tiny ones (StepLimit parity).
    fn assert_parity(src: &str, ins: &BTreeMap<String, Value>) {
        let p = parse_program(src).unwrap();
        let c = compile(&p);
        let mut vm = Vm::new();
        for max_steps in [3, 17, 64, 1_000, InterpConfig::default().max_steps] {
            let cfg = InterpConfig {
                max_steps,
                ..Default::default()
            };
            let want = interp::run_with(&p, ins, cfg);
            let got = vm.run(&c, ins, cfg);
            assert_eq!(got, want, "divergence at max_steps={max_steps} for:\n{src}");
        }
    }

    const SQRT_SRC: &str = "\
task SquareRoot
  in a
  out x
  local g, prev
begin
  g := a / 2
  prev := 0
  while abs(g - prev) > 1e-12 do
    prev := g
    g := (g + a / g) / 2
  end
  x := g
end";

    #[test]
    fn figure4_sqrt_matches_interp() {
        for a in [2.0, 9.0, 100.0, 12345.678] {
            assert_parity(SQRT_SRC, &inputs(&[("a", Value::Num(a))]));
        }
    }

    #[test]
    fn sqrt_value_is_right() {
        let p = parse_program(SQRT_SRC).unwrap();
        let c = compile(&p);
        let out = run_compiled(
            &c,
            &inputs(&[("a", Value::Num(2.0))]),
            InterpConfig::default(),
        )
        .unwrap();
        let x = out.outputs["x"].as_num("x").unwrap();
        assert!((x - 2.0_f64.sqrt()).abs() < 1e-9);
        assert!(out.ops > 0);
    }

    #[test]
    fn missing_input_matches() {
        assert_parity(SQRT_SRC, &BTreeMap::new());
    }

    #[test]
    fn unassigned_output_matches() {
        assert_parity(
            "task T in a out x begin a := a end",
            &inputs(&[("a", Value::Num(1.0))]),
        );
    }

    #[test]
    fn runaway_loop_hits_step_limit() {
        let p = parse_program("task T out x begin x := 0 while 1 do x := x + 1 end end").unwrap();
        let c = compile(&p);
        let cfg = InterpConfig {
            max_steps: 1000,
            ..Default::default()
        };
        assert_eq!(
            run_compiled(&c, &BTreeMap::new(), cfg),
            Err(RunError::StepLimit(1000))
        );
    }

    #[test]
    fn if_else_for_while_parity() {
        for src in [
            "task T in a out s begin if a >= 0 then s := 1 else s := -1 end end",
            "task T in n out s local i begin s := 0 for i := 1 to n do s := s + i end end",
            "task T out s local i begin s := 0 for i := 1 to 0 do s := s + 1 end end",
            "task T in n out s local i begin s := 0 i := 0 \
             while i < n do i := i + 1 s := s + i * i end end",
        ] {
            for v in [-3.0, 0.0, 3.0, 100.0] {
                assert_parity(src, &inputs(&[("a", Value::Num(v)), ("n", Value::Num(v))]));
            }
        }
    }

    #[test]
    fn arrays_parity() {
        let src = "task T in v out w local i, n begin \
                   n := len(v) \
                   w := zeros(n) \
                   for i := 1 to n do w[i] := v[i] * 2 end \
                   end";
        assert_parity(src, &inputs(&[("v", Value::array(vec![1.0, 2.0, 3.0]))]));
        assert_parity(src, &inputs(&[("v", Value::array(vec![]))]));
        assert_parity(src, &inputs(&[("v", Value::Num(7.0))]));
    }

    #[test]
    fn array_error_parity() {
        assert_parity(
            "task T in v out x begin x := v[5] end",
            &inputs(&[("v", Value::array(vec![1.0]))]),
        );
        assert_parity(
            "task T in v out x begin v[1] := 0 x := 0 end",
            &inputs(&[("v", Value::Num(3.0))]),
        );
    }

    #[test]
    fn prints_parity() {
        assert_parity(
            "task T in a begin print a print a * 2 print zeros(2) end",
            &inputs(&[("a", Value::Num(5.0))]),
        );
    }

    #[test]
    fn short_circuit_parity() {
        // RHS names an undefined variable; short-circuit must skip it.
        assert_parity(
            "task T in a out x begin \
             if a = 0 and nosuch then x := 1 else x := 2 end end",
            &inputs(&[("a", Value::Num(1.0))]),
        );
        assert_parity(
            "task T in a out x begin \
             if a = 1 or nosuch then x := 1 else x := 2 end end",
            &inputs(&[("a", Value::Num(1.0))]),
        );
    }

    #[test]
    fn self_referential_logic_reads_old_value() {
        // `x := a and x` — the destination must not be clobbered before
        // the right-hand side reads it.
        assert_parity(
            "task T in a out x begin x := 1 x := a and x end",
            &inputs(&[("a", Value::Num(1.0))]),
        );
        assert_parity(
            "task T in a out x begin x := 0 x := a or x end",
            &inputs(&[("a", Value::Num(0.0))]),
        );
    }

    #[test]
    fn constants_preloaded_and_overwritable() {
        assert_parity("task T out x begin x := 2 * pi + e end", &BTreeMap::new());
        assert_parity("task T out x begin pi := 3 x := pi end", &BTreeMap::new());
    }

    #[test]
    fn dead_branch_unknown_function_is_harmless() {
        assert_parity(
            "task T in a out x begin \
             if a > 0 then x := 1 else x := wat(1) end end",
            &inputs(&[("a", Value::Num(1.0))]),
        );
        assert_parity(
            "task T in a out x begin \
             if a > 0 then x := 1 else x := wat(1) end end",
            &inputs(&[("a", Value::Num(-1.0))]),
        );
        assert_parity(
            "task T in a out x begin \
             if a > 0 then x := 1 else x := sqrt(1, 2) end end",
            &inputs(&[("a", Value::Num(-1.0))]),
        );
    }

    #[test]
    fn error_ordering_matches_interp() {
        // Left operand must be rejected before the (undefined) right
        // operand is evaluated.
        assert_parity(
            "task T in v out x begin x := v + nosuch end",
            &inputs(&[("v", Value::array(vec![1.0]))]),
        );
        // Unary: tick happens before the type check.
        assert_parity(
            "task T in v out x begin x := -v end",
            &inputs(&[("v", Value::array(vec![1.0]))]),
        );
        assert_parity(
            "task T in v out x begin x := not v end",
            &inputs(&[("v", Value::array(vec![1.0]))]),
        );
    }

    #[test]
    fn negative_modulo_parity() {
        assert_parity("task T out x begin x := -7 % 3 end", &BTreeMap::new());
    }

    #[test]
    fn frame_reuse_across_programs() {
        let mut vm = Vm::new();
        let p1 = compile(&parse_program("task A in a out x begin x := a + 1 end").unwrap());
        let p2 = compile(
            &parse_program(
                "task B in a out x local b, c, d begin \
                 b := a c := b d := c x := d end",
            )
            .unwrap(),
        );
        for _ in 0..3 {
            let o1 = vm
                .run(
                    &p1,
                    &inputs(&[("a", Value::Num(1.0))]),
                    InterpConfig::default(),
                )
                .unwrap();
            assert_eq!(o1.outputs["x"], Value::Num(2.0));
            let o2 = vm
                .run(
                    &p2,
                    &inputs(&[("a", Value::Num(9.0))]),
                    InterpConfig::default(),
                )
                .unwrap();
            assert_eq!(o2.outputs["x"], Value::Num(9.0));
        }
    }

    #[test]
    fn stale_frame_does_not_leak_definitions() {
        // Run a program that defines `g`, then one that reads `g`
        // undefined — the recycled frame must not resurrect it.
        let mut vm = Vm::new();
        let def = compile(&parse_program("task A out g begin g := 5 end").unwrap());
        vm.run(&def, &BTreeMap::new(), InterpConfig::default())
            .unwrap();
        let read = compile(&parse_program("task B out x begin x := g end").unwrap());
        assert_eq!(
            vm.run(&read, &BTreeMap::new(), InterpConfig::default()),
            Err(RunError::Undefined("g".into()))
        );
    }

    #[test]
    fn run_dense_matches_run() {
        let src = "task T in a, v out x, w local i, n begin \
                   n := len(v) \
                   w := zeros(n) \
                   for i := 1 to n do w[i] := v[i] * a end \
                   x := sum(w) \
                   end";
        let p = parse_program(src).unwrap();
        let c = compile(&p);
        let mut vm = Vm::new();
        let named = inputs(&[
            ("a", Value::Num(3.0)),
            ("v", Value::array(vec![1.0, 2.0, 3.0])),
        ]);
        let want = vm.run(&c, &named, InterpConfig::default()).unwrap();
        // Positional binding follows input_slots order.
        let dense: Vec<Value> = c
            .input_slots
            .iter()
            .map(|&s| named[&c.var_names[s as usize]].clone())
            .collect();
        let got = vm.run_dense(&c, &dense, InterpConfig::default()).unwrap();
        assert_eq!(got.ops, want.ops);
        assert_eq!(got.prints, want.prints);
        for (i, &slot) in c.output_slots.iter().enumerate() {
            assert_eq!(got.outputs[i], want.outputs[&c.var_names[slot as usize]]);
        }
    }

    #[test]
    fn input_binding_is_zero_copy() {
        let src = "task T in v out x begin x := v[1] end";
        let c = compile(&parse_program(src).unwrap());
        let big = Value::array(vec![1.0; 4096]);
        let mut vm = Vm::new();
        let got = vm
            .run_dense(&c, std::slice::from_ref(&big), InterpConfig::default())
            .unwrap();
        assert_eq!(got.outputs[0], Value::Num(1.0));
        // The task only read `v`; its binding must still share the caller's
        // buffer (run_dense holds the frame, so check against regs via a
        // fresh clone of the input).
        assert!(big.shares_buffer(&big.clone()));
    }

    #[test]
    fn cow_write_does_not_tick_and_does_not_alias() {
        // Pass the same array twice; the task writes one copy. The write
        // must not leak into the other binding, and ops must be identical
        // to passing two independent deep copies.
        let src = "task T in v, w out x, y begin v[1] := 9 x := v[1] y := w[1] end";
        let c = compile(&parse_program(src).unwrap());
        let shared = Value::array(vec![1.0, 2.0]);
        let mut vm = Vm::new();
        let aliased = vm
            .run_dense(
                &c,
                &[shared.clone(), shared.clone()],
                InterpConfig::default(),
            )
            .unwrap();
        let separate = vm
            .run_dense(
                &c,
                &[Value::array(vec![1.0, 2.0]), Value::array(vec![1.0, 2.0])],
                InterpConfig::default(),
            )
            .unwrap();
        assert_eq!(aliased, separate, "CoW must be observationally invisible");
        assert_eq!(aliased.outputs[0], Value::Num(9.0));
        assert_eq!(aliased.outputs[1], Value::Num(1.0));
        assert_eq!(shared.as_array("v").unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn ops_equal_interp_on_figure4_exactly() {
        let p = parse_program(SQRT_SRC).unwrap();
        let c = compile(&p);
        let ins = inputs(&[("a", Value::Num(12345.678))]);
        let want = interp::run(&p, &ins).unwrap();
        let got = run_compiled(&c, &ins, InterpConfig::default()).unwrap();
        assert_eq!(got.ops, want.ops, "scheduler weights must be identical");
    }
}
