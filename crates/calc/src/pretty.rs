//! Pretty-printer: renders a [`Program`] back to canonical source text —
//! the "textual representation of the node routine" shown in the lower
//! window of the calculator panel (Figure 4).
//!
//! The printer and parser round-trip: `parse(print(p)) == p`.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use std::fmt::Write as _;

/// Renders a program as canonical PITS source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "task {}", p.name);
    let section = |out: &mut String, kw: &str, vars: &[String]| {
        if !vars.is_empty() {
            let _ = writeln!(out, "  {kw} {}", vars.join(", "));
        }
    };
    section(&mut out, "in", &p.inputs);
    section(&mut out, "out", &p.outputs);
    section(&mut out, "local", &p.locals);
    out.push_str("begin\n");
    print_block(&mut out, &p.body, 1);
    out.push_str("end\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_block(out: &mut String, stmts: &[Stmt], depth: usize) {
    for s in stmts {
        print_stmt(out, s, depth);
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Assign { var, expr, .. } => {
            let _ = writeln!(out, "{var} := {}", print_expr(expr));
        }
        Stmt::AssignIndex {
            var, index, expr, ..
        } => {
            let _ = writeln!(out, "{var}[{}] := {}", print_expr(index), print_expr(expr));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = writeln!(out, "if {} then", print_expr(cond));
            print_block(out, then_body, depth + 1);
            if !else_body.is_empty() {
                indent(out, depth);
                out.push_str("else\n");
                print_block(out, else_body, depth + 1);
            }
            indent(out, depth);
            out.push_str("end\n");
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while {} do", print_expr(cond));
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("end\n");
        }
        Stmt::For {
            var,
            from,
            to,
            body,
            ..
        } => {
            let _ = writeln!(
                out,
                "for {var} := {} to {} do",
                print_expr(from),
                print_expr(to)
            );
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("end\n");
        }
        Stmt::Print { expr: e, .. } => {
            let _ = writeln!(out, "print {}", print_expr(e));
        }
    }
}

/// Precedence levels matching the parser, used to parenthesise minimally.
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
        BinOp::Pow => 7,
    }
}

/// Renders an expression with minimal parentheses.
pub fn print_expr(e: &Expr) -> String {
    print_prec(e, 0)
}

fn print_prec(e: &Expr, outer: u8) -> String {
    match e {
        Expr::Num(v) => format_num(*v),
        Expr::Var(n) => n.clone(),
        Expr::Index(n, idx) => format!("{n}[{}]", print_prec(idx, 0)),
        Expr::Call(n, args) => {
            let inner: Vec<String> = args.iter().map(|a| print_prec(a, 0)).collect();
            format!("{n}({})", inner.join(", "))
        }
        Expr::Un(UnOp::Neg, inner) => {
            let s = format!("-{}", print_prec(inner, 6));
            if outer > 6 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Un(UnOp::Not, inner) => {
            // Grammar: `not`'s operand is a comparison (or another `not`),
            // so anything looser (and/or) needs parentheses.
            let s = format!("not {}", print_prec(inner, 3));
            if outer > 2 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Bin(op, lhs, rhs) => {
            let p = prec(*op);
            // Left-assoc ops need rhs printed one level tighter; pow is
            // right-assoc, so the LHS tightens instead. Comparisons are
            // non-associative: both sides tighten.
            let (lp, rp) = match op {
                BinOp::Pow => (p + 1, p),
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    (p + 1, p + 1)
                }
                _ => (p, p + 1),
            };
            let s = format!(
                "{} {} {}",
                print_prec(lhs, lp),
                op.symbol(),
                print_prec(rhs, rp)
            );
            if p < outer {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

/// Formats a number the way the lexer can read back (handles negatives by
/// never appearing — negation is an AST node — and uses enough digits to
/// round-trip).
fn format_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        // Scientific form for extreme magnitudes keeps literals like 1e-12
        // readable; both forms round-trip through the lexer.
        let s = if v != 0.0 && (v.abs() < 1e-4 || v.abs() >= 1e15) {
            format!("{v:e}")
        } else {
            format!("{v}")
        };
        debug_assert!(s.parse::<f64>() == Ok(v));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn round_trip_squareroot() {
        let src = "task SquareRoot\n  in a\n  out x\n  local g, prev\nbegin\n  g := a / 2\n  prev := 0\n  while abs(g - prev) > 1e-12 do\n    prev := g\n    g := (g + a / g) / 2\n  end\n  x := g\nend";
        let p = parse_program(src).unwrap();
        let printed = print_program(&p);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2, "round-trip failed:\n{printed}");
    }

    #[test]
    fn minimal_parens() {
        let cases = [
            ("1 + 2 * 3", "1 + 2 * 3"),
            ("(1 + 2) * 3", "(1 + 2) * 3"),
            ("1 - (2 - 3)", "1 - (2 - 3)"),
            ("1 - 2 - 3", "1 - 2 - 3"),
            ("2 ^ 3 ^ 2", "2 ^ 3 ^ 2"),
            ("(2 ^ 3) ^ 2", "(2 ^ 3) ^ 2"),
            ("-x * y", "-x * y"),
            ("a and b or c", "a and b or c"),
            ("a and (b or c)", "a and (b or c)"),
            // `not` binds looser than comparison, so these parens are
            // redundant in canonical form.
            ("not (a = b)", "not a = b"),
        ];
        for (src, want) in cases {
            let e = parse_expr(src).unwrap();
            assert_eq!(print_expr(&e), want, "{src}");
        }
    }

    #[test]
    fn printed_exprs_reparse_identically() {
        let sources = [
            "a + b * c - d / e",
            "-(a + b) ^ 2",
            "f(x, y[i + 1]) * (p or q and not r)",
            "1e-12 + 2.5 * x",
            "a % b % c",
            "x <= y and y <= z",
        ];
        for src in sources {
            let e = parse_expr(src).unwrap();
            let printed = print_expr(&e);
            let e2 = parse_expr(&printed).unwrap();
            assert_eq!(e, e2, "{src} -> {printed}");
        }
    }

    #[test]
    fn round_trip_all_statement_forms() {
        let src = "task T in a, b out x local i, v begin \
                   v := zeros(3) \
                   v[1] := a \
                   if a > b then x := a else x := b end \
                   while x > 0 do x := x - 1 end \
                   for i := 1 to 3 do v[i] := i end \
                   print v \
                   x := sum(v) \
                   end";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&print_program(&p)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(3.0), "3");
        assert_eq!(format_num(0.5), "0.5");
        assert_eq!(format_num(1e-12), "1e-12");
        let e = parse_expr(&format_num(1e-12)).unwrap();
        assert_eq!(e, crate::ast::Expr::Num(1e-12));
    }
}
