#![warn(missing_docs)]

//! # banger-calc — the PITS calculator language
//!
//! The paper's third principle: *for scientific programmers, an acceptable
//! programming metaphor is a simulated pocket calculator containing simple
//! programming constructs, scientific and engineering functions, constants
//! and formulas, and some means of obtaining numerical results, upon
//! demand.* This crate is that calculator, headless:
//!
//! * [`token`] / [`parser`] / [`ast`] — the "simplified programming
//!   language" of Figure 4's lower window;
//! * [`interp`] — trial runs of single tasks with inputs, outputs, prints
//!   and an operation count (a measured task weight for the scheduler);
//! * [`builtins`] — the scientific function and constant buttons;
//! * [`absint`] — interval-domain abstract interpretation: value-range
//!   safety findings and static operation-count bounds;
//! * [`cost`] — static weight estimation for unexercised tasks (backed
//!   by [`absint`]'s trip-count inference);
//! * [`pretty`] — canonical program text (round-trips with the parser);
//! * [`panel`] — the calculator panel itself: button presses, immediate
//!   `=` evaluation, `STO` registers, and task recording;
//! * [`library`] — a named collection of programs attached to a design's
//!   task nodes.
//!
//! ## Example: the paper's Figure 4 task
//!
//! ```
//! use banger_calc::{interp, parser, Value};
//!
//! let prog = parser::parse_program(
//!     "task SquareRoot
//!        in a
//!        out x
//!        local g, prev
//!      begin
//!        g := a / 2
//!        prev := 0
//!        while abs(g - prev) > 1e-12 do
//!          prev := g
//!          g := (g + a / g) / 2
//!        end
//!        x := g
//!      end",
//! )
//! .unwrap();
//! let out = interp::run(
//!     &prog,
//!     &[("a".to_string(), Value::Num(2.0))].into_iter().collect(),
//! )
//! .unwrap();
//! let x = out.outputs["x"].as_num("x").unwrap();
//! assert!((x - 2.0_f64.sqrt()).abs() < 1e-9);
//! ```

pub mod absint;
pub mod ast;
pub mod builtins;
pub mod compile;
pub mod cost;
pub mod error;
pub mod interp;
pub mod library;
pub mod panel;
pub mod parser;
pub mod pretty;
pub mod token;
pub mod transform;
pub mod value;
pub mod vm;

pub use absint::{analyze, analyze_with, AbsVal, Analysis, AnalysisOptions, StaticCost};
pub use ast::Program;
pub use compile::{compile, CompiledProgram, Op};
pub use error::{ParseError, Pos, RunError};
pub use interp::{run, run_with, InterpConfig, Outcome};
pub use library::ProgramLibrary;
pub use panel::{Button, Panel, PanelError};
pub use parser::{parse_expr, parse_program};
pub use transform::{parallelize_reduction, ReductionSplit, TransformError};
pub use value::Value;
pub use vm::{run_compiled, Vm};
