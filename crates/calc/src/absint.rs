//! Interval-domain abstract interpretation over PITS programs.
//!
//! One fixpoint walk produces two artifacts the design environment needs
//! *before* anybody presses "trial run":
//!
//! * **Safety findings** — reads of possibly-uninitialized variables,
//!   array indexes provably out of flowed bounds, definite IEEE domain
//!   errors (`sqrt` of a negative interval, division by a point zero),
//!   `while` loops with no decreasing variant, dead assignments and
//!   `out` variables left unwritten on some path. The analyze crate maps
//!   these onto the stable B04x diagnostic family.
//! * **A static cost interval** — [`StaticCost`] bounds the trial-run
//!   operation count ([`crate::interp::Outcome::ops`]) from below and
//!   above, using the *exact* tick model of the interpreter. Loops with
//!   inferable trip counts are either unrolled (point bounds within
//!   budget) or summarized with `trips × body` arithmetic; only genuinely
//!   unbounded loops fall back to [`crate::cost::LOOP_FACTOR`]. When
//!   `ops_lo == ops_hi` the estimate is `exact` and matches a clean trial
//!   run tick for tick.
//!
//! The domain is deliberately simple: every variable maps to an interval
//! of possible scalar values, an interval of possible array lengths, and
//! a definite-initialization flag (`No`/`Maybe`/`Yes`). Point intervals
//! degenerate to concrete execution (same f64 operations in the same
//! order as the tree-walker), which is what makes constant-bound kernels
//! analyze exactly.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::builtins;
use crate::cost::LOOP_FACTOR;
use crate::error::Pos;
use crate::value::Value;

/// Statement-visit budget for the analyzer: loop unrolling stops once the
/// walk has spent this many statement visits, falling back to the sound
/// summarized fixpoint.
pub const DEFAULT_BUDGET: u64 = 200_000;

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

/// A closed interval of f64 values, `lo <= hi`, never NaN.
///
/// `[-inf, inf]` is the top element ("any number"); NaN inputs widen to
/// top at construction so the invariant holds everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Interval {
    /// The top element: any value.
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Builds `[lo, hi]`, widening to top when the pair is NaN or inverted.
    pub fn new(lo: f64, hi: f64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval::TOP
        }
    }

    /// The singleton interval `[v, v]` (top when `v` is NaN).
    pub fn point(v: f64) -> Interval {
        Interval::new(v, v)
    }

    /// True when the interval is a single finite value.
    pub fn is_point(self) -> bool {
        self.lo == self.hi && self.lo.is_finite()
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Standard interval widening: bounds that grew jump to infinity.
    pub fn widen(self, newer: Interval) -> Interval {
        Interval::new(
            if newer.lo < self.lo {
                f64::NEG_INFINITY
            } else {
                self.lo
            },
            if newer.hi > self.hi {
                f64::INFINITY
            } else {
                self.hi
            },
        )
    }

    /// The interval after `f64::round` of every member (the interpreter's
    /// index / `for`-bound coercion).
    pub fn round(self) -> Interval {
        Interval::new(self.lo.round(), self.hi.round())
    }

    /// Truthiness under the calculator's "non-zero is true" rule:
    /// `Some(bool)` when every member agrees, `None` otherwise.
    pub fn truth(self) -> Option<bool> {
        if self.lo == 0.0 && self.hi == 0.0 {
            Some(false)
        } else if self.lo > 0.0 || self.hi < 0.0 {
            Some(true)
        } else {
            None
        }
    }

    /// True when `0` is a member.
    pub fn contains_zero(self) -> bool {
        self.lo <= 0.0 && 0.0 <= self.hi
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_point() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// The concrete binary operation, bit-identical to the interpreter's.
fn concrete_bin(op: BinOp, l: f64, r: f64) -> f64 {
    let b = |c: bool| if c { 1.0 } else { 0.0 };
    match op {
        BinOp::Add => l + r,
        BinOp::Sub => l - r,
        BinOp::Mul => l * r,
        BinOp::Div => l / r,
        BinOp::Mod => l.rem_euclid(r),
        BinOp::Pow => l.powf(r),
        BinOp::Eq => b(l == r),
        BinOp::Ne => b(l != r),
        BinOp::Lt => b(l < r),
        BinOp::Le => b(l <= r),
        BinOp::Gt => b(l > r),
        BinOp::Ge => b(l >= r),
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops are handled by the walker"),
    }
}

/// Abstract transfer for a (non-short-circuit) binary operator.
fn abs_bin(op: BinOp, l: Interval, r: Interval) -> Interval {
    if l.is_point() && r.is_point() {
        return Interval::point(concrete_bin(op, l.lo, r.lo));
    }
    let four = |f: fn(f64, f64) -> f64| {
        let c = [f(l.lo, r.lo), f(l.lo, r.hi), f(l.hi, r.lo), f(l.hi, r.hi)];
        if c.iter().any(|v| v.is_nan()) {
            Interval::TOP
        } else {
            Interval::new(
                c.iter().copied().fold(f64::INFINITY, f64::min),
                c.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            )
        }
    };
    match op {
        BinOp::Add => Interval::new(l.lo + r.lo, l.hi + r.hi),
        BinOp::Sub => Interval::new(l.lo - r.hi, l.hi - r.lo),
        BinOp::Mul => four(|a, b| a * b),
        BinOp::Div => {
            if r.contains_zero() {
                Interval::TOP
            } else {
                four(|a, b| a / b)
            }
        }
        BinOp::Mod => {
            // rem_euclid lands in [0, |r|) for r != 0, NaN for r == 0.
            if r.contains_zero() {
                Interval::TOP
            } else {
                Interval::new(0.0, r.lo.abs().max(r.hi.abs()))
            }
        }
        BinOp::Pow => Interval::TOP,
        BinOp::Eq => {
            if l.hi < r.lo || l.lo > r.hi {
                Interval::point(0.0)
            } else {
                Interval::new(0.0, 1.0)
            }
        }
        BinOp::Ne => {
            if l.hi < r.lo || l.lo > r.hi {
                Interval::point(1.0)
            } else {
                Interval::new(0.0, 1.0)
            }
        }
        BinOp::Lt => cmp_interval(l.hi < r.lo, l.lo >= r.hi),
        BinOp::Le => cmp_interval(l.hi <= r.lo, l.lo > r.hi),
        BinOp::Gt => cmp_interval(l.lo > r.hi, l.hi <= r.lo),
        BinOp::Ge => cmp_interval(l.lo >= r.hi, l.hi < r.lo),
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops are handled by the walker"),
    }
}

fn cmp_interval(definitely: bool, definitely_not: bool) -> Interval {
    if definitely {
        Interval::point(1.0)
    } else if definitely_not {
        Interval::point(0.0)
    } else {
        Interval::new(0.0, 1.0)
    }
}

// ---------------------------------------------------------------------------
// Abstract values and environments
// ---------------------------------------------------------------------------

/// An abstract value: what we know about one variable's runtime value.
///
/// `num` is the range of possible *scalar* values (`None` = definitely an
/// array), `len` the range of possible *array lengths* (`None` =
/// definitely a scalar). Both `Some` means "could be either" — the
/// seeding for unknown inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsVal {
    /// Possible scalar value range; `None` when definitely an array.
    pub num: Option<Interval>,
    /// Possible array length range; `None` when definitely a scalar.
    pub len: Option<Interval>,
    /// True when `len` came from a design-level storage declaration
    /// rather than value flow — bounds findings against declared sizes
    /// are reported at warning severity.
    pub len_declared: bool,
}

impl AbsVal {
    /// A definite scalar with the given value range.
    pub fn scalar(i: Interval) -> AbsVal {
        AbsVal {
            num: Some(i),
            len: None,
            len_declared: false,
        }
    }

    /// A definite array with the given length range.
    pub fn array(len: Interval) -> AbsVal {
        AbsVal {
            num: None,
            len: Some(Interval::new(len.lo.max(0.0), len.hi)),
            len_declared: false,
        }
    }

    /// Completely unknown: any scalar or any array.
    pub fn any() -> AbsVal {
        AbsVal {
            num: Some(Interval::TOP),
            len: Some(Interval::new(0.0, f64::INFINITY)),
            len_declared: false,
        }
    }

    /// The bottom element (join identity; value of an unassigned name).
    pub fn bottom() -> AbsVal {
        AbsVal {
            num: None,
            len: None,
            len_declared: false,
        }
    }

    /// Abstracts a concrete runtime value.
    pub fn of_value(v: &Value) -> AbsVal {
        match v {
            Value::Num(n) => AbsVal::scalar(Interval::point(*n)),
            Value::Array(a) => AbsVal::array(Interval::point(a.len() as f64)),
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            num: opt_join(self.num, other.num, Interval::join),
            len: opt_join(self.len, other.len, Interval::join),
            len_declared: self.len_declared || other.len_declared,
        }
    }

    fn widen(&self, newer: &AbsVal) -> AbsVal {
        AbsVal {
            num: opt_join(self.num, newer.num, Interval::widen),
            len: opt_join(self.len, newer.len, Interval::widen),
            len_declared: self.len_declared || newer.len_declared,
        }
    }

    /// The scalar range, top when unknown or not a scalar.
    fn num_or_top(&self) -> Interval {
        self.num.unwrap_or(Interval::TOP)
    }
}

fn opt_join(
    a: Option<Interval>,
    b: Option<Interval>,
    f: fn(Interval, Interval) -> Interval,
) -> Option<Interval> {
    match (a, b) {
        (None, x) => x,
        (x, None) => x,
        (Some(x), Some(y)) => Some(f(x, y)),
    }
}

/// Definite-initialization lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Unassigned on every path.
    No,
    /// Assigned on some paths only.
    Maybe,
    /// Assigned on every path.
    Yes,
}

impl Init {
    fn join(self, other: Init) -> Init {
        if self == other {
            self
        } else {
            Init::Maybe
        }
    }
}

/// Per-variable analysis state.
#[derive(Debug, Clone, PartialEq)]
pub struct VarState {
    /// What we know about the value.
    pub val: AbsVal,
    /// Whether the variable is definitely assigned.
    pub init: Init,
}

impl VarState {
    fn assigned(val: AbsVal) -> VarState {
        VarState {
            val,
            init: Init::Yes,
        }
    }
}

/// The abstract environment: variable name → state. Absent names are
/// unassigned (`Init::No`, bottom value).
pub type Env = BTreeMap<String, VarState>;

fn env_get<'e>(env: &'e Env, name: &str) -> Option<&'e VarState> {
    env.get(name)
}

fn join_env(a: &Env, b: &Env) -> Env {
    merge_env(a, b, false)
}

fn widen_env(older: &Env, newer: &Env) -> Env {
    merge_env(older, newer, true)
}

fn merge_env(a: &Env, b: &Env, widen: bool) -> Env {
    let mut out = Env::new();
    let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let bottom = VarState {
        val: AbsVal::bottom(),
        init: Init::No,
    };
    for k in keys {
        let va = a.get(k).unwrap_or(&bottom);
        let vb = b.get(k).unwrap_or(&bottom);
        let val = if widen {
            va.val.widen(&vb.val)
        } else {
            va.val.join(&vb.val)
        };
        out.insert(
            k.clone(),
            VarState {
                val,
                init: va.init.join(vb.init),
            },
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// What a finding is about.
#[derive(Debug, Clone, PartialEq)]
pub enum FindingKind {
    /// A variable is read before it is (definitely) assigned.
    UninitRead {
        /// The variable read.
        var: String,
    },
    /// An array index falls outside the known length range.
    IndexOut {
        /// The array variable.
        var: String,
        /// The (rounded) index range used.
        index: Interval,
        /// The known length range.
        len: Interval,
        /// True when the length came from a storage declaration.
        declared: bool,
    },
    /// Division by a definite zero.
    DivByZero,
    /// A builtin applied wholly outside its real domain.
    Domain {
        /// The builtin name (`sqrt`, `ln`, `log10`).
        func: String,
    },
    /// A `while` loop whose condition variables are never assigned in
    /// the body — no decreasing variant, step-limit risk.
    NoVariant {
        /// The condition's variables.
        vars: Vec<String>,
    },
    /// An assignment whose value is never read afterwards.
    DeadAssign {
        /// The assigned variable.
        var: String,
    },
    /// An `out` variable not written on some (or any) path.
    OutputUnset {
        /// The output variable.
        var: String,
    },
}

impl FindingKind {
    /// Short classification tag (stable across runs, used for dedup).
    pub fn tag(&self) -> &'static str {
        match self {
            FindingKind::UninitRead { .. } => "uninit-read",
            FindingKind::IndexOut { .. } => "index-out",
            FindingKind::DivByZero => "div-by-zero",
            FindingKind::Domain { .. } => "domain",
            FindingKind::NoVariant { .. } => "no-variant",
            FindingKind::DeadAssign { .. } => "dead-assign",
            FindingKind::OutputUnset { .. } => "output-unset",
        }
    }

    fn subject(&self) -> &str {
        match self {
            FindingKind::UninitRead { var }
            | FindingKind::IndexOut { var, .. }
            | FindingKind::DeadAssign { var }
            | FindingKind::OutputUnset { var } => var,
            FindingKind::Domain { func } => func,
            FindingKind::DivByZero | FindingKind::NoVariant { .. } => "",
        }
    }
}

/// One analysis finding; the analyze crate maps these onto B04x codes.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// What was found.
    pub kind: FindingKind,
    /// Source position, when the enclosing statement carries one.
    pub pos: Option<Pos>,
    /// True when the problem occurs on every run reaching this point
    /// (abstract state degenerate to concrete); false = "possibly".
    pub definite: bool,
}

// ---------------------------------------------------------------------------
// Cost
// ---------------------------------------------------------------------------

/// Static bounds on a program's trial-run operation count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticCost {
    /// Lower bound on `Outcome::ops` for any clean run.
    pub ops_lo: f64,
    /// Upper bound (`f64::INFINITY` for unbounded loops).
    pub ops_hi: f64,
    /// Point estimate (the scheduler weight; equals the bounds when
    /// `exact`, otherwise a heuristic blend using
    /// [`crate::cost::LOOP_FACTOR`] for unbounded loops).
    pub est: f64,
    /// True when `ops_lo == ops_hi` and finite: every clean run costs
    /// exactly this many operations.
    pub exact: bool,
}

/// Internal cost accumulator (a `StaticCost` without the `exact` cache).
#[derive(Debug, Clone, Copy)]
struct Cost {
    lo: f64,
    hi: f64,
    est: f64,
}

impl Cost {
    const ZERO: Cost = Cost {
        lo: 0.0,
        hi: 0.0,
        est: 0.0,
    };

    fn point(v: f64) -> Cost {
        Cost {
            lo: v,
            hi: v,
            est: v,
        }
    }

    fn add(self, o: Cost) -> Cost {
        Cost {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
            est: self.est + o.est,
        }
    }

    fn join(self, o: Cost) -> Cost {
        Cost {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
            est: 0.5 * (self.est + o.est),
        }
    }
}

// ---------------------------------------------------------------------------
// Analysis driver
// ---------------------------------------------------------------------------

/// Options for [`analyze_with`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Abstract seeds for `in` variables (missing inputs seed to
    /// [`AbsVal::any`]). Seeding a singleton turns the analysis into
    /// concrete execution of everything that depends on it.
    pub inputs: BTreeMap<String, AbsVal>,
    /// Statement-visit budget bounding loop unrolling (default
    /// [`DEFAULT_BUDGET`]).
    pub budget: u64,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            inputs: BTreeMap::new(),
            budget: DEFAULT_BUDGET,
        }
    }
}

/// The result of analyzing one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Static operation-count bounds (the scheduler-facing weight).
    pub cost: StaticCost,
    /// Safety findings, deduplicated, in source order where positions
    /// are known.
    pub findings: Vec<Finding>,
}

/// Analyzes `prog` with unknown inputs and the default budget.
pub fn analyze(prog: &Program) -> Analysis {
    analyze_with(prog, &AnalysisOptions::default())
}

/// Analyzes `prog` under explicit options.
pub fn analyze_with(prog: &Program, opts: &AnalysisOptions) -> Analysis {
    let mut env = Env::new();
    for (name, v) in builtins::CONSTANTS {
        env.insert(
            name.to_string(),
            VarState::assigned(AbsVal::scalar(Interval::point(v))),
        );
    }
    for name in &prog.inputs {
        let val = opts.inputs.get(name).cloned().unwrap_or_else(AbsVal::any);
        env.insert(name.clone(), VarState::assigned(val));
    }
    let mut w = Walker {
        findings: Vec::new(),
        steps: 0,
        budget: opts.budget.max(1),
    };
    let mut ctx = Ctx {
        reached: true,
        report: true,
        pos: None,
    };
    let cost = w.exec_block(&prog.body, &mut env, &mut ctx);

    // `out` variables must be assigned on every path (B044 family).
    for out in &prog.outputs {
        let init = env_get(&env, out).map(|v| v.init).unwrap_or(Init::No);
        let pos = prog.decl_pos.get(out).copied();
        match init {
            Init::Yes => {}
            Init::Maybe => w.findings.push(Finding {
                kind: FindingKind::OutputUnset { var: out.clone() },
                pos,
                definite: false,
            }),
            // Never assigned at all is already an interface error (B013);
            // only flag it here when the body *does* mention the variable
            // but every mention sits on a dead or partial path.
            Init::No => {
                if syntactically_assigns(&prog.body, out) {
                    w.findings.push(Finding {
                        kind: FindingKind::OutputUnset { var: out.clone() },
                        pos,
                        definite: ctx.reached,
                    });
                }
            }
        }
    }

    // Dead-assignment pass (backward liveness; B044 family).
    let mut live: BTreeSet<String> = prog.outputs.iter().cloned().collect();
    w.live_block(&prog.body, &mut live, true);

    let findings = normalize(w.findings);
    let exact = cost.lo == cost.hi && cost.lo.is_finite();
    Analysis {
        cost: StaticCost {
            ops_lo: cost.lo,
            ops_hi: cost.hi,
            est: cost.est,
            exact,
        },
        findings,
    }
}

/// Deduplicates findings by (kind, subject, position), merging "possible"
/// repeats of one site into a single entry (definite wins; index/length
/// intervals join).
fn normalize(findings: Vec<Finding>) -> Vec<Finding> {
    // Site key: (kind tag, subject, source position).
    type SiteKey = (String, String, Option<(u32, u32)>);
    let mut out: Vec<Finding> = Vec::new();
    let mut index: BTreeMap<SiteKey, usize> = BTreeMap::new();
    for f in findings {
        let key = (
            f.kind.tag().to_string(),
            f.kind.subject().to_string(),
            f.pos.map(|p| (p.line, p.col)),
        );
        match index.get(&key) {
            Some(&i) => {
                let prev = &mut out[i];
                prev.definite |= f.definite;
                if let (
                    FindingKind::IndexOut {
                        index: pi,
                        len: pl,
                        declared: pd,
                        ..
                    },
                    FindingKind::IndexOut {
                        index: ni,
                        len: nl,
                        declared: nd,
                        ..
                    },
                ) = (&mut prev.kind, &f.kind)
                {
                    *pi = pi.join(*ni);
                    *pl = pl.join(*nl);
                    *pd |= *nd;
                }
            }
            None => {
                index.insert(key, out.len());
                out.push(f);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The walker
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Ctx {
    /// True while the abstract state is known to coincide with every
    /// concrete run reaching this point (no indeterminate branch taken,
    /// no summarized loop, no prior definite abort). Findings raised
    /// while `reached` are *definite*; otherwise "possible".
    reached: bool,
    /// False during non-final fixpoint rounds so repeated body walks do
    /// not duplicate findings.
    report: bool,
    /// Position of the innermost enclosing statement that carries one.
    pos: Option<Pos>,
}

struct Walker {
    findings: Vec<Finding>,
    steps: u64,
    budget: u64,
}

impl Walker {
    fn finding(&mut self, kind: FindingKind, ctx: &Ctx, definite_here: bool) {
        if ctx.report {
            self.findings.push(Finding {
                kind,
                pos: ctx.pos,
                definite: definite_here && ctx.reached,
            });
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], env: &mut Env, ctx: &mut Ctx) -> Cost {
        let mut cost = Cost::ZERO;
        for s in stmts {
            cost = cost.add(self.exec_stmt(s, env, ctx));
        }
        cost
    }

    fn exec_stmt(&mut self, s: &Stmt, env: &mut Env, ctx: &mut Ctx) -> Cost {
        self.steps += 1;
        // Every statement entry ticks once in the interpreter.
        let mut cost = Cost::point(1.0);
        match s {
            Stmt::Assign { var, expr, pos } => {
                ctx.pos = Some(*pos);
                let (v, c) = self.eval(expr, env, ctx);
                cost = cost.add(c);
                env.insert(var.clone(), VarState::assigned(v));
            }
            Stmt::AssignIndex {
                var,
                index,
                expr,
                pos,
            } => {
                ctx.pos = Some(*pos);
                let (iv, ic) = self.eval(index, env, ctx);
                let (_, vc) = self.eval(expr, env, ctx);
                cost = cost.add(ic).add(vc);
                // The store itself never ticks; the interpreter then
                // requires the array to exist and the index in range.
                let arr = self.check_read(var, env, ctx);
                self.check_bounds(var, &iv, &arr, ctx);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                pos,
            } => {
                ctx.pos = Some(*pos);
                let (cv, cc) = self.eval(cond, env, ctx);
                cost = cost.add(cc);
                match cv.num_or_top().truth() {
                    Some(true) => cost = cost.add(self.exec_block(then_body, env, ctx)),
                    Some(false) => cost = cost.add(self.exec_block(else_body, env, ctx)),
                    None => {
                        let mut then_env = env.clone();
                        let mut tctx = Ctx {
                            reached: false,
                            ..*ctx
                        };
                        let tc = self.exec_block(then_body, &mut then_env, &mut tctx);
                        let mut ectx = Ctx {
                            reached: false,
                            ..*ctx
                        };
                        let ec = self.exec_block(else_body, env, &mut ectx);
                        *env = join_env(&then_env, env);
                        cost = cost.add(tc.join(ec));
                    }
                }
            }
            Stmt::While { cond, body, pos } => {
                ctx.pos = Some(*pos);
                let mut trial_env = env.clone();
                let mut trial_ctx = *ctx;
                let fsnap = self.findings.len();
                match self.concrete_while(cond, body, &mut trial_env, &mut trial_ctx) {
                    Some(c) => {
                        *env = trial_env;
                        *ctx = trial_ctx;
                        cost = cost.add(c);
                    }
                    None => {
                        self.findings.truncate(fsnap);
                        cost = cost.add(self.summarized_while(cond, body, env, ctx));
                    }
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                pos,
            } => {
                ctx.pos = Some(*pos);
                let (fv, fc) = self.eval(from, env, ctx);
                let (tv, tc) = self.eval(to, env, ctx);
                cost = cost.add(fc).add(tc);
                cost = cost.add(self.exec_for(var, &fv, &tv, body, env, ctx));
            }
            Stmt::Print { expr: e, pos } => {
                ctx.pos = Some(*pos);
                let (_, c) = self.eval(e, env, ctx);
                cost = cost.add(c);
            }
        }
        cost
    }

    /// The `for` loop after bound evaluation: unroll point bounds within
    /// budget, otherwise summarize with inferred trip-count arithmetic.
    fn exec_for(
        &mut self,
        var: &str,
        fv: &AbsVal,
        tv: &AbsVal,
        body: &[Stmt],
        env: &mut Env,
        ctx: &mut Ctx,
    ) -> Cost {
        let f = fv.num_or_top().round();
        let t = tv.num_or_top().round();
        let max_trips = (t.hi - f.lo + 1.0).max(0.0);
        let min_trips = (t.lo - f.hi + 1.0).max(0.0);
        // Set when the unroll proves the concrete loop never terminates
        // (the `i += 1.0` increment stalls): every run ends in StepLimit.
        let mut diverges = false;

        if f.is_point() && t.is_point() {
            let trips = max_trips;
            let per_iter = (count_stmts(body) + 1) as f64;
            if trips * per_iter <= (self.budget.saturating_sub(self.steps)) as f64 {
                // UNROLL: concrete iteration, exact cost, per-iteration
                // singleton loop variable (triangular nests stay exact).
                // Discarded like `concrete_while`'s trial when it cannot
                // finish: the summarized path re-derives findings.
                let pre_env = env.clone();
                let pre_ctx = *ctx;
                let fsnap = self.findings.len();
                let mut cost = Cost::ZERO;
                let mut i = f.lo;
                let mut finished = true;
                while i <= t.hi {
                    // The trip pre-check can under-count (nested loops grow
                    // inner bounds); re-check so unrolling never outruns the
                    // budget.
                    if self.steps > self.budget {
                        finished = false;
                        break;
                    }
                    env.insert(
                        var.to_string(),
                        VarState::assigned(AbsVal::scalar(Interval::point(i))),
                    );
                    cost = cost
                        .add(self.exec_block(body, env, ctx))
                        .add(Cost::point(1.0));
                    let next = i + 1.0;
                    if next == i {
                        // Past 2^53 the float step is a no-op: the
                        // interpreter re-runs this iteration until its
                        // step limit, so the loop definitely diverges.
                        finished = false;
                        diverges = true;
                        break;
                    }
                    i = next;
                }
                if finished {
                    return cost;
                }
                *env = pre_env;
                *ctx = pre_ctx;
                self.findings.truncate(fsnap);
            }
        }
        if max_trips == 0.0 {
            return Cost::ZERO; // never runs; loop variable stays unset
        }

        // SUMMARIZE: fixpoint over the body with the loop variable pinned
        // to its full range, then trip-count arithmetic. Point trip
        // counts with point body costs stay exact without unrolling.
        let pre = env.clone();
        let range = Interval::new(f.lo, t.hi);
        let body_cost = self.fix(body, env, ctx, Some((var, range)));
        if min_trips == 0.0 {
            *env = join_env(env, &pre);
        } else {
            // The loop definitely executes, so the loop variable and every
            // name assigned on all paths through the body are initialized
            // afterwards; `fix` joined with the pre-loop state and demoted
            // them to `Maybe`.
            let mut definite = must_assigned_vars(body);
            definite.insert(var.to_string());
            for v in definite {
                if let Some(vs) = env.get_mut(&v) {
                    vs.init = Init::Yes;
                }
            }
        }
        let trips_est = if max_trips.is_finite() {
            0.5 * (min_trips + max_trips)
        } else {
            min_trips.max(LOOP_FACTOR)
        };
        let mut cost = Cost {
            lo: min_trips * (body_cost.lo + 1.0),
            hi: max_trips * (body_cost.hi + 1.0),
            est: trips_est * (body_cost.est + 1.0),
        };
        if diverges {
            // No clean run exists: the cost is unbounded (never `exact`)
            // and nothing after the loop is concretely reached.
            cost.hi = f64::INFINITY;
            ctx.reached = false;
        }
        cost
    }

    /// Runs a `while` loop concretely while the condition stays
    /// determinate and the budget holds. Returns `None` (with `env`,
    /// `ctx` and findings to be discarded by the caller) when the loop
    /// must be summarized instead.
    fn concrete_while(
        &mut self,
        cond: &Expr,
        body: &[Stmt],
        env: &mut Env,
        ctx: &mut Ctx,
    ) -> Option<Cost> {
        let mut cost = Cost::ZERO;
        loop {
            self.steps += 1;
            if self.steps > self.budget {
                return None;
            }
            let (cv, cc) = self.eval(cond, env, ctx);
            cost = cost.add(cc);
            match cv.num_or_top().truth() {
                Some(false) => return Some(cost),
                Some(true) => {
                    if !ctx.reached {
                        // A definite abort inside the loop: the interval
                        // model may never terminate it. Summarize.
                        return None;
                    }
                    cost = cost.add(self.exec_block(body, env, ctx));
                    cost = cost.add(Cost::point(1.0));
                }
                None => return None,
            }
        }
    }

    /// Sound summary of a `while` loop: one reported condition
    /// evaluation, a widening fixpoint over the body, unbounded upper
    /// cost, `LOOP_FACTOR` point estimate.
    fn summarized_while(
        &mut self,
        cond: &Expr,
        body: &[Stmt],
        env: &mut Env,
        ctx: &mut Ctx,
    ) -> Cost {
        let cond_vars = expr_vars(cond);
        let body_assigns = assigned_vars(body);
        if cond_vars.iter().all(|v| !body_assigns.contains(v)) {
            // No condition variable is ever assigned in the body (this
            // includes constant guards like `while 1`): the interval
            // model has no decreasing variant at all.
            self.finding(
                FindingKind::NoVariant {
                    vars: cond_vars.into_iter().collect(),
                },
                ctx,
                false,
            );
        }

        let (cv, cc) = self.eval(cond, env, ctx);
        if cv.num_or_top().truth() == Some(false) {
            return cc; // loop never entered
        }
        let pre = env.clone();
        let body_cost = self.fix(body, env, ctx, None);
        *env = join_env(env, &pre);
        ctx.reached = false;
        Cost {
            lo: cc.lo,
            hi: f64::INFINITY,
            est: (LOOP_FACTOR + 1.0) * cc.est + LOOP_FACTOR * (body_cost.est + 1.0),
        }
    }

    /// Widening fixpoint over a loop body. Mutates `env` into a
    /// post-fixpoint (the loop invariant joined with the final reporting
    /// pass) and returns the body cost measured on the stabilized state.
    fn fix(
        &mut self,
        body: &[Stmt],
        env: &mut Env,
        ctx: &Ctx,
        loop_var: Option<(&str, Interval)>,
    ) -> Cost {
        let seed = |e: &mut Env| {
            if let Some((v, iv)) = loop_var {
                e.insert(v.to_string(), VarState::assigned(AbsVal::scalar(iv)));
            }
        };
        let mut cur = env.clone();
        let mut stable = false;
        for round in 0..12 {
            let mut trial = cur.clone();
            seed(&mut trial);
            let mut c = Ctx {
                reached: false,
                report: false,
                pos: ctx.pos,
            };
            let _ = self.exec_block(body, &mut trial, &mut c);
            let joined = join_env(&cur, &trial);
            if joined == cur {
                stable = true;
                break;
            }
            cur = if round == 0 {
                joined
            } else {
                widen_env(&cur, &joined)
            };
        }
        if !stable {
            // Provably post-fixpoint fallback: every body-assigned
            // variable goes fully unknown.
            for v in assigned_vars(body) {
                cur.insert(
                    v,
                    VarState {
                        val: AbsVal::any(),
                        init: Init::Maybe,
                    },
                );
            }
        }
        // One reporting pass over the stabilized state.
        let mut report_env = cur.clone();
        seed(&mut report_env);
        let mut c = Ctx {
            reached: false,
            report: ctx.report,
            pos: ctx.pos,
        };
        let body_cost = self.exec_block(body, &mut report_env, &mut c);
        *env = join_env(&cur, &report_env);
        body_cost
    }

    /// Checks a variable read for definite initialization, recording a
    /// finding when it may be unset. Returns the abstract value.
    fn check_read(&mut self, var: &str, env: &Env, ctx: &mut Ctx) -> AbsVal {
        match env_get(env, var) {
            Some(vs) => {
                match vs.init {
                    Init::Yes => {}
                    Init::Maybe => {
                        self.finding(FindingKind::UninitRead { var: var.into() }, ctx, false);
                    }
                    Init::No => {
                        self.finding(FindingKind::UninitRead { var: var.into() }, ctx, true);
                        ctx.reached = false;
                    }
                }
                vs.val.clone()
            }
            None => {
                self.finding(FindingKind::UninitRead { var: var.into() }, ctx, true);
                ctx.reached = false;
                AbsVal::any()
            }
        }
    }

    /// Bounds-checks an index against the array's known length range.
    fn check_bounds(&mut self, var: &str, index: &AbsVal, arr: &AbsVal, ctx: &mut Ctx) {
        let len = match arr.len {
            Some(l) => l,
            None => return, // definitely a scalar: NotAnArray, not B041
        };
        let idx = index.num_or_top().round();
        let definite = idx.hi < 1.0 || idx.lo > len.hi;
        // "Possibly out" measures against the *minimum* feasible length
        // (an index of 4 into len ∈ [3,5] can fail at runtime) — but only
        // when the length range carries real information; a fully unknown
        // length ([0, ∞], the unseeded-input default) would flag every
        // access.
        let informative = len.hi.is_finite() || len.lo > 0.0;
        let possible = idx.lo < 1.0 || (informative && idx.hi > len.lo);
        if !possible && !definite {
            return;
        }
        let declared = arr.len_declared;
        self.finding(
            FindingKind::IndexOut {
                var: var.into(),
                index: idx,
                len,
                declared,
            },
            ctx,
            definite && !declared,
        );
        if definite && !declared && ctx.reached {
            ctx.reached = false;
        }
    }

    fn eval(&mut self, expr: &Expr, env: &mut Env, ctx: &mut Ctx) -> (AbsVal, Cost) {
        match expr {
            Expr::Num(v) => (AbsVal::scalar(Interval::point(*v)), Cost::ZERO),
            Expr::Var(name) => (self.check_read(name, env, ctx), Cost::ZERO),
            Expr::Index(name, idx) => {
                let (iv, ic) = self.eval(idx, env, ctx);
                let arr = self.check_read(name, env, ctx);
                self.check_bounds(name, &iv, &arr, ctx);
                // Element values are not tracked; the read ticks once.
                (AbsVal::scalar(Interval::TOP), ic.add(Cost::point(1.0)))
            }
            Expr::Call(name, args) => self.eval_call(name, args, env, ctx),
            Expr::Bin(op, lhs, rhs) => match op {
                BinOp::And | BinOp::Or => self.eval_logic(*op, lhs, rhs, env, ctx),
                _ => {
                    let (lv, lc) = self.eval(lhs, env, ctx);
                    let (rv, rc) = self.eval(rhs, env, ctx);
                    let l = lv.num_or_top();
                    let r = rv.num_or_top();
                    if *op == BinOp::Div && r.lo == 0.0 && r.hi == 0.0 {
                        self.finding(FindingKind::DivByZero, ctx, true);
                    }
                    (
                        AbsVal::scalar(abs_bin(*op, l, r)),
                        lc.add(rc).add(Cost::point(1.0)),
                    )
                }
            },
            Expr::Un(op, inner) => {
                let (v, c) = self.eval(inner, env, ctx);
                let i = v.num_or_top();
                let out = match op {
                    UnOp::Neg => Interval::new(-i.hi, -i.lo),
                    UnOp::Not => match i.truth() {
                        Some(t) => Interval::point(if t { 0.0 } else { 1.0 }),
                        None => Interval::new(0.0, 1.0),
                    },
                };
                (AbsVal::scalar(out), c.add(Cost::point(1.0)))
            }
        }
    }

    /// `and` / `or` with the interpreter's short-circuit tick placement:
    /// left operand, one tick, then the right operand only when needed.
    fn eval_logic(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        env: &mut Env,
        ctx: &mut Ctx,
    ) -> (AbsVal, Cost) {
        let (lv, lc) = self.eval(lhs, env, ctx);
        let mut cost = lc.add(Cost::point(1.0));
        let lt = lv.num_or_top().truth();
        let short = match (op, lt) {
            (BinOp::And, Some(false)) => Some(0.0),
            (BinOp::Or, Some(true)) => Some(1.0),
            _ => None,
        };
        if let Some(v) = short {
            return (AbsVal::scalar(Interval::point(v)), cost);
        }
        if lt.is_some() {
            // Right side definitely evaluated.
            let (rv, rc) = self.eval(rhs, env, ctx);
            cost = cost.add(rc);
            let out = match rv.num_or_top().truth() {
                Some(t) => Interval::point(if t { 1.0 } else { 0.0 }),
                None => Interval::new(0.0, 1.0),
            };
            return (AbsVal::scalar(out), cost);
        }
        // May or may not evaluate the right side: its findings are only
        // "possible", its cost only contributes to the upper bound.
        let saved = ctx.reached;
        ctx.reached = false;
        let (_, rc) = self.eval(rhs, env, ctx);
        ctx.reached = saved;
        cost.hi += rc.hi;
        cost.est += 0.5 * rc.est;
        (AbsVal::scalar(Interval::new(0.0, 1.0)), cost)
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Expr],
        env: &mut Env,
        ctx: &mut Ctx,
    ) -> (AbsVal, Cost) {
        let b = match builtins::lookup(name) {
            Some(b) if args.len() == b.arity => b,
            // Unknown function / wrong arity: the interpreter aborts
            // before evaluating any argument.
            _ => {
                ctx.reached = false;
                return (AbsVal::any(), Cost::ZERO);
            }
        };
        let mut cost = Cost::ZERO;
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            let (v, c) = self.eval(a, env, ctx);
            cost = cost.add(c);
            vals.push(v);
        }
        cost = cost.add(Cost::point(b.cost as f64));

        // Definite IEEE domain escapes (still warnings: the calculator
        // completes with NaN/-inf, it does not abort).
        match name {
            "sqrt" => {
                if let Some(i) = vals[0].num {
                    if i.hi < 0.0 {
                        self.finding(FindingKind::Domain { func: name.into() }, ctx, true);
                    }
                }
            }
            "ln" | "log10" => {
                if let Some(i) = vals[0].num {
                    if i.hi <= 0.0 {
                        self.finding(FindingKind::Domain { func: name.into() }, ctx, true);
                    }
                }
            }
            _ => {}
        }

        (self.apply_builtin(name, &vals, ctx), cost)
    }

    /// Abstract builtin application. All-point scalar arguments take the
    /// concrete path through the real builtin implementation, so results
    /// are bit-identical to a trial run.
    fn apply_builtin(&mut self, name: &str, vals: &[AbsVal], ctx: &mut Ctx) -> AbsVal {
        let points: Option<Vec<Value>> = vals
            .iter()
            .map(|v| match (v.num, v.len) {
                (Some(i), None) if i.is_point() => Some(Value::Num(i.lo)),
                _ => None,
            })
            .collect();
        if let Some(args) = points {
            return match builtins::apply(name, &args) {
                Ok(v) => AbsVal::of_value(&v),
                Err(_) => {
                    // zeros(-1) and friends: a genuine runtime abort.
                    ctx.reached = false;
                    AbsVal::any()
                }
            };
        }
        let arg = |i: usize| vals.get(i).map(|v| v.num_or_top()).unwrap_or(Interval::TOP);
        let mono = |f: fn(f64) -> f64, i: Interval| AbsVal::scalar(Interval::new(f(i.lo), f(i.hi)));
        match name {
            "abs" => {
                let i = arg(0);
                AbsVal::scalar(if i.lo >= 0.0 {
                    i
                } else if i.hi <= 0.0 {
                    Interval::new(-i.hi, -i.lo)
                } else {
                    Interval::new(0.0, i.lo.abs().max(i.hi.abs()))
                })
            }
            "floor" => mono(f64::floor, arg(0)),
            "ceil" => mono(f64::ceil, arg(0)),
            "round" => mono(f64::round, arg(0)),
            "exp" => mono(f64::exp, arg(0)),
            "atan" => mono(f64::atan, arg(0)),
            "sqrt" => {
                let i = arg(0);
                if i.lo >= 0.0 {
                    mono(f64::sqrt, i)
                } else {
                    AbsVal::scalar(Interval::TOP)
                }
            }
            "ln" => {
                let i = arg(0);
                if i.lo > 0.0 {
                    mono(f64::ln, i)
                } else {
                    AbsVal::scalar(Interval::TOP)
                }
            }
            "log10" => {
                let i = arg(0);
                if i.lo > 0.0 {
                    mono(f64::log10, i)
                } else {
                    AbsVal::scalar(Interval::TOP)
                }
            }
            "sin" | "cos" => AbsVal::scalar(Interval::new(-1.0, 1.0)),
            "atan2" => AbsVal::scalar(Interval::new(-std::f64::consts::PI, std::f64::consts::PI)),
            "min" => {
                let (a, b) = (arg(0), arg(1));
                AbsVal::scalar(Interval::new(a.lo.min(b.lo), a.hi.min(b.hi)))
            }
            "max" => {
                let (a, b) = (arg(0), arg(1));
                AbsVal::scalar(Interval::new(a.lo.max(b.lo), a.hi.max(b.hi)))
            }
            "len" => {
                let l = vals
                    .first()
                    .and_then(|v| v.len)
                    .unwrap_or_else(|| Interval::new(0.0, f64::INFINITY));
                AbsVal::scalar(l)
            }
            "zeros" => AbsVal::array(arg(0).round()),
            "fill" => AbsVal::array(arg(0).round()),
            _ => AbsVal::scalar(Interval::TOP),
        }
    }

    // -- backward liveness (dead-assignment detection) ---------------------

    fn live_block(&mut self, stmts: &[Stmt], live: &mut BTreeSet<String>, report: bool) {
        for s in stmts.iter().rev() {
            self.live_stmt(s, live, report);
        }
    }

    fn live_stmt(&mut self, s: &Stmt, live: &mut BTreeSet<String>, report: bool) {
        match s {
            Stmt::Assign { var, expr, pos } => {
                if report && !live.contains(var) {
                    self.findings.push(Finding {
                        kind: FindingKind::DeadAssign { var: var.clone() },
                        pos: Some(*pos),
                        definite: false,
                    });
                }
                live.remove(var);
                collect_expr_vars(expr, live);
            }
            Stmt::AssignIndex {
                var, index, expr, ..
            } => {
                // Element stores are use + def: the rest of the array
                // survives, so the target is never considered dead.
                live.insert(var.clone());
                collect_expr_vars(index, live);
                collect_expr_vars(expr, live);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let mut then_live = live.clone();
                self.live_block(then_body, &mut then_live, report);
                self.live_block(else_body, live, report);
                live.extend(then_live);
                collect_expr_vars(cond, live);
            }
            Stmt::While { cond, body, .. } => {
                self.live_loop(body, live, report, cond, None);
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                self.live_loop(body, live, report, from, Some(to));
                // The loop variable is written by the loop itself and
                // stays readable after it; treat it as live-in so prior
                // assignments to it are (conservatively) kept.
                live.insert(var.clone());
            }
            Stmt::Print { expr: e, .. } => collect_expr_vars(e, live),
        }
    }

    /// Live-variable fixpoint for a loop body plus its guard expressions.
    fn live_loop(
        &mut self,
        body: &[Stmt],
        live: &mut BTreeSet<String>,
        report: bool,
        guard: &Expr,
        extra_guard: Option<&Expr>,
    ) {
        let mut cur = live.clone();
        collect_expr_vars(guard, &mut cur);
        if let Some(g) = extra_guard {
            collect_expr_vars(g, &mut cur);
        }
        loop {
            let mut trial = cur.clone();
            self.live_block(body, &mut trial, false);
            trial.extend(cur.iter().cloned());
            if trial == cur {
                break;
            }
            cur = trial;
        }
        let mut r = cur.clone();
        self.live_block(body, &mut r, report);
        *live = cur;
    }
}

// ---------------------------------------------------------------------------
// Syntactic helpers
// ---------------------------------------------------------------------------

fn count_stmts(stmts: &[Stmt]) -> u64 {
    stmts
        .iter()
        .map(|s| {
            1 + match s {
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => count_stmts(then_body) + count_stmts(else_body),
                Stmt::While { body, .. } | Stmt::For { body, .. } => count_stmts(body),
                _ => 0,
            }
        })
        .sum()
}

fn collect_expr_vars(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Num(_) => {}
        Expr::Var(v) => {
            out.insert(v.clone());
        }
        Expr::Index(v, idx) => {
            out.insert(v.clone());
            collect_expr_vars(idx, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_expr_vars(a, out);
            }
        }
        Expr::Bin(_, l, r) => {
            collect_expr_vars(l, out);
            collect_expr_vars(r, out);
        }
        Expr::Un(_, inner) => collect_expr_vars(inner, out),
    }
}

fn expr_vars(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_expr_vars(e, &mut out);
    out
}

/// Variables assigned anywhere (syntactically) in a statement list.
fn assigned_vars(stmts: &[Stmt]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_assigned(stmts, &mut out);
    out
}

fn collect_assigned(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { var, .. } | Stmt::AssignIndex { var, .. } => {
                out.insert(var.clone());
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
            Stmt::While { body, .. } => collect_assigned(body, out),
            Stmt::For { var, body, .. } => {
                out.insert(var.clone());
                collect_assigned(body, out);
            }
            Stmt::Print { .. } => {}
        }
    }
}

fn syntactically_assigns(stmts: &[Stmt], var: &str) -> bool {
    assigned_vars(stmts).contains(var)
}

/// Variables assigned on *every* path through one execution of `stmts`
/// (branches intersect; loops may run zero times and element stores
/// require the array to already exist, so neither contributes). Used to
/// promote `Init` through loops that definitely execute.
fn must_assigned_vars(stmts: &[Stmt]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for s in stmts {
        match s {
            Stmt::Assign { var, .. } => {
                out.insert(var.clone());
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                let t = must_assigned_vars(then_body);
                let e = must_assigned_vars(else_body);
                out.extend(t.intersection(&e).cloned());
            }
            Stmt::AssignIndex { .. }
            | Stmt::While { .. }
            | Stmt::For { .. }
            | Stmt::Print { .. } => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use crate::parser::parse_program;

    fn findings_of(src: &str) -> Vec<Finding> {
        analyze(&parse_program(src).unwrap()).findings
    }

    fn has(findings: &[Finding], tag: &str, definite: bool) -> bool {
        findings
            .iter()
            .any(|f| f.kind.tag() == tag && f.definite == definite)
    }

    #[test]
    fn interval_basics() {
        assert_eq!(Interval::point(f64::NAN), Interval::TOP);
        assert_eq!(Interval::new(3.0, 1.0), Interval::TOP);
        assert!(Interval::point(2.0).is_point());
        assert!(!Interval::TOP.is_point());
        assert_eq!(
            Interval::new(1.0, 2.0).join(Interval::new(4.0, 5.0)),
            Interval::new(1.0, 5.0)
        );
        let w = Interval::new(0.0, 10.0).widen(Interval::new(0.0, 11.0));
        assert_eq!(w, Interval::new(0.0, f64::INFINITY));
        assert_eq!(Interval::point(0.0).truth(), Some(false));
        assert_eq!(Interval::new(1.0, 9.0).truth(), Some(true));
        assert_eq!(Interval::new(-1.0, 1.0).truth(), None);
    }

    #[test]
    fn abs_bin_points_match_interp() {
        for op in [BinOp::Add, BinOp::Mul, BinOp::Div, BinOp::Mod, BinOp::Pow] {
            let got = abs_bin(op, Interval::point(7.0), Interval::point(3.0));
            assert_eq!(got, Interval::point(concrete_bin(op, 7.0, 3.0)), "{op:?}");
        }
    }

    #[test]
    fn abs_bin_div_by_interval_containing_zero_is_top() {
        let d = abs_bin(BinOp::Div, Interval::point(1.0), Interval::new(-1.0, 1.0));
        assert_eq!(d, Interval::TOP);
    }

    #[test]
    fn uninit_read_definite_and_possible() {
        // q read with no assignment anywhere: definite.
        let f = findings_of("task T out x local q begin x := q + 1 end");
        assert!(has(&f, "uninit-read", true), "{f:?}");
        // assigned only on one branch of an unknown condition: possible.
        let f = findings_of(
            "task T in a out x local q begin \
             if a > 0 then q := 1 end x := q end",
        );
        assert!(has(&f, "uninit-read", false), "{f:?}");
        assert!(!has(&f, "uninit-read", true), "{f:?}");
        // assigned on both branches: clean.
        let f = findings_of(
            "task T in a out x local q begin \
             if a > 0 then q := 1 else q := 2 end x := q end",
        );
        assert!(!f.iter().any(|x| x.kind.tag() == "uninit-read"), "{f:?}");
    }

    #[test]
    fn dead_branch_reads_are_skipped() {
        // The `if 0` branch never runs; the interpreter never reads q.
        let f = findings_of("task T out x local q begin if 0 then x := q else x := 1 end end");
        assert!(!f.iter().any(|x| x.kind.tag() == "uninit-read"), "{f:?}");
    }

    #[test]
    fn index_out_definite_and_possible() {
        // Flowed length: w := zeros(3), index 5 definitely out.
        let f = findings_of("task T out x local w begin w := zeros(3) x := w[5] end");
        assert!(has(&f, "index-out", true), "{f:?}");
        // Index 0 is always out (1-based), even with unknown length.
        let f = findings_of("task T in v out x begin x := v[0] end");
        assert!(has(&f, "index-out", true), "{f:?}");
        // Possibly out: index ranges past the end.
        let f = findings_of(
            "task T out s local w, i begin \
             w := zeros(3) s := 0 for i := 1 to 4 do s := s + w[i] end end",
        );
        assert!(f.iter().any(|x| x.kind.tag() == "index-out"), "{f:?}");
        // In-bounds loop over a flowed length: clean.
        let f = findings_of(
            "task T out s local w, i begin \
             w := zeros(3) s := 0 for i := 1 to 3 do s := s + w[i] end end",
        );
        assert!(!f.iter().any(|x| x.kind.tag() == "index-out"), "{f:?}");
    }

    #[test]
    fn index_out_against_declared_length_is_not_definite() {
        let p = parse_program("task T in v out x begin x := v[9] end").unwrap();
        let mut opts = AnalysisOptions::default();
        let mut v = AbsVal::array(Interval::point(3.0));
        v.len_declared = true;
        opts.inputs.insert("v".into(), v);
        let a = analyze_with(&p, &opts);
        let f = &a.findings;
        assert!(has(f, "index-out", false), "{f:?}");
        assert!(!has(f, "index-out", true), "{f:?}");
    }

    #[test]
    fn division_by_definite_zero_flagged() {
        let f = findings_of("task T out x local z begin z := 0 x := 1 / z end");
        assert!(has(&f, "div-by-zero", true), "{f:?}");
        let f = findings_of("task T in a out x begin x := 1 / a end");
        assert!(!f.iter().any(|x| x.kind.tag() == "div-by-zero"), "{f:?}");
    }

    #[test]
    fn domain_errors_flagged() {
        let f = findings_of("task T out x begin x := sqrt(0 - 2) end");
        assert!(has(&f, "domain", true), "{f:?}");
        let f = findings_of("task T out x begin x := ln(0) end");
        assert!(has(&f, "domain", true), "{f:?}");
        let f = findings_of("task T in a out x begin x := sqrt(a) end");
        assert!(!f.iter().any(|x| x.kind.tag() == "domain"), "{f:?}");
    }

    #[test]
    fn while_without_variant_flagged() {
        let f = findings_of("task T in a out x begin x := 0 while a > 0 do x := x + 1 end end");
        assert!(has(&f, "no-variant", false), "{f:?}");
        // Decreasing variant present: no finding.
        let f = findings_of("task T in a out x begin x := a while x > 0 do x := x - 1 end end");
        assert!(!f.iter().any(|x| x.kind.tag() == "no-variant"), "{f:?}");
    }

    #[test]
    fn dead_assignment_flagged() {
        let f = findings_of("task T out x local t begin t := 41 t := 42 x := t end");
        assert!(has(&f, "dead-assign", false), "{f:?}");
        let f = findings_of("task T out x local t begin t := 41 x := t end");
        assert!(!f.iter().any(|x| x.kind.tag() == "dead-assign"), "{f:?}");
    }

    #[test]
    fn output_unset_on_some_path_flagged() {
        let f = findings_of("task T in a out x begin if a > 0 then x := 1 end end");
        assert!(has(&f, "output-unset", false), "{f:?}");
        // Assigned only under a constant-false guard: definite.
        let f = findings_of("task T out x begin if 0 then x := 1 end end");
        assert!(has(&f, "output-unset", true), "{f:?}");
        // Never assigned syntactically: left to the interface checks.
        let f = findings_of("task T in a out x begin a := a end");
        assert!(!f.iter().any(|x| x.kind.tag() == "output-unset"), "{f:?}");
    }

    #[test]
    fn summarized_point_trip_loop_stays_exact() {
        // Too many iterations to unroll, but the trip count and body
        // cost are points: the summary is still exact.
        let src = "task T out s local i begin \
                   s := 0 for i := 1 to 1000000 do s := s + 1 end end";
        let p = parse_program(src).unwrap();
        let a = analyze(&p);
        assert!(a.cost.exact, "{:?}", a.cost);
        let out = interp::run(&p, &Default::default()).unwrap();
        assert_eq!(out.ops as f64, a.cost.ops_lo);
    }

    #[test]
    fn pi_kernel_exact_with_seeded_input() {
        let src = "task Pi
  in n
  out p
  local h, x, i
begin
  h := 1 / n
  p := 0
  for i := 1 to n do
    x := (i - 0.5) * h
    p := p + 4 / (1 + x * x)
  end
  p := p * h
end";
        let p = parse_program(src).unwrap();
        let mut opts = AnalysisOptions::default();
        opts.inputs
            .insert("n".into(), AbsVal::scalar(Interval::point(1000.0)));
        let a = analyze_with(&p, &opts);
        assert!(a.cost.exact, "{:?}", a.cost);
        let out = interp::run(
            &p,
            &[("n".to_string(), Value::Num(1000.0))]
                .into_iter()
                .collect(),
        )
        .unwrap();
        assert_eq!(out.ops as f64, a.cost.ops_lo);
        // Without the seed the loop is unbounded above.
        let unseeded = analyze(&p);
        assert!(!unseeded.cost.exact);
        assert!(unseeded.cost.ops_lo <= out.ops as f64);
    }

    #[test]
    fn sqrt_fig4_exact_with_seeded_input() {
        let src = "task SquareRoot
  in a
  out x
  local g, prev
begin
  g := a / 2
  prev := 0
  while abs(g - prev) > 1e-12 do
    prev := g
    g := (g + a / g) / 2
  end
  x := g
end";
        let p = parse_program(src).unwrap();
        let mut opts = AnalysisOptions::default();
        opts.inputs
            .insert("a".into(), AbsVal::scalar(Interval::point(2.0)));
        let a = analyze_with(&p, &opts);
        assert!(a.cost.exact, "{:?}", a.cost);
        let out = interp::run(
            &p,
            &[("a".to_string(), Value::Num(2.0))].into_iter().collect(),
        )
        .unwrap();
        assert_eq!(out.ops as f64, a.cost.ops_lo);
    }

    #[test]
    fn triangular_nest_unrolls_exactly() {
        let src = "task T out s local i, j begin \
                   s := 0 for i := 1 to 9 do for j := i to 9 do s := s + 1 end end end";
        let p = parse_program(src).unwrap();
        let a = analyze(&p);
        assert!(a.cost.exact, "{:?}", a.cost);
        let out = interp::run(&p, &Default::default()).unwrap();
        assert_eq!(out.ops as f64, a.cost.ops_lo);
    }

    #[test]
    fn short_circuit_skips_rhs_findings() {
        // `0 and q` never evaluates q; `1 or q` never evaluates q.
        let f = findings_of("task T out x local q begin x := 0 and q end");
        assert!(!f.iter().any(|x| x.kind.tag() == "uninit-read"), "{f:?}");
        let f = findings_of("task T out x local q begin x := 1 or q end");
        assert!(!f.iter().any(|x| x.kind.tag() == "uninit-read"), "{f:?}");
        // An unknown guard makes the read merely possible.
        let f = findings_of("task T in a out x local q begin x := a and q end");
        assert!(has(&f, "uninit-read", false), "{f:?}");
        assert!(!has(&f, "uninit-read", true), "{f:?}");
    }

    #[test]
    fn huge_point_bounds_terminate_without_exact_claim() {
        // At 1e16 the interpreter's `i += 1.0` is a float no-op, so the
        // concrete loop spins to its step limit. The analyzer's unroll
        // must detect the stall (not hang), report unbounded cost, and
        // treat everything after the loop as unreached.
        let src = "task T out s local i begin \
                   s := 0 for i := 1e16 to 1e16 do s := s + 1 end end";
        let p = parse_program(src).unwrap();
        let a = analyze(&p);
        assert!(!a.cost.exact, "{:?}", a.cost);
        assert!(a.cost.ops_hi.is_infinite(), "{:?}", a.cost);

        // Same stall mid-range: exact steps up to 2^53, then a no-op.
        let src = "task T out s local i begin \
                   s := 0 for i := 9007199254740991 to 9007199254740995 do \
                   s := s + 1 end end";
        let p = parse_program(src).unwrap();
        let a = analyze(&p);
        assert!(!a.cost.exact, "{:?}", a.cost);
        assert!(a.cost.ops_hi.is_infinite(), "{:?}", a.cost);
    }

    #[test]
    fn index_possibly_out_against_joined_lengths() {
        // len(w) ∈ [3, 5] after the join: index 4 can fail at runtime
        // (actual length 3), so it must be flagged as possibly out.
        let f = findings_of(
            "task T in a out x local w begin \
             if a > 0 then w := zeros(3) else w := zeros(5) end x := w[4] end",
        );
        assert!(has(&f, "index-out", false), "{f:?}");
        assert!(!has(&f, "index-out", true), "{f:?}");
        // A fully unknown input length stays quiet (no warning spam).
        let f = findings_of("task T in v out x begin x := v[4] end");
        assert!(!f.iter().any(|x| x.kind.tag() == "index-out"), "{f:?}");
    }

    #[test]
    fn condition_site_findings_carry_positions_and_stay_distinct() {
        // Two separate division-by-zero sites inside `if` conditions must
        // survive dedup as two located findings.
        let src = "task T in a out x local z begin z := 0 x := 0 \
                   if 1 / z > 0 then x := 1 end \
                   if 2 / z > 0 then x := 2 end end";
        let f = findings_of(src);
        let dz: Vec<_> = f.iter().filter(|x| x.kind.tag() == "div-by-zero").collect();
        assert_eq!(dz.len(), 2, "{f:?}");
        assert!(dz.iter().all(|x| x.pos.is_some()), "{f:?}");
    }

    #[test]
    fn must_run_summarized_loop_initializes_assignments() {
        // Too many trips to unroll, but the loop definitely executes:
        // names assigned on every path through the body (and the loop
        // variable) are definitely initialized afterwards.
        let f = findings_of(
            "task T out x local i begin \
             for i := 1 to 1000000 do x := i end end",
        );
        assert!(
            !f.iter()
                .any(|x| matches!(x.kind.tag(), "uninit-read" | "output-unset")),
            "{f:?}"
        );
        let f = findings_of(
            "task T out x local i, s begin \
             for i := 1 to 1000000 do s := 1 end x := s end",
        );
        assert!(!f.iter().any(|x| x.kind.tag() == "uninit-read"), "{f:?}");
        // A loop that may run zero times still demotes to Maybe.
        let f = findings_of(
            "task T in n out x local i begin \
             for i := 1 to n do x := i end end",
        );
        assert!(has(&f, "output-unset", false), "{f:?}");
    }

    #[test]
    fn findings_deduplicate_per_site() {
        // The same uninit read inside an unrolled loop reports once.
        let f = findings_of(
            "task T out s local i, q begin \
             s := 0 for i := 1 to 50 do s := s + q end end",
        );
        let n = f.iter().filter(|x| x.kind.tag() == "uninit-read").count();
        assert_eq!(n, 1, "{f:?}");
    }

    #[test]
    fn of_value_roundtrip() {
        assert_eq!(
            AbsVal::of_value(&Value::Num(3.0)),
            AbsVal::scalar(Interval::point(3.0))
        );
        assert_eq!(
            AbsVal::of_value(&Value::array(vec![1.0, 2.0])),
            AbsVal::array(Interval::point(2.0))
        );
    }
}
