//! Abstract syntax of the PITS calculator language.

use crate::error::Pos;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^` (right-associative power)
    Pow,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (short-circuit)
    And,
    /// `or` (short-circuit)
    Or,
}

impl BinOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical `not`.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Variable reference.
    Var(String),
    /// Array element `a[i]` (1-based, calculator style).
    Index(String, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

/// Statements.
///
/// Equality is structural and ignores the diagnostic [`Pos`] fields, so
/// parser/pretty-printer round-trips compare equal.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `x := e`
    Assign {
        /// Target variable.
        var: String,
        /// Value.
        expr: Expr,
        /// Source position (for diagnostics).
        pos: Pos,
    },
    /// `x[i] := e`
    AssignIndex {
        /// Target array variable.
        var: String,
        /// 1-based element index.
        index: Expr,
        /// Value.
        expr: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `if c then ... [else ...] end`
    If {
        /// Guard expression.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (may be empty).
        else_body: Vec<Stmt>,
        /// Source position of the `if` keyword.
        pos: Pos,
    },
    /// `while c do ... end`
    While {
        /// Guard expression.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position of the `while` keyword.
        pos: Pos,
    },
    /// `for v := a to b do ... end` (inclusive bounds, step 1)
    For {
        /// Loop variable.
        var: String,
        /// Start value.
        from: Expr,
        /// End value (inclusive).
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position of the `for` keyword.
        pos: Pos,
    },
    /// `print e` — the calculator's result display.
    Print {
        /// The displayed expression.
        expr: Expr,
        /// Source position of the `print` keyword.
        pos: Pos,
    },
}

impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Stmt::Assign {
                    var: v1, expr: e1, ..
                },
                Stmt::Assign {
                    var: v2, expr: e2, ..
                },
            ) => v1 == v2 && e1 == e2,
            (
                Stmt::AssignIndex {
                    var: v1,
                    index: i1,
                    expr: e1,
                    ..
                },
                Stmt::AssignIndex {
                    var: v2,
                    index: i2,
                    expr: e2,
                    ..
                },
            ) => v1 == v2 && i1 == i2 && e1 == e2,
            (
                Stmt::If {
                    cond: c1,
                    then_body: t1,
                    else_body: e1,
                    ..
                },
                Stmt::If {
                    cond: c2,
                    then_body: t2,
                    else_body: e2,
                    ..
                },
            ) => c1 == c2 && t1 == t2 && e1 == e2,
            (
                Stmt::While {
                    cond: c1, body: b1, ..
                },
                Stmt::While {
                    cond: c2, body: b2, ..
                },
            ) => c1 == c2 && b1 == b2,
            (
                Stmt::For {
                    var: v1,
                    from: f1,
                    to: t1,
                    body: b1,
                    ..
                },
                Stmt::For {
                    var: v2,
                    from: f2,
                    to: t2,
                    body: b2,
                    ..
                },
            ) => v1 == v2 && f1 == f2 && t1 == t2 && b1 == b2,
            (Stmt::Print { expr: a, .. }, Stmt::Print { expr: b, .. }) => a == b,
            _ => false,
        }
    }
}

/// A complete PITS task program.
///
/// Equality is structural and ignores the diagnostic `decl_pos` spans, so
/// parser/pretty-printer round-trips compare equal.
#[derive(Debug, Clone)]
pub struct Program {
    /// Task name (`SquareRoot` in Figure 4).
    pub name: String,
    /// Input variables, supplied by arriving dataflow arcs.
    pub inputs: Vec<String>,
    /// Output variables, sent on departing arcs.
    pub outputs: Vec<String>,
    /// Local (scratch) variables.
    pub locals: Vec<String>,
    /// Statement list between `begin` and `end`.
    pub body: Vec<Stmt>,
    /// Source position of each `in`/`out`/`local` declaration, keyed by
    /// variable name. Empty for programs built programmatically; design
    /// lints use it to point diagnostics at the declaring line.
    pub decl_pos: std::collections::BTreeMap<String, Pos>,
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.inputs == other.inputs
            && self.outputs == other.outputs
            && self.locals == other.locals
            && self.body == other.body
    }
}

impl Program {
    /// True when `name` is declared `in`, `out` or `local`.
    pub fn declares(&self, name: &str) -> bool {
        self.inputs.iter().any(|v| v == name)
            || self.outputs.iter().any(|v| v == name)
            || self.locals.iter().any(|v| v == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_cover_all_ops() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::Pow,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
        ] {
            assert!(!op.symbol().is_empty());
        }
    }

    #[test]
    fn declares_checks_all_sections() {
        let p = Program {
            name: "t".into(),
            inputs: vec!["a".into()],
            outputs: vec!["x".into()],
            locals: vec!["g".into()],
            body: vec![],
            decl_pos: Default::default(),
        };
        assert!(p.declares("a"));
        assert!(p.declares("x"));
        assert!(p.declares("g"));
        assert!(!p.declares("q"));
    }
}
