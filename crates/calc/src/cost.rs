//! Static cost estimation: predicts a task's computational weight from
//! its program text, without running it.
//!
//! When a scientist has not yet pressed "trial run", Banger still needs a
//! weight for the scheduler. The static estimator walks the AST counting
//! operator and builtin costs; loop bodies are multiplied by an assumed
//! trip count (`LOOP_FACTOR` for `while`, the literal bounds for a
//! `for` loop with constant bounds). Trial-run measurement
//! ([`crate::interp::Outcome::ops`]) supersedes the estimate when
//! available.

use crate::ast::{Expr, Program, Stmt};
use crate::builtins;

/// Assumed trip count of loops whose bounds are not literal constants.
pub const LOOP_FACTOR: f64 = 10.0;

/// Estimates the cost of a whole program in abstract operations.
pub fn estimate_program(p: &Program) -> f64 {
    block_cost(&p.body)
}

fn block_cost(stmts: &[Stmt]) -> f64 {
    stmts.iter().map(stmt_cost).sum()
}

fn stmt_cost(s: &Stmt) -> f64 {
    match s {
        Stmt::Assign { expr, .. } => 1.0 + expr_cost(expr),
        Stmt::AssignIndex { index, expr, .. } => 2.0 + expr_cost(index) + expr_cost(expr),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            // Branch prediction for estimators: average both arms.
            expr_cost(cond) + 0.5 * (block_cost(then_body) + block_cost(else_body)) + 1.0
        }
        Stmt::While { cond, body } => LOOP_FACTOR * (expr_cost(cond) + block_cost(body) + 1.0),
        Stmt::For {
            var: _,
            from,
            to,
            body,
        } => {
            let trips = match (literal(from), literal(to)) {
                (Some(a), Some(b)) => (b - a + 1.0).max(0.0),
                _ => LOOP_FACTOR,
            };
            expr_cost(from) + expr_cost(to) + trips * (block_cost(body) + 1.0)
        }
        Stmt::Print(e) => 1.0 + expr_cost(e),
    }
}

fn literal(e: &Expr) -> Option<f64> {
    match e {
        Expr::Num(v) => Some(*v),
        _ => None,
    }
}

fn expr_cost(e: &Expr) -> f64 {
    match e {
        Expr::Num(_) | Expr::Var(_) => 0.0,
        Expr::Index(_, idx) => 1.0 + expr_cost(idx),
        Expr::Call(name, args) => {
            let base = builtins::lookup(name).map(|b| b.cost as f64).unwrap_or(4.0);
            base + args.iter().map(expr_cost).sum::<f64>()
        }
        Expr::Bin(_, l, r) => 1.0 + expr_cost(l) + expr_cost(r),
        Expr::Un(_, inner) => 1.0 + expr_cost(inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn straight_line_cost() {
        let p = parse_program("task T in a out x begin x := a + 1 end").unwrap();
        // 1 stmt + 1 op
        assert_eq!(estimate_program(&p), 2.0);
    }

    #[test]
    fn builtin_costs_counted() {
        let p = parse_program("task T in a out x begin x := sqrt(a) end").unwrap();
        // stmt 1 + sqrt 6
        assert_eq!(estimate_program(&p), 7.0);
    }

    #[test]
    fn for_with_literal_bounds_uses_trip_count() {
        let p = parse_program(
            "task T out s local i begin s := 0 for i := 1 to 100 do s := s + i end end",
        )
        .unwrap();
        // s := 0 -> 1; loop: 100 * (body(2) + 1) = 300 => 301
        assert_eq!(estimate_program(&p), 301.0);
    }

    #[test]
    fn for_with_dynamic_bounds_uses_loop_factor() {
        let p = parse_program(
            "task T in n out s local i begin s := 0 for i := 1 to n do s := s + i end end",
        )
        .unwrap();
        assert_eq!(estimate_program(&p), 1.0 + LOOP_FACTOR * 3.0);
    }

    #[test]
    fn while_uses_loop_factor() {
        let p = parse_program("task T in a out x begin x := a while x > 1 do x := x / 2 end end")
            .unwrap();
        // x := a -> 1; while: 10 * (cond 1 + body 2 + 1) = 40 => 41
        assert_eq!(estimate_program(&p), 41.0);
    }

    #[test]
    fn if_averages_branches() {
        let p = parse_program("task T in a out x begin if a > 0 then x := 1 else x := 2 end end")
            .unwrap();
        // cond 1 + 0.5 * (1 + 1) + 1 = 3
        assert_eq!(estimate_program(&p), 3.0);
    }

    #[test]
    fn bigger_programs_cost_more() {
        let small = parse_program("task T in a out x begin x := a end").unwrap();
        let large = parse_program(
            "task T in a out x local i begin x := a for i := 1 to 1000 do x := sqrt(x + i) end end",
        )
        .unwrap();
        assert!(estimate_program(&large) > 100.0 * estimate_program(&small));
    }
}
