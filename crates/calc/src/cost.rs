//! Static cost estimation: predicts a task's computational weight from
//! its program text, without running it.
//!
//! When a scientist has not yet pressed "trial run", Banger still needs a
//! weight for the scheduler. Estimation is backed by the interval-domain
//! abstract interpreter ([`crate::absint`]): loop trip counts are
//! *inferred* — `for` bounds that are constant, or affine in enclosing
//! constants, produce exact operation counts matching the interpreter
//! tick for tick — and only genuinely unbounded loops fall back to the
//! [`LOOP_FACTOR`] guess. Trial-run measurement
//! ([`crate::interp::Outcome::ops`]) supersedes the estimate when
//! available.

use crate::absint::{self, StaticCost};
use crate::ast::Program;

/// Assumed trip count of loops whose bounds cannot be inferred
/// statically (`while` loops without a concrete model, `for` loops over
/// genuinely unknown ranges).
pub const LOOP_FACTOR: f64 = 10.0;

/// Estimates the cost of a whole program in abstract operations.
///
/// This is the point estimate of [`static_cost`]; use that when the
/// bounds (and the `exact` flag) matter.
pub fn estimate_program(p: &Program) -> f64 {
    static_cost(p).est
}

/// Full static operation-count bounds for a program: lower/upper bounds
/// on a clean trial run's `ops`, the scheduler-facing point estimate,
/// and whether the bounds are exact.
pub fn static_cost(p: &Program) -> StaticCost {
    absint::analyze(p).cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn straight_line_cost() {
        let p = parse_program("task T in a out x begin x := a + 1 end").unwrap();
        // 1 stmt tick + 1 op
        assert_eq!(estimate_program(&p), 2.0);
        assert!(static_cost(&p).exact);
    }

    #[test]
    fn builtin_costs_counted() {
        let p = parse_program("task T in a out x begin x := sqrt(a) end").unwrap();
        // stmt 1 + sqrt 6
        assert_eq!(estimate_program(&p), 7.0);
        assert!(static_cost(&p).exact);
    }

    #[test]
    fn for_with_literal_bounds_is_exact() {
        let p = parse_program(
            "task T out s local i begin s := 0 for i := 1 to 100 do s := s + i end end",
        )
        .unwrap();
        // s := 0 -> 1; for stmt tick 1; 100 * (body 2 + iter tick 1) = 300
        let c = static_cost(&p);
        assert_eq!(c.est, 302.0);
        assert!(c.exact, "literal bounds must give exact cost: {c:?}");
        // ... and "exact" means it: matches a real trial run.
        let out = crate::interp::run(&p, &Default::default()).unwrap();
        assert_eq!(out.ops as f64, c.est);
    }

    #[test]
    fn for_with_dynamic_bounds_uses_loop_factor() {
        let p = parse_program(
            "task T in n out s local i begin s := 0 for i := 1 to n do s := s + i end end",
        )
        .unwrap();
        // s := 0 -> 1; for stmt 1; LOOP_FACTOR * (body 2 + 1) = 30
        let c = static_cost(&p);
        assert_eq!(c.est, 2.0 + LOOP_FACTOR * 3.0);
        assert!(!c.exact);
        assert!(c.ops_hi.is_infinite());
    }

    #[test]
    fn for_with_affine_constant_bounds_is_exact() {
        // Non-literal bounds that are affine in enclosing constants used
        // to collapse to LOOP_FACTOR; trip-count inference handles them.
        let p = parse_program(
            "task T out s local i, n begin \
             n := 50 s := 0 for i := 1 to 2 * n + 1 do s := s + i end end",
        )
        .unwrap();
        let c = static_cost(&p);
        assert!(c.exact, "affine constant bounds must be exact: {c:?}");
        let out = crate::interp::run(&p, &Default::default()).unwrap();
        assert_eq!(out.ops as f64, c.est);
    }

    #[test]
    fn while_uses_loop_factor() {
        let p = parse_program("task T in a out x begin x := a while x > 1 do x := x / 2 end end")
            .unwrap();
        // x := a -> 1; while stmt 1; (LF+1) cond evals (1 each) + LF * (body 2 + 1)
        let c = static_cost(&p);
        assert_eq!(c.est, 1.0 + 1.0 + (LOOP_FACTOR + 1.0) + LOOP_FACTOR * 3.0);
        assert!(!c.exact);
    }

    #[test]
    fn while_with_concrete_inputs_is_data_dependent() {
        // With no free inputs the Newton loop runs concretely in the
        // abstract domain and the count is exact.
        let p = parse_program(
            "task T out x local g begin \
             g := 32 while g > 1 do g := g / 2 end x := g end",
        )
        .unwrap();
        let c = static_cost(&p);
        assert!(c.exact, "concrete while must be exact: {c:?}");
        let out = crate::interp::run(&p, &Default::default()).unwrap();
        assert_eq!(out.ops as f64, c.est);
    }

    #[test]
    fn if_averages_branches() {
        let p = parse_program("task T in a out x begin if a > 0 then x := 1 else x := 2 end end")
            .unwrap();
        // stmt 1 + cond 1 + join(1, 1) = 3 — and since both arms cost the
        // same, the bounds collapse and the estimate is exact.
        let c = static_cost(&p);
        assert_eq!(c.est, 3.0);
        assert!(c.exact);
    }

    #[test]
    fn bigger_programs_cost_more() {
        let small = parse_program("task T in a out x begin x := a end").unwrap();
        let large = parse_program(
            "task T in a out x local i begin x := a for i := 1 to 1000 do x := sqrt(x + i) end end",
        )
        .unwrap();
        assert!(estimate_program(&large) > 100.0 * estimate_program(&small));
    }

    #[test]
    fn bounds_bracket_the_estimate() {
        let p = parse_program(
            "task T in n out s local i begin s := 0 for i := 1 to n do s := s + i end end",
        )
        .unwrap();
        let c = static_cost(&p);
        assert!(c.ops_lo <= c.est && c.est <= c.ops_hi);
    }
}
