//! Data-parallel program transformation — the paper's future-work claim
//! ("Banger can be extended to encompass fine-grained parallelism through
//! the use of machine-independent data-parallel constructs"), realised as
//! an automatic *reduction splitter*.
//!
//! [`parallelize_reduction`] recognises the canonical scientific reduction
//! shape:
//!
//! ```text
//! task T
//!   in <ins...>
//!   out r
//!   local i, ...
//! begin
//!   <prelude statements>            # may not assign r or use i
//!   r := <init>
//!   for i := <lo> to <hi> do
//!     <body statements>             # may not assign r
//!     r := r + <contribution>
//!   end
//!   <postlude statements>           # may read r (e.g. r := r * h)
//! end
//! ```
//!
//! and splits it into `k` *chunk* programs, each reducing a contiguous
//! sub-range into a partial, plus a *combine* program that sums the
//! partials, applies the postlude, and emits the original output — exactly
//! the structure a non-programmer would have to build by hand (compare the
//! `pi_quadrature` example).

use crate::ast::{BinOp, Expr, Program, Stmt};
use crate::error::Pos;
use std::collections::BTreeMap;
use std::fmt;

/// Why a program could not be parallelized.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// `k` must be at least 2.
    BadChunkCount(usize),
    /// The program must have exactly one output variable.
    NotSingleOutput,
    /// No `r := init; for ... do ... r := r + e end` shape was found.
    NoReductionLoop,
    /// A prelude/body/postlude statement breaks the required independence
    /// (e.g. assigns the accumulator outside the reduction).
    UnsafeStatement(String),
    /// The loop bounds use the loop variable itself.
    LoopBoundsUseLoopVar,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::BadChunkCount(k) => write!(f, "need at least 2 chunks, got {k}"),
            TransformError::NotSingleOutput => {
                write!(f, "reduction splitting needs exactly one output variable")
            }
            TransformError::NoReductionLoop => write!(
                f,
                "no `r := init; for i := a to b do r := r + e end` reduction found"
            ),
            TransformError::UnsafeStatement(s) => {
                write!(f, "statement prevents parallelization: {s}")
            }
            TransformError::LoopBoundsUseLoopVar => {
                write!(f, "loop bounds must not use the loop variable")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// The result of splitting a reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionSplit {
    /// One program per chunk; chunk `c` outputs `part{c}`.
    pub chunks: Vec<Program>,
    /// The combiner: inputs `part0..partK-1`, output = original output.
    pub combine: Program,
    /// The partial-variable names, in chunk order.
    pub partials: Vec<String>,
}

fn pos0() -> Pos {
    Pos { line: 1, col: 1 }
}

/// True when `expr` mentions variable `v`.
fn uses_var(expr: &Expr, v: &str) -> bool {
    match expr {
        Expr::Num(_) => false,
        Expr::Var(n) => n == v,
        Expr::Index(n, i) => n == v || uses_var(i, v),
        Expr::Call(_, args) => args.iter().any(|a| uses_var(a, v)),
        Expr::Bin(_, l, r) => uses_var(l, v) || uses_var(r, v),
        Expr::Un(_, inner) => uses_var(inner, v),
    }
}

/// True when any statement in `stmts` assigns variable `v`.
pub fn assigns_var(stmts: &[Stmt], v: &str) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign { var, .. } | Stmt::AssignIndex { var, .. } => var == v,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => assigns_var(then_body, v) || assigns_var(else_body, v),
        Stmt::While { body, .. } => assigns_var(body, v),
        Stmt::For { var, body, .. } => var == v || assigns_var(body, v),
        Stmt::Print { .. } => false,
    })
}

/// True when any statement mentions `v` in an expression.
pub fn stmts_use_var(stmts: &[Stmt], v: &str) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign { expr, .. } => uses_var(expr, v),
        Stmt::AssignIndex { index, expr, .. } => uses_var(index, v) || uses_var(expr, v),
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => uses_var(cond, v) || stmts_use_var(then_body, v) || stmts_use_var(else_body, v),
        Stmt::While { cond, body, .. } => uses_var(cond, v) || stmts_use_var(body, v),
        Stmt::For { from, to, body, .. } => {
            uses_var(from, v) || uses_var(to, v) || stmts_use_var(body, v)
        }
        Stmt::Print { expr: e, .. } => uses_var(e, v),
    })
}

/// Splits a single-output reduction program into `k` chunks plus a
/// combiner. See module docs for the recognised shape.
///
/// ```
/// use banger_calc::{parser, transform};
/// let prog = parser::parse_program(
///     "task Sum in n out s local i begin \
///        s := 0 for i := 1 to n do s := s + i end \
///      end",
/// ).unwrap();
/// let split = transform::parallelize_reduction(&prog, 4).unwrap();
/// assert_eq!(split.chunks.len(), 4);
/// assert_eq!(split.combine.outputs, vec!["s"]);
/// ```
pub fn parallelize_reduction(prog: &Program, k: usize) -> Result<ReductionSplit, TransformError> {
    if k < 2 {
        return Err(TransformError::BadChunkCount(k));
    }
    if prog.outputs.len() != 1 {
        return Err(TransformError::NotSingleOutput);
    }
    let r = prog.outputs[0].clone();

    // Locate `r := init` immediately followed by the reduction For.
    let mut init_idx = None;
    for (i, s) in prog.body.iter().enumerate() {
        if let (Stmt::Assign { var, .. }, Some(Stmt::For { var: lv, body, .. })) =
            (s, prog.body.get(i + 1))
        {
            if var == &r {
                // The For must end with `r := r + e` and not otherwise
                // assign r.
                if let Some(Stmt::Assign { var: bv, expr, .. }) = body.last() {
                    if bv == &r {
                        if let Expr::Bin(BinOp::Add, lhs, _) = expr {
                            if matches!(&**lhs, Expr::Var(n) if n == &r)
                                && !assigns_var(&body[..body.len() - 1], &r)
                                && lv != &r
                            {
                                init_idx = Some(i);
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
    let init_idx = init_idx.ok_or(TransformError::NoReductionLoop)?;

    let (init_expr, loop_var, lo, hi, loop_body) =
        match (&prog.body[init_idx], &prog.body[init_idx + 1]) {
            (
                Stmt::Assign { expr: init, .. },
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                    ..
                },
            ) => (
                init.clone(),
                var.clone(),
                from.clone(),
                to.clone(),
                body.clone(),
            ),
            _ => unreachable!("checked above"),
        };

    if uses_var(&lo, &loop_var) || uses_var(&hi, &loop_var) {
        return Err(TransformError::LoopBoundsUseLoopVar);
    }

    let prelude: Vec<Stmt> = prog.body[..init_idx].to_vec();
    let postlude: Vec<Stmt> = prog.body[init_idx + 2..].to_vec();

    // Prelude must not touch the accumulator or the loop variable.
    if assigns_var(&prelude, &r) || stmts_use_var(&prelude, &r) {
        return Err(TransformError::UnsafeStatement(
            "prelude reads or writes the accumulator".into(),
        ));
    }
    // Postlude may read/write r but must not re-loop over the range
    // variable (it runs once, in the combiner).
    if stmts_use_var(&postlude, &loop_var) {
        return Err(TransformError::UnsafeStatement(
            "postlude uses the loop variable".into(),
        ));
    }

    // Range splitting: chunk c covers
    //   a_c = lo + floor(len * c / k),  b_c = lo + floor(len * (c+1) / k) - 1
    // where len = hi - lo + 1. Generated as PITS expressions so dynamic
    // bounds work.
    let num = |v: f64| Expr::Num(v);
    let bin = |op, l: Expr, rr: Expr| Expr::Bin(op, Box::new(l), Box::new(rr));
    let len_expr = bin(
        BinOp::Add,
        bin(BinOp::Sub, hi.clone(), lo.clone()),
        num(1.0),
    );
    let bound = |c: usize| {
        // lo + floor(len * c / k)
        bin(
            BinOp::Add,
            lo.clone(),
            Expr::Call(
                "floor".into(),
                vec![bin(
                    BinOp::Div,
                    bin(BinOp::Mul, len_expr.clone(), num(c as f64)),
                    num(k as f64),
                )],
            ),
        )
    };

    let mut chunks = Vec::with_capacity(k);
    let mut partials = Vec::with_capacity(k);
    for c in 0..k {
        let part = format!("part{c}");
        let mut body = prelude.clone();
        body.push(Stmt::Assign {
            var: part.clone(),
            expr: num(0.0),
            pos: pos0(),
        });
        // Rewrite the loop body's final accumulation onto the partial.
        let mut loop_stmts = loop_body.clone();
        if let Some(Stmt::Assign { var, expr, .. }) = loop_stmts.last_mut() {
            *var = part.clone();
            if let Expr::Bin(BinOp::Add, lhs, _) = expr {
                **lhs = Expr::Var(part.clone());
            }
        }
        body.push(Stmt::For {
            var: loop_var.clone(),
            from: bound(c),
            to: bin(BinOp::Sub, bound(c + 1), num(1.0)),
            body: loop_stmts,
            pos: pos0(),
        });
        let mut locals: Vec<String> = prog.locals.clone();
        if !locals.contains(&loop_var) {
            locals.push(loop_var.clone());
        }
        chunks.push(Program {
            name: format!("{}Chunk{c}", prog.name),
            inputs: prog.inputs.clone(),
            outputs: vec![part.clone()],
            locals,
            body,
            decl_pos: Default::default(),
        });
        partials.push(part);
    }

    // Combiner: r := init + part0 + ... + partK-1, then the postlude.
    // The init expression may reference inputs, so the combiner keeps the
    // original input list too (harmless extra arcs are avoided by the
    // design expansion only wiring what it needs).
    let mut sum = init_expr;
    for part in &partials {
        sum = bin(BinOp::Add, sum, Expr::Var(part.clone()));
    }
    let mut combine_body = prelude;
    combine_body.push(Stmt::Assign {
        var: r.clone(),
        expr: sum,
        pos: pos0(),
    });
    combine_body.extend(postlude);
    let mut combine_inputs = partials.clone();
    // Keep original inputs only when the combiner body actually uses them.
    for v in &prog.inputs {
        if stmts_use_var(&combine_body, v) {
            combine_inputs.push(v.clone());
        }
    }
    let combine = Program {
        name: format!("{}Combine", prog.name),
        inputs: combine_inputs,
        outputs: vec![r],
        locals: prog.locals.clone(),
        body: combine_body,
        decl_pos: Default::default(),
    };

    Ok(ReductionSplit {
        chunks,
        combine,
        partials,
    })
}

fn rename(name: &str, map: &BTreeMap<String, String>) -> String {
    map.get(name).cloned().unwrap_or_else(|| name.to_string())
}

fn rename_expr(expr: &Expr, map: &BTreeMap<String, String>) -> Expr {
    match expr {
        Expr::Num(v) => Expr::Num(*v),
        Expr::Var(n) => Expr::Var(rename(n, map)),
        Expr::Index(n, i) => Expr::Index(rename(n, map), Box::new(rename_expr(i, map))),
        // Call names live in the builtin namespace, not the variable one.
        Expr::Call(f, args) => Expr::Call(
            f.clone(),
            args.iter().map(|a| rename_expr(a, map)).collect(),
        ),
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(rename_expr(l, map)),
            Box::new(rename_expr(r, map)),
        ),
        Expr::Un(op, inner) => Expr::Un(*op, Box::new(rename_expr(inner, map))),
    }
}

/// Renames variables in a statement list according to `map`; names not in
/// the map pass through unchanged.
pub fn rename_stmts(stmts: &[Stmt], map: &BTreeMap<String, String>) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign { var, expr, pos } => Stmt::Assign {
                var: rename(var, map),
                expr: rename_expr(expr, map),
                pos: *pos,
            },
            Stmt::AssignIndex {
                var,
                index,
                expr,
                pos,
            } => Stmt::AssignIndex {
                var: rename(var, map),
                index: rename_expr(index, map),
                expr: rename_expr(expr, map),
                pos: *pos,
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
                pos,
            } => Stmt::If {
                cond: rename_expr(cond, map),
                then_body: rename_stmts(then_body, map),
                else_body: rename_stmts(else_body, map),
                pos: *pos,
            },
            Stmt::While { cond, body, pos } => Stmt::While {
                cond: rename_expr(cond, map),
                body: rename_stmts(body, map),
                pos: *pos,
            },
            Stmt::For {
                var,
                from,
                to,
                body,
                pos,
            } => Stmt::For {
                var: rename(var, map),
                from: rename_expr(from, map),
                to: rename_expr(to, map),
                body: rename_stmts(body, map),
                pos: *pos,
            },
            Stmt::Print { expr, pos } => Stmt::Print {
                expr: rename_expr(expr, map),
                pos: *pos,
            },
        })
        .collect()
}

/// Applies a variable renaming to an entire program — declarations and
/// body. Names absent from `map` are unchanged. The renaming is pure
/// (statement-for-statement), so the renamed program performs exactly the
/// same operation count on the same inputs (modulo the new names).
pub fn rename_vars(prog: &Program, map: &BTreeMap<String, String>) -> Program {
    Program {
        name: prog.name.clone(),
        inputs: prog.inputs.iter().map(|v| rename(v, map)).collect(),
        outputs: prog.outputs.iter().map(|v| rename(v, map)).collect(),
        locals: prog.locals.iter().map(|v| rename(v, map)).collect(),
        body: rename_stmts(&prog.body, map),
        decl_pos: prog
            .decl_pos
            .iter()
            .map(|(v, p)| (rename(v, map), *p))
            .collect(),
    }
}

/// Concatenates pre-renamed program bodies into one program with the given
/// interface. The caller is responsible for having renamed the parts so
/// that dataflow is by shared names (a producer's output variable and its
/// consumer's input variable unified to one name) and that no unintended
/// capture occurs — see `banger-opt`'s fusion pass for the planning side.
///
/// Ops preservation: the interpreter charges per executed statement (plus
/// expression costs) and nothing for input binding or output collection,
/// so the spliced program's operation count on equal values is exactly the
/// sum of the parts' counts.
pub fn splice_programs(
    name: impl Into<String>,
    parts: &[&Program],
    inputs: Vec<String>,
    outputs: Vec<String>,
) -> Program {
    let mut body = Vec::new();
    let mut declared: Vec<String> = Vec::new();
    for p in parts {
        body.extend_from_slice(&p.body);
        for v in p.inputs.iter().chain(&p.outputs).chain(&p.locals) {
            if !declared.contains(v) {
                declared.push(v.clone());
            }
        }
    }
    let locals: Vec<String> = declared
        .into_iter()
        .filter(|v| !inputs.contains(v) && !outputs.contains(v))
        .collect();
    Program {
        name: name.into(),
        inputs,
        outputs,
        locals,
        body,
        decl_pos: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run;
    use crate::parser::parse_program;
    use crate::value::Value;
    use std::collections::BTreeMap;

    const PI_SRC: &str = "\
task Pi
  in n
  out p
  local i, x, h
begin
  h := 1 / n
  p := 0
  for i := 1 to n do
    x := (i - 0.5) * h
    p := p + 4 / (1 + x * x)
  end
  p := p * h
end";

    fn inputs(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Runs the split pipeline by hand: all chunks, then the combiner.
    fn run_split(split: &ReductionSplit, ins: &BTreeMap<String, Value>) -> Value {
        let mut combine_in = BTreeMap::new();
        for chunk in &split.chunks {
            let out = run(chunk, ins).unwrap();
            for (k, v) in out.outputs {
                combine_in.insert(k, v);
            }
        }
        for (k, v) in ins {
            combine_in.insert(k.clone(), v.clone());
        }
        let out = run(&split.combine, &combine_in).unwrap();
        out.outputs.values().next().unwrap().clone()
    }

    #[test]
    fn pi_quadrature_splits_correctly() {
        let prog = parse_program(PI_SRC).unwrap();
        for k in [2, 3, 4, 8] {
            let split = parallelize_reduction(&prog, k).unwrap();
            assert_eq!(split.chunks.len(), k);
            let ins = inputs(&[("n", Value::Num(1000.0))]);
            let serial = run(&prog, &ins).unwrap().outputs["p"].clone();
            let parallel = run_split(&split, &ins);
            let (s, p) = (serial.as_num("p").unwrap(), parallel.as_num("p").unwrap());
            assert!((s - p).abs() < 1e-9, "k={k}: {s} vs {p}");
            assert!((p - std::f64::consts::PI).abs() < 1e-4, "k={k}");
        }
    }

    #[test]
    fn chunks_cover_the_range_exactly_once() {
        // Sum of i over 1..=n must be n(n+1)/2 for awkward n/k splits.
        let prog = parse_program(
            "task S in n out s local i begin s := 0 for i := 1 to n do s := s + i end end",
        )
        .unwrap();
        for (n, k) in [(7usize, 3usize), (10, 4), (5, 5), (100, 7), (3, 2)] {
            let split = parallelize_reduction(&prog, k).unwrap();
            let ins = inputs(&[("n", Value::Num(n as f64))]);
            let got = run_split(&split, &ins).as_num("s").unwrap();
            let want = (n * (n + 1) / 2) as f64;
            assert_eq!(got, want, "n={n} k={k}");
        }
    }

    #[test]
    fn nonzero_init_preserved() {
        let prog = parse_program(
            "task S in n out s local i begin s := 100 for i := 1 to n do s := s + i end end",
        )
        .unwrap();
        let split = parallelize_reduction(&prog, 3).unwrap();
        let ins = inputs(&[("n", Value::Num(4.0))]);
        assert_eq!(run_split(&split, &ins).as_num("s").unwrap(), 110.0);
    }

    #[test]
    fn dynamic_bounds_work() {
        let prog = parse_program(
            "task S in a, b out s local i begin s := 0 for i := a to b do s := s + i * i end end",
        )
        .unwrap();
        let split = parallelize_reduction(&prog, 4).unwrap();
        let ins = inputs(&[("a", Value::Num(3.0)), ("b", Value::Num(11.0))]);
        let want: f64 = (3..=11).map(|i| (i * i) as f64).sum();
        assert_eq!(run_split(&split, &ins).as_num("s").unwrap(), want);
    }

    #[test]
    fn rejections() {
        // Two outputs.
        let p2 = parse_program("task T out a, b begin a := 1 b := 2 end").unwrap();
        assert_eq!(
            parallelize_reduction(&p2, 2),
            Err(TransformError::NotSingleOutput)
        );
        // No reduction loop.
        let p3 = parse_program("task T in a out r begin r := a * 2 end").unwrap();
        assert_eq!(
            parallelize_reduction(&p3, 2),
            Err(TransformError::NoReductionLoop)
        );
        // Loop that overwrites instead of accumulating.
        let p4 = parse_program(
            "task T in n out r local i begin r := 0 for i := 1 to n do r := i end end",
        )
        .unwrap();
        assert_eq!(
            parallelize_reduction(&p4, 2),
            Err(TransformError::NoReductionLoop)
        );
        // k too small.
        let p5 = parse_program(
            "task T in n out r local i begin r := 0 for i := 1 to n do r := r + i end end",
        )
        .unwrap();
        assert_eq!(
            parallelize_reduction(&p5, 1),
            Err(TransformError::BadChunkCount(1))
        );
    }

    #[test]
    fn prelude_using_accumulator_rejected() {
        let p = parse_program(
            "task T in n out r local i, q begin q := r r := 0 for i := 1 to n do r := r + i end end",
        )
        .unwrap();
        assert!(matches!(
            parallelize_reduction(&p, 2),
            Err(TransformError::UnsafeStatement(_))
        ));
    }

    #[test]
    fn chunk_programs_are_valid_pits() {
        // Round-trip every generated program through the pretty-printer
        // and parser.
        let prog = parse_program(PI_SRC).unwrap();
        let split = parallelize_reduction(&prog, 4).unwrap();
        for p in split.chunks.iter().chain([&split.combine]) {
            let printed = crate::pretty::print_program(p);
            let reparsed =
                parse_program(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", p.name));
            assert_eq!(&reparsed, p);
        }
    }

    #[test]
    fn rename_vars_is_total_and_pure() {
        let prog = parse_program(
            "task T in a out b local i begin \
               b := 0 for i := 1 to a do b := b + i * i end \
               if b > 10 then b := b - a else b := b + a end \
             end",
        )
        .unwrap();
        let map: BTreeMap<String, String> = [("a", "x"), ("b", "y"), ("i", "k")]
            .into_iter()
            .map(|(f, t)| (f.to_string(), t.to_string()))
            .collect();
        let renamed = rename_vars(&prog, &map);
        assert_eq!(renamed.inputs, vec!["x"]);
        assert_eq!(renamed.outputs, vec!["y"]);
        assert_eq!(renamed.locals, vec!["k"]);
        let ins_a = inputs(&[("a", Value::Num(6.0))]);
        let ins_x = inputs(&[("x", Value::Num(6.0))]);
        let orig = run(&prog, &ins_a).unwrap();
        let new = run(&renamed, &ins_x).unwrap();
        assert_eq!(orig.outputs["b"], new.outputs["y"]);
        assert_eq!(orig.ops, new.ops, "renaming must not change the op count");
    }

    #[test]
    fn splice_ops_equal_sum_of_parts() {
        // producer: m := n * 2 (+ a loop); consumer reads m.
        let producer = parse_program(
            "task P in n out m local i begin m := 0 for i := 1 to n do m := m + 2 end end",
        )
        .unwrap();
        let consumer = parse_program("task C in m out r begin r := m + 1 end").unwrap();
        let fused = splice_programs(
            "F",
            &[&producer, &consumer],
            vec!["n".to_string()],
            vec!["r".to_string()],
        );
        assert_eq!(fused.inputs, vec!["n"]);
        assert_eq!(fused.outputs, vec!["r"]);
        assert!(fused.locals.contains(&"m".to_string()));
        assert!(fused.locals.contains(&"i".to_string()));
        let ins = inputs(&[("n", Value::Num(10.0))]);
        let p_out = run(&producer, &ins).unwrap();
        let c_out = run(&consumer, &inputs(&[("m", p_out.outputs["m"].clone())])).unwrap();
        let f_out = run(&fused, &ins).unwrap();
        assert_eq!(f_out.outputs["r"], c_out.outputs["r"]);
        assert_eq!(
            f_out.ops,
            p_out.ops + c_out.ops,
            "splice must preserve total ops exactly"
        );
    }

    #[test]
    fn spliced_program_round_trips_through_printer() {
        let producer = parse_program("task P in n out m begin m := n * 2 end").unwrap();
        let consumer = parse_program("task C in m out r begin r := m + 1 end").unwrap();
        let fused = splice_programs(
            "F",
            &[&producer, &consumer],
            vec!["n".to_string()],
            vec!["r".to_string()],
        );
        let printed = crate::pretty::print_program(&fused);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(reparsed, fused);
    }
}
