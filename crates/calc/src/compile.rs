//! Bytecode compiler: lowers a PITS [`Program`] AST to the flat register
//! form executed by [`crate::vm`].
//!
//! The tree-walking interpreter ([`crate::interp`]) re-traverses the AST
//! and performs a `String`-keyed map lookup per variable reference — per
//! statement, per loop iteration, per task copy. This pass does all name
//! resolution **once**: every variable (inputs, outputs, locals, the
//! preloaded constants `pi`/`e`, and even undeclared names, which must
//! still fail with the same `Undefined` error at the same moment) becomes
//! a dense frame slot; every builtin call is pre-resolved to a direct
//! function index; every literal is frozen into its op. What remains at
//! run time is a `Vec<Op>` walked by a program counter over a reusable
//! `Vec<Value>` frame — no maps, no strings, no per-step allocation.
//!
//! ## The ops-as-weight invariant
//!
//! `Outcome::ops` is not just profiling: it is the *measured task weight*
//! the scheduler consumes. The compiler therefore performs **no**
//! transformation that would change the op count or its sequencing — no
//! arithmetic constant folding, no dead-branch elimination. Each emitted
//! op ticks exactly where and how much the tree-walker ticks, so
//! `StepLimit` fires at the identical budget and measured weights are
//! byte-for-byte equal whichever engine ran the task
//! (`tests/prop_vm.rs` proves this differentially).
//!
//! Semantic corner cases preserved bit-for-bit:
//!
//! * unknown functions and wrong arities are compiled to [`Op::Fail`]
//!   *at the call site*, so a call in a never-taken branch stays
//!   harmless, exactly like the late-failing tree-walker;
//! * the constants `pi`/`e` are ordinary pre-initialised slots, so a
//!   program that assigns over them sees its own value afterwards;
//! * sub-expression results always land in fresh scratch registers — a
//!   destination variable is written exactly once, at expression
//!   completion, so `x := a and x` reads the *old* `x`.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::builtins;
use crate::error::RunError;
use std::collections::BTreeMap;

/// A frame-slot / register index.
pub type Reg = u32;

/// Static `what`-context strings, matching the tree-walker's diagnostics.
pub(crate) mod ctx {
    pub const IF_COND: &str = "if condition";
    pub const WHILE_COND: &str = "while condition";
    pub const AND_OPERAND: &str = "and operand";
    pub const OR_OPERAND: &str = "or operand";
    pub const NOT_OPERAND: &str = "not operand";
    pub const NEG_OPERAND: &str = "negation operand";
    pub const LEFT_OPERAND: &str = "left operand";
    pub const RIGHT_OPERAND: &str = "right operand";
    pub const ARRAY_INDEX: &str = "array index";
    pub const ARRAY_ELEMENT: &str = "array element";
    pub const FOR_START: &str = "for start";
    pub const FOR_END: &str = "for end";
}

/// One bytecode instruction. Registers index the VM frame; the low
/// `n_vars` registers are named variables, then the literal pool, then
/// scratch. (`dst`/`src`/`lhs`/`rhs` fields are registers; `target`
/// fields are op indices.)
///
/// Every op that *reads* a register first checks its initialisation bit
/// and fails with `Undefined` like the tree-walker's variable read. For
/// scratch and literal-pool registers the check never fires (scratch is
/// written before it is read by construction; the pool is preloaded), so
/// the compiler may pass a named variable's slot *directly* as an
/// operand — fusing what would otherwise be a `LoadVar` into the
/// consuming op — without changing observable behaviour.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Op {
    /// `ops += n`, erroring with `StepLimit` past the budget (statement
    /// and loop-iteration ticks).
    Tick(u64),
    /// `r[dst] = Num(val)` — a frozen literal.
    Const { dst: Reg, val: f64 },
    /// `r[dst] = r[src].clone()` with **no** initialisation check — used
    /// only where the source is a VM-owned scratch value (loop counters).
    Copy { dst: Reg, src: Reg },
    /// `r[dst] = r[slot].clone()`, `Undefined` if the variable slot was
    /// never assigned.
    LoadVar { dst: Reg, slot: Reg },
    /// `r[dst] = Num(r[slot][r[idx]])` — array element read; checks the
    /// index (initialisation + scalar), then the array, and ticks 1
    /// *after* the bounds-checked read, like the tree-walker.
    IndexGet { dst: Reg, slot: Reg, idx: Reg },
    /// `r[slot][r[idx]] = r[val]` — in-place array element write; checks
    /// the index, then the element value, then the array — the
    /// tree-walker's `AssignIndex` order.
    IndexSet { slot: Reg, idx: Reg, val: Reg },
    /// Scalar binary operation: checks left then right operand
    /// (initialisation + scalar), ticks 1, computes.
    BinNum {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    /// Unary negation: checks initialisation, ticks 1, then type-checks.
    Neg { dst: Reg, src: Reg },
    /// Logical not: checks initialisation, ticks 1, then type-checks.
    Not { dst: Reg, src: Reg },
    /// Pre-resolved builtin call over `argc` consecutive registers
    /// starting at `first`; ticks the builtin's cost, then applies.
    Call {
        /// Index into [`builtins::BUILTINS`].
        builtin: u16,
        dst: Reg,
        first: Reg,
        argc: u16,
    },
    /// Unconditional jump to an op index.
    Jump(u32),
    /// Truthiness-checked conditional jump (if / while guards).
    JumpIfFalse {
        cond: Reg,
        target: u32,
        what: &'static str,
    },
    /// `and`/`or` left-hand side: truthiness-check `src` (with the
    /// operand's context string), tick 1, and on short-circuit write the
    /// decided `0`/`1` into `dst` and jump to `target`.
    ShortCircuit {
        src: Reg,
        dst: Reg,
        target: u32,
        is_and: bool,
    },
    /// `and`/`or` right-hand side: truthiness-check `src` and write the
    /// resulting `0`/`1` into `dst` (no tick — the tree-walker ticks only
    /// once per logic operator, on the left-hand side).
    BoolCast { src: Reg, dst: Reg, is_and: bool },
    /// Assert `r[src]` is initialised (`Undefined`) and a scalar
    /// (`NotAScalar(what)`) — placed where the tree-walker reads and
    /// `as_num`s one sub-expression *before* evaluating the next.
    CheckNum { src: Reg, what: &'static str },
    /// Like [`Op::CheckNum`] but also rounds in place (for-loop bounds).
    CheckNumRound { src: Reg, what: &'static str },
    /// `if r[i] > r[end] { jump target }` — for-loop test over the
    /// VM-owned (already rounded) counter and bound.
    ForTest { i: Reg, end: Reg, target: u32 },
    /// `r[i] += 1` — for-loop increment.
    ForInc { i: Reg },
    /// Push `r[src]`'s display form onto the print log.
    Print { src: Reg },
    /// Raise a compile-time-frozen runtime error (unknown function, bad
    /// arity) — executed only if control actually reaches the call site.
    Fail(u32),
    /// Two or three chained scalar binary operations in one dispatch
    /// (`chain.len >= 2`): the compiler's emission for nested scalar
    /// expressions like the affine index `(i - 1) * n + j`. Produced
    /// only by the peephole fuser ([`fuse`]) where each intermediate was
    /// a single-use scratch register; the chain replays the original
    /// [`Op::BinNum`]s' checks and ticks in their exact order, so
    /// errors, `StepLimit` budgets, and measured weights are unchanged —
    /// only the dispatch count drops.
    BinChain { chain: ChainSpec, dst: Reg },
    /// A 1–3-op scalar chain feeding an [`Op::IndexGet`]'s index:
    /// `r[dst] = Num(r[slot][chain])`.
    IdxGetChain {
        chain: ChainSpec,
        slot: Reg,
        dst: Reg,
    },
    /// A 1–3-op scalar chain feeding an [`Op::IndexSet`]'s *value*:
    /// `r[slot][r[idx]] = chain`.
    IdxSetChain {
        chain: ChainSpec,
        slot: Reg,
        idx: Reg,
    },
    /// Fused for-loop back edge: the per-iteration tick, `r[i] += 1`,
    /// and the jump to the loop head in one dispatch.
    ForNext { i: Reg, head: u32 },
    /// Fused loop-head pair: [`Op::ForTest`] plus the [`Op::Copy`] that
    /// publishes the VM-owned counter into the named loop variable.
    ForTestCopy {
        i: Reg,
        end: Reg,
        var: Reg,
        target: u32,
    },
}

/// A left-to-right chain of 1–3 scalar binary operations whose
/// intermediates were single-use scratch registers before fusion:
/// `t1 = r[a] op1 r[b]`, then (if `len >= 2`) `t2 = t1 op2 r[c]` — or
/// `r[c] op2 t1` when `swap2` — then (if `len == 3`) the same with
/// `op3`/`d`/`swap3`. Stages past `len` hold don't-care filler. The VM
/// evaluates a chain with exactly the checks and ticks of the original
/// `BinNum` sequence; a chained intermediate itself needs no checks (it
/// is a number the VM just produced), matching how the original read of
/// an always-initialised scratch slot could not fail.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub struct ChainSpec {
    pub len: u8,
    pub op1: BinOp,
    pub a: Reg,
    pub b: Reg,
    pub op2: BinOp,
    pub c: Reg,
    pub swap2: bool,
    pub op3: BinOp,
    pub d: Reg,
    pub swap3: bool,
}

/// A compiled PITS program: flat ops plus the frame layout metadata the
/// VM needs to wire inputs, outputs and diagnostics.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Task name (diagnostics).
    pub name: String,
    /// The instruction stream.
    pub ops: Vec<Op>,
    /// Total frame size: named variables then scratch registers.
    pub frame_size: usize,
    /// Slots `0..n_vars` are named variables.
    pub n_vars: usize,
    /// Slot index -> variable name (errors name the variable).
    pub var_names: Vec<String>,
    /// `(slot, name-index)` of each declared input, in declaration order.
    pub input_slots: Vec<Reg>,
    /// Slot of each declared output, in declaration order.
    pub output_slots: Vec<Reg>,
    /// Pre-initialised constant slots (`pi`, `e`) in insertion order;
    /// inputs may overwrite them afterwards, mirroring the tree-walker's
    /// environment set-up order.
    pub const_slots: Vec<(Reg, f64)>,
    /// The literal pool: deduplicated numeric literals preloaded (and
    /// marked initialised) into the slots between the named variables
    /// and the scratch registers, so ops reference literals without a
    /// `Const` dispatch. The program never writes these slots.
    pub lit_slots: Vec<(Reg, f64)>,
    /// Frozen runtime errors referenced by [`Op::Fail`].
    pub fails: Vec<RunError>,
}

/// Compiles a program. Never fails: names that cannot be resolved become
/// run-time errors at the same execution points as the tree-walker's.
pub fn compile(prog: &Program) -> CompiledProgram {
    let mut c = Compiler::new();
    // Constants first, then declared variables, mirroring the
    // interpreter's environment construction order.
    for (name, v) in builtins::CONSTANTS {
        let slot = c.slot(name);
        c.const_slots.push((slot, v));
    }
    let input_slots: Vec<Reg> = prog.inputs.iter().map(|n| c.slot(n)).collect();
    for n in &prog.outputs {
        c.slot(n);
    }
    for n in &prog.locals {
        c.slot(n);
    }
    c.block(&prog.body);
    c.ops = fuse(drop_dead_checks(std::mem::take(&mut c.ops)));
    let output_slots: Vec<Reg> = prog.outputs.iter().map(|n| c.slot(n)).collect();

    let n_vars = c.names.len();
    // Literal-pool slots live right above the named variables; their
    // final indices are known now that interning is done.
    let lit_slots: Vec<(Reg, f64)> = c
        .lits
        .iter()
        .enumerate()
        .map(|(k, &v)| ((n_vars + k) as Reg, v))
        .collect();
    CompiledProgram {
        name: prog.name.clone(),
        ops: c.ops,
        frame_size: n_vars + lit_slots.len() + c.max_temps,
        n_vars,
        var_names: c.names,
        input_slots,
        output_slots,
        const_slots: c.const_slots,
        lit_slots,
        fails: c.fails,
    }
    .seal()
}

/// An expression whose value already sits in a register (named variable
/// or literal) — no code needed, checks done by the consuming op.
fn is_simple(e: &Expr) -> bool {
    matches!(e, Expr::Num(_) | Expr::Var(_))
}

/// During compilation, literal-pool registers count up from `LIT_BASE`
/// and scratch registers down from `u32::MAX`; [`CompiledProgram::seal`]
/// remaps both into the dense frame once the named-variable count is
/// final. `TEMP_SPLIT` divides the two provisional regions.
const LIT_BASE: Reg = 0x8000_0000;
const TEMP_SPLIT: Reg = 0xC000_0000;

struct Compiler {
    ops: Vec<Op>,
    names: Vec<String>,
    slots: BTreeMap<String, Reg>,
    const_slots: Vec<(Reg, f64)>,
    lits: Vec<f64>,
    lit_map: BTreeMap<u64, Reg>,
    fails: Vec<RunError>,
    /// Scratch registers in use (relative to the variable block).
    live_temps: usize,
    max_temps: usize,
}

impl Compiler {
    fn new() -> Self {
        Compiler {
            ops: Vec::new(),
            names: Vec::new(),
            slots: BTreeMap::new(),
            const_slots: Vec::new(),
            lits: Vec::new(),
            lit_map: BTreeMap::new(),
            fails: Vec::new(),
            live_temps: 0,
            max_temps: 0,
        }
    }

    /// Slot of a named variable, interning on first sight.
    fn slot(&mut self, name: &str) -> Reg {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.names.len() as Reg;
        self.names.push(name.to_string());
        self.slots.insert(name.to_string(), s);
        s
    }

    /// Allocates a scratch register above every named variable and every
    /// currently-live temp. Final slot indices are fixed up knowing
    /// `n_vars` only at the end — during compilation temps are numbered
    /// from `TEMP_BASE` and rewritten by [`finish_reg`]. To keep this
    /// simple we instead reserve temps *after* interning: names are all
    /// known before `block` runs (declarations interned in `compile`),
    /// but undeclared names can still appear mid-body. So temps count
    /// from the end: register `u32::MAX - k` is temp `k`, remapped when
    /// the op stream is sealed.
    fn temp(&mut self) -> Reg {
        let t = self.live_temps;
        self.live_temps += 1;
        self.max_temps = self.max_temps.max(self.live_temps);
        u32::MAX - t as Reg
    }

    fn release_to(&mut self, mark: usize) {
        self.live_temps = mark;
    }

    /// Literal-pool register for `v`, deduplicated by bit pattern.
    fn lit(&mut self, v: f64) -> Reg {
        let bits = v.to_bits();
        if let Some(&r) = self.lit_map.get(&bits) {
            return r;
        }
        let r = LIT_BASE + self.lits.len() as Reg;
        self.lits.push(v);
        self.lit_map.insert(bits, r);
        r
    }

    /// A register that already holds the expression's value without any
    /// code being emitted: a named variable's slot or a literal-pool
    /// slot. The consuming op performs the tree-walker's read checks
    /// (initialisation, type) itself, in evaluation order, so passing
    /// the slot directly is observationally identical to a `LoadVar`
    /// into scratch — minus one dispatch. `None` means the expression
    /// needs code; compile it into a scratch register instead.
    fn operand(&mut self, e: &Expr) -> Option<Reg> {
        match e {
            Expr::Num(v) => Some(self.lit(*v)),
            Expr::Var(name) => Some(self.slot(name)),
            _ => None,
        }
    }

    /// `operand` or compile-into-fresh-scratch, whichever applies.
    fn operand_or_temp(&mut self, e: &Expr) -> Reg {
        match self.operand(e) {
            Some(r) => r,
            None => {
                let t = self.temp();
                self.expr(e, t);
                t
            }
        }
    }

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump(t)
            | Op::JumpIfFalse { target: t, .. }
            | Op::ShortCircuit { target: t, .. }
            | Op::ForTest { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn fail(&mut self, e: RunError) {
        let i = self.fails.len() as u32;
        self.fails.push(e);
        self.emit(Op::Fail(i));
    }

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        self.emit(Op::Tick(1));
        match stmt {
            Stmt::Assign { var, expr, .. } => {
                let dst = self.slot(var);
                let mark = self.live_temps;
                self.expr(expr, dst);
                self.release_to(mark);
            }
            Stmt::AssignIndex {
                var, index, expr, ..
            } => {
                let slot = self.slot(var);
                let mark = self.live_temps;
                let ti = self.operand_or_temp(index);
                // The tree-walker `as_num`s the index before evaluating
                // the element value; when the value emits code, an
                // explicit check keeps that order. (`IndexSet` itself
                // re-checks index then value, which covers the rest.)
                if !is_simple(expr) {
                    self.emit(Op::CheckNum {
                        src: ti,
                        what: ctx::ARRAY_INDEX,
                    });
                }
                let tv = self.operand_or_temp(expr);
                self.emit(Op::IndexSet {
                    slot,
                    idx: ti,
                    val: tv,
                });
                self.release_to(mark);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let mark = self.live_temps;
                let tc = self.operand_or_temp(cond);
                self.release_to(mark);
                let br = self.emit(Op::JumpIfFalse {
                    cond: tc,
                    target: 0,
                    what: ctx::IF_COND,
                });
                self.block(then_body);
                let out = self.emit(Op::Jump(0));
                let else_at = self.here();
                self.patch(br, else_at);
                self.block(else_body);
                let end = self.here();
                self.patch(out, end);
            }
            Stmt::While { cond, body, .. } => {
                let head = self.here();
                let mark = self.live_temps;
                let tc = self.operand_or_temp(cond);
                self.release_to(mark);
                let exit = self.emit(Op::JumpIfFalse {
                    cond: tc,
                    target: 0,
                    what: ctx::WHILE_COND,
                });
                self.block(body);
                self.emit(Op::Tick(1));
                self.emit(Op::Jump(head));
                let end = self.here();
                self.patch(exit, end);
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let var_slot = self.slot(var);
                let mark = self.live_temps;
                // Counter and bound stay live across the body.
                let ti = self.temp();
                self.expr(from, ti);
                self.emit(Op::CheckNumRound {
                    src: ti,
                    what: ctx::FOR_START,
                });
                let tend = self.temp();
                self.expr(to, tend);
                self.emit(Op::CheckNumRound {
                    src: tend,
                    what: ctx::FOR_END,
                });
                let head = self.here();
                let test = self.emit(Op::ForTest {
                    i: ti,
                    end: tend,
                    target: 0,
                });
                self.emit(Op::Copy {
                    dst: var_slot,
                    src: ti,
                });
                self.block(body);
                self.emit(Op::Tick(1));
                self.emit(Op::ForInc { i: ti });
                self.emit(Op::Jump(head));
                let end = self.here();
                self.patch(test, end);
                self.release_to(mark);
            }
            Stmt::Print { expr: e, .. } => {
                let mark = self.live_temps;
                let t = self.operand_or_temp(e);
                self.emit(Op::Print { src: t });
                self.release_to(mark);
            }
        }
    }

    /// Compiles `expr` so that its value lands in `dst` as the single,
    /// final write; all intermediates go to fresh scratch registers.
    fn expr(&mut self, expr: &Expr, dst: Reg) {
        match expr {
            Expr::Num(v) => {
                self.emit(Op::Const { dst, val: *v });
            }
            Expr::Var(name) => {
                let slot = self.slot(name);
                self.emit(Op::LoadVar { dst, slot });
            }
            Expr::Index(name, idx) => {
                let slot = self.slot(name);
                let mark = self.live_temps;
                let ti = self.operand_or_temp(idx);
                self.emit(Op::IndexGet { dst, slot, idx: ti });
                self.release_to(mark);
            }
            Expr::Call(name, args) => {
                match builtins::index_of(name) {
                    None => {
                        // The tree-walker fails before evaluating any
                        // argument; so do we.
                        self.fail(RunError::UnknownFunction(name.clone()));
                    }
                    Some(i) if builtins::BUILTINS[i].arity != args.len() => {
                        self.fail(RunError::BadArity {
                            name: name.clone(),
                            expected: builtins::BUILTINS[i].arity,
                            got: args.len(),
                        });
                    }
                    Some(i) => {
                        let mark = self.live_temps;
                        // Argument registers must be consecutive:
                        // reserve them first, then fill each (nested
                        // scratch goes above the reservation).
                        let regs: Vec<Reg> = args.iter().map(|_| self.temp()).collect();
                        for (a, &r) in args.iter().zip(&regs) {
                            let m = self.live_temps;
                            self.expr(a, r);
                            self.release_to(m);
                        }
                        self.emit(Op::Call {
                            builtin: i as u16,
                            dst,
                            first: *regs.first().unwrap_or(&(u32::MAX - mark as Reg)),
                            argc: args.len() as u16,
                        });
                        self.release_to(mark);
                    }
                }
            }
            Expr::Bin(op @ (BinOp::And | BinOp::Or), lhs, rhs) => {
                let is_and = matches!(op, BinOp::And);
                let mark = self.live_temps;
                let tl = self.operand_or_temp(lhs);
                let sc = self.emit(Op::ShortCircuit {
                    src: tl,
                    dst,
                    target: 0,
                    is_and,
                });
                self.release_to(mark);
                let tr = self.operand_or_temp(rhs);
                self.emit(Op::BoolCast {
                    src: tr,
                    dst,
                    is_and,
                });
                self.release_to(mark);
                let end = self.here();
                self.patch(sc, end);
            }
            Expr::Bin(op, lhs, rhs) => {
                let mark = self.live_temps;
                let tl = self.operand_or_temp(lhs);
                // The tree-walker converts the left operand to a number
                // *before* evaluating the right one, so a non-scalar left
                // must win over any error hiding in the right. When the
                // right side emits no code, `BinNum`'s own left-then-
                // right check sequence already preserves that order.
                if !is_simple(rhs) {
                    self.emit(Op::CheckNum {
                        src: tl,
                        what: ctx::LEFT_OPERAND,
                    });
                }
                let tr = self.operand_or_temp(rhs);
                self.emit(Op::BinNum {
                    op: *op,
                    dst,
                    lhs: tl,
                    rhs: tr,
                });
                self.release_to(mark);
            }
            Expr::Un(op, inner) => {
                let mark = self.live_temps;
                let t = self.operand_or_temp(inner);
                match op {
                    UnOp::Neg => self.emit(Op::Neg { dst, src: t }),
                    UnOp::Not => self.emit(Op::Not { dst, src: t }),
                };
                self.release_to(mark);
            }
        }
    }
}

/// The link between two adjacent `BinNum`s: the first's destination
/// feeds exactly one operand of the second. Returns the second op's
/// *other* operand and whether the chained value sits on the right
/// (`swap = true` means the chained intermediate is the RIGHT operand:
/// `other op chained`).
fn chain_link(t: Reg, lhs: Reg, rhs: Reg) -> Option<(Reg, bool)> {
    match (lhs == t, rhs == t) {
        (true, false) => Some((rhs, false)),
        (false, true) => Some((lhs, true)),
        _ => None,
    }
}

/// Which op indices are jump targets. Interior ops of a fused group
/// must not be targets (control may only *fall* into positions 2..n of
/// a group); group heads may be.
fn jump_targets(ops: &[Op]) -> Vec<bool> {
    let mut is_target = vec![false; ops.len() + 1];
    for op in ops {
        match op {
            Op::Jump(t)
            | Op::JumpIfFalse { target: t, .. }
            | Op::ShortCircuit { target: t, .. }
            | Op::ForTest { target: t, .. }
            | Op::ForTestCopy { target: t, .. }
            | Op::ForNext { head: t, .. } => is_target[*t as usize] = true,
            _ => {}
        }
    }
    is_target
}

/// Rewrites every jump target through `map` (old op index -> new op
/// index) after a peephole pass dropped or merged ops.
fn remap_targets(ops: &mut [Op], map: &[u32]) {
    for op in ops {
        match op {
            Op::Jump(t)
            | Op::JumpIfFalse { target: t, .. }
            | Op::ShortCircuit { target: t, .. }
            | Op::ForTest { target: t, .. }
            | Op::ForTestCopy { target: t, .. }
            | Op::ForNext { head: t, .. } => *t = map[*t as usize],
            _ => {}
        }
    }
}

/// True when `op` writes `reg` with a value that is certainly a scalar
/// number — the producers after which a [`Op::CheckNum`] on that
/// register can never fire.
fn writes_scalar(op: &Op, reg: Reg) -> bool {
    match *op {
        Op::BinNum { dst, .. }
        | Op::IndexGet { dst, .. }
        | Op::Const { dst, .. }
        | Op::Neg { dst, .. }
        | Op::Not { dst, .. } => dst == reg,
        _ => false,
    }
}

/// Peephole pass 1: drop `CheckNum`s that can never fire. The compiler
/// emits `CheckNum` to preserve the tree-walker's evaluation order
/// ("convert this operand to a number *before* evaluating the next
/// sub-expression"); when the checked register was just written by an
/// op that always produces a scalar, the check is unobservable — it
/// ticks nothing and cannot fail — so dropping it changes no program's
/// outcome, error, or measured weight. Kept when the `CheckNum` is a
/// jump target (control could arrive without the producer running).
fn drop_dead_checks(ops: Vec<Op>) -> Vec<Op> {
    let n = ops.len();
    let is_target = jump_targets(&ops);
    let mut out: Vec<Op> = Vec::with_capacity(n);
    let mut map = vec![0u32; n + 1];
    for (i, op) in ops.into_iter().enumerate() {
        map[i] = out.len() as u32;
        if let Op::CheckNum { src, .. } = op {
            if !is_target[i] && out.last().is_some_and(|prev| writes_scalar(prev, src)) {
                continue;
            }
        }
        out.push(op);
    }
    map[n] = out.len() as u32;
    remap_targets(&mut out, &map);
    out
}

/// Peephole pass 2: superinstruction fuser, run on the finished op
/// stream before [`CompiledProgram::seal`] (scratch registers are still
/// identifiable as `>= TEMP_SPLIT`). Fusions performed:
///
/// * `BinNum` chains of length 2–3 where each intermediate is a scratch
///   register written once and consumed by the very next op — the
///   compiler's emission for nested scalar expressions like the affine
///   index `(i - 1) * n + j` — become [`Op::BinChain`]. Scratch
///   single-use holds by construction: every multi-read scratch
///   lifetime (loop counters, bounds, call-argument blocks) is consumed
///   by a non-`BinNum` op, so it can never match the pattern.
/// * A chain (length 1–3) whose final scratch feeds the very next
///   `IndexGet`'s index, or the very next `IndexSet`'s element value,
///   fuses into [`Op::IdxGetChain`] / [`Op::IdxSetChain`] — the
///   dominant array-sweep shape (`M[(i-1)*n+j]`).
/// * `Tick(1), ForInc, Jump` — the for-loop back edge — becomes
///   [`Op::ForNext`].
/// * `ForTest, Copy` (counter publication) becomes [`Op::ForTestCopy`].
///
/// Registers already consumed into a chain must not reappear as later
/// operands of the same fused group (the fused form never writes them,
/// so a re-read would see a stale value); the scan checks this and
/// refuses such fusions. Each fused op replays its constituents' checks
/// and ticks in the identical order, preserving the ops-as-weight
/// invariant bit-for-bit.
fn fuse(ops: Vec<Op>) -> Vec<Op> {
    let n = ops.len();
    let is_target = jump_targets(&ops);
    let temp = |r: Reg| r >= TEMP_SPLIT;

    let mut out: Vec<Op> = Vec::with_capacity(n);
    let mut map = vec![0u32; n + 1];
    let mut i = 0usize;
    while i < n {
        map[i] = out.len() as u32;

        // Scalar chains, longest first, then their array consumers.
        if let Op::BinNum {
            op: op1,
            dst,
            lhs: a,
            rhs: b,
        } = ops[i]
        {
            if temp(dst) {
                let mut chain = ChainSpec {
                    len: 1,
                    op1,
                    a,
                    b,
                    op2: op1,
                    c: a,
                    swap2: false,
                    op3: op1,
                    d: a,
                    swap3: false,
                };
                // `last` holds the chain value so far; `interm` are the
                // scratch registers already folded away (never written
                // by the fused form, so later stages must not read them).
                let mut last = dst;
                let mut interm: Vec<Reg> = Vec::new();
                let mut len = 1usize;
                while len < 3 {
                    let k = i + len;
                    if k >= n || is_target[k] || !temp(last) {
                        break;
                    }
                    let Op::BinNum { op, dst, lhs, rhs } = ops[k] else {
                        break;
                    };
                    let Some((other, swap)) = chain_link(last, lhs, rhs) else {
                        break;
                    };
                    if interm.contains(&other) {
                        break;
                    }
                    if len == 1 {
                        chain.op2 = op;
                        chain.c = other;
                        chain.swap2 = swap;
                    } else {
                        chain.op3 = op;
                        chain.d = other;
                        chain.swap3 = swap;
                    }
                    interm.push(last);
                    last = dst;
                    len += 1;
                    chain.len = len as u8;
                }

                // An IndexGet/IndexSet consuming the chain's scratch?
                let k = i + len;
                let consumer = if k < n && !is_target[k] && temp(last) {
                    match ops[k] {
                        Op::IndexGet { dst, slot, idx }
                            if idx == last && slot != last && !interm.contains(&slot) =>
                        {
                            Some(Op::IdxGetChain { chain, slot, dst })
                        }
                        Op::IndexSet { slot, idx, val }
                            if val == last
                                && idx != last
                                && slot != last
                                && !interm.contains(&idx)
                                && !interm.contains(&slot) =>
                        {
                            Some(Op::IdxSetChain { chain, slot, idx })
                        }
                        _ => None,
                    }
                } else {
                    None
                };

                if let Some(op) = consumer {
                    out.push(op);
                    let fused = out.len() as u32 - 1;
                    map[i..=k].fill(fused);
                    i = k + 1;
                    continue;
                }
                if len >= 2 {
                    out.push(Op::BinChain { chain, dst: last });
                    let fused = out.len() as u32 - 1;
                    map[i..i + len].fill(fused);
                    i += len;
                    continue;
                }
            }
        }

        // For-loop back edge: Tick(1), ForInc, Jump.
        if let Op::Tick(1) = ops[i] {
            if i + 2 < n && !is_target[i + 1] && !is_target[i + 2] {
                if let (Op::ForInc { i: ctr }, Op::Jump(head)) = (&ops[i + 1], &ops[i + 2]) {
                    out.push(Op::ForNext {
                        i: *ctr,
                        head: *head,
                    });
                    map[i + 1] = out.len() as u32 - 1;
                    map[i + 2] = out.len() as u32 - 1;
                    i += 3;
                    continue;
                }
            }
        }

        // Loop head: ForTest, Copy (publish counter into the variable).
        if let Op::ForTest {
            i: ctr,
            end,
            target,
        } = ops[i]
        {
            if i + 1 < n && !is_target[i + 1] {
                if let Op::Copy { dst, src } = ops[i + 1] {
                    if src == ctr {
                        out.push(Op::ForTestCopy {
                            i: ctr,
                            end,
                            var: dst,
                            target,
                        });
                        map[i + 1] = out.len() as u32 - 1;
                        i += 2;
                        continue;
                    }
                }
            }
        }

        out.push(ops[i].clone());
        i += 1;
    }
    map[n] = out.len() as u32;
    remap_targets(&mut out, &map);
    out
}

impl CompiledProgram {
    /// Declared input names in `input_slots` (declaration) order — the
    /// positional contract of [`crate::vm::Vm::run_dense`].
    pub fn input_names(&self) -> impl Iterator<Item = &str> {
        self.input_slots
            .iter()
            .map(move |&s| self.var_names[s as usize].as_str())
    }

    /// Declared output names in `output_slots` (declaration) order — the
    /// positional layout of `DenseOutcome::outputs`.
    pub fn output_names(&self) -> impl Iterator<Item = &str> {
        self.output_slots
            .iter()
            .map(move |&s| self.var_names[s as usize].as_str())
    }

    /// Position of `name` within the declared outputs, if any — resolves
    /// a `(task, var)` string pair to a dense output port index once, at
    /// routing-table build time.
    pub fn output_index(&self, name: &str) -> Option<usize> {
        self.output_names().position(|n| n == name)
    }

    /// Position of `name` within the declared inputs, if any.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.input_names().position(|n| n == name)
    }

    /// Remaps the compiler's provisional registers into the dense frame:
    /// literal-pool register `LIT_BASE + k` becomes `n_vars + k`, and
    /// end-counted temp `u32::MAX - k` becomes `n_vars + n_lits + k`.
    /// Called once by [`compile`].
    fn seal(mut self) -> CompiledProgram {
        let n = self.n_vars as Reg;
        let nl = self.lit_slots.len() as Reg;
        let fix = |r: &mut Reg| {
            if *r >= TEMP_SPLIT {
                *r = n + nl + (u32::MAX - *r);
            } else if *r >= LIT_BASE {
                *r = n + (*r - LIT_BASE);
            }
        };
        for op in &mut self.ops {
            match op {
                Op::Const { dst, .. } => fix(dst),
                Op::Copy { dst, src } => {
                    fix(dst);
                    fix(src);
                }
                Op::LoadVar { dst, .. } => fix(dst),
                Op::IndexGet { dst, idx, .. } => {
                    fix(dst);
                    fix(idx);
                }
                Op::IndexSet { idx, val, .. } => {
                    fix(idx);
                    fix(val);
                }
                Op::BinNum { dst, lhs, rhs, .. } => {
                    fix(dst);
                    fix(lhs);
                    fix(rhs);
                }
                Op::Neg { dst, src } | Op::Not { dst, src } => {
                    fix(dst);
                    fix(src);
                }
                Op::Call { dst, first, .. } => {
                    fix(dst);
                    fix(first);
                }
                Op::JumpIfFalse { cond, .. } => fix(cond),
                Op::ShortCircuit { src, dst, .. } => {
                    fix(src);
                    fix(dst);
                }
                Op::BoolCast { src, dst, .. } => {
                    fix(src);
                    fix(dst);
                }
                Op::CheckNum { src, .. } | Op::CheckNumRound { src, .. } => fix(src),
                Op::ForTest { i, end, .. } => {
                    fix(i);
                    fix(end);
                }
                Op::ForInc { i } | Op::ForNext { i, .. } => fix(i),
                Op::ForTestCopy { i, end, var, .. } => {
                    fix(i);
                    fix(end);
                    fix(var);
                }
                Op::BinChain { chain, dst } => {
                    fix(&mut chain.a);
                    fix(&mut chain.b);
                    fix(&mut chain.c);
                    fix(&mut chain.d);
                    fix(dst);
                }
                Op::IdxGetChain { chain, slot, dst } => {
                    fix(&mut chain.a);
                    fix(&mut chain.b);
                    fix(&mut chain.c);
                    fix(&mut chain.d);
                    fix(slot);
                    fix(dst);
                }
                Op::IdxSetChain { chain, slot, idx } => {
                    fix(&mut chain.a);
                    fix(&mut chain.b);
                    fix(&mut chain.c);
                    fix(&mut chain.d);
                    fix(slot);
                    fix(idx);
                }
                Op::Print { src } => fix(src),
                Op::Tick(_) | Op::Jump(_) | Op::Fail(_) => {}
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn slots_are_dense_and_start_with_constants() {
        let p = parse_program("task T in a out x local g begin x := a + g end").unwrap();
        let c = compile(&p);
        assert_eq!(c.var_names[0], "pi");
        assert_eq!(c.var_names[1], "e");
        assert_eq!(c.var_names[2], "a");
        assert_eq!(c.var_names[3], "x");
        assert_eq!(c.var_names[4], "g");
        assert_eq!(c.n_vars, 5);
        assert_eq!(c.input_slots, vec![2]);
        assert_eq!(c.output_slots, vec![3]);
        assert_eq!(c.const_slots.len(), 2);
    }

    #[test]
    fn undeclared_names_get_slots_too() {
        let p = parse_program("task T out x begin x := mystery end").unwrap();
        let c = compile(&p);
        assert!(c.var_names.iter().any(|n| n == "mystery"));
    }

    #[test]
    fn unknown_function_compiles_to_fail() {
        let p = parse_program("task T out x begin x := wat(1) end").unwrap();
        let c = compile(&p);
        assert!(c.ops.iter().any(|o| matches!(o, Op::Fail(_))));
        assert_eq!(c.fails, vec![RunError::UnknownFunction("wat".into())]);
    }

    #[test]
    fn bad_arity_compiles_to_fail() {
        let p = parse_program("task T out x begin x := sqrt(1, 2) end").unwrap();
        let c = compile(&p);
        assert!(matches!(c.fails[0], RunError::BadArity { .. }));
    }

    #[test]
    fn call_is_preresolved() {
        let p = parse_program("task T in a out x begin x := sqrt(a) end").unwrap();
        let c = compile(&p);
        let call = c
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call { builtin, .. } => Some(*builtin as usize),
                _ => None,
            })
            .expect("a Call op");
        assert_eq!(crate::builtins::BUILTINS[call].name, "sqrt");
    }

    #[test]
    fn simple_operands_fuse_into_one_op() {
        // `x := a + 1` needs no LoadVar/Const: the statement tick plus
        // one fused BinNum reading the variable slot and the literal
        // pool directly.
        let p = parse_program("task T in a out x begin x := a + 1 end").unwrap();
        let c = compile(&p);
        assert_eq!(c.ops.len(), 2, "{:?}", c.ops);
        assert!(matches!(c.ops[0], Op::Tick(1)));
        assert!(matches!(c.ops[1], Op::BinNum { .. }));
    }

    #[test]
    fn literal_pool_is_deduplicated() {
        let p = parse_program("task T out x begin x := 2 + 2 x := 2 * 2 end").unwrap();
        let c = compile(&p);
        assert_eq!(
            c.lit_slots.iter().filter(|(_, v)| *v == 2.0).count(),
            1,
            "{:?}",
            c.lit_slots
        );
        // Pool slots sit between named variables and scratch.
        for &(slot, _) in &c.lit_slots {
            assert!((slot as usize) >= c.n_vars);
            assert!((slot as usize) < c.frame_size);
        }
    }

    #[test]
    fn registers_fit_frame() {
        let p = parse_program(
            "task T in a out x begin \
             x := ((a + 1) * (a + 2) + (a + 3) * (a + 4)) / (a + max(a, 2 * a)) end",
        )
        .unwrap();
        let c = compile(&p);
        for op in &c.ops {
            for r in regs_of(op) {
                assert!(
                    (r as usize) < c.frame_size,
                    "register {r} out of frame {} in {op:?}",
                    c.frame_size
                );
            }
        }
    }

    fn regs_of(op: &Op) -> Vec<Reg> {
        match *op {
            Op::Const { dst, .. } => vec![dst],
            Op::Copy { dst, src } => vec![dst, src],
            Op::LoadVar { dst, slot } => vec![dst, slot],
            Op::IndexGet { dst, slot, idx } => vec![dst, slot, idx],
            Op::IndexSet { slot, idx, val } => vec![slot, idx, val],
            Op::BinNum { dst, lhs, rhs, .. } => vec![dst, lhs, rhs],
            Op::Neg { dst, src } | Op::Not { dst, src } => vec![dst, src],
            Op::Call {
                dst, first, argc, ..
            } => {
                let mut v = vec![dst];
                for k in 0..argc as u32 {
                    v.push(first + k);
                }
                v
            }
            Op::JumpIfFalse { cond, .. } => vec![cond],
            Op::ShortCircuit { src, dst, .. } => vec![src, dst],
            Op::BoolCast { src, dst, .. } => vec![src, dst],
            Op::CheckNum { src, .. } | Op::CheckNumRound { src, .. } => vec![src],
            Op::ForTest { i, end, .. } => vec![i, end],
            Op::ForInc { i } | Op::ForNext { i, .. } => vec![i],
            Op::ForTestCopy { i, end, var, .. } => vec![i, end, var],
            Op::BinChain { chain, dst } => vec![chain.a, chain.b, chain.c, chain.d, dst],
            Op::IdxGetChain { chain, slot, dst } => {
                vec![chain.a, chain.b, chain.c, chain.d, slot, dst]
            }
            Op::IdxSetChain { chain, slot, idx } => {
                vec![chain.a, chain.b, chain.c, chain.d, slot, idx]
            }
            Op::Print { src } => vec![src],
            Op::Tick(_) | Op::Jump(_) | Op::Fail(_) => vec![],
        }
    }
}
