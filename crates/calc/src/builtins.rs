//! The calculator's scientific function buttons and constants.
//!
//! The paper's calculator metaphor promises "scientific and engineering
//! functions, constants, and formulas"; this module is that button panel.
//! Every builtin carries an operation-count cost so trial runs can
//! estimate task weights for the scheduler, and a direct function pointer
//! so the bytecode VM can dispatch a pre-resolved call without a name
//! lookup.

use crate::error::RunError;
use crate::value::Value;

/// The implementation of one builtin: takes the (arity-checked) argument
/// slice, returns the result value.
pub type BuiltinFn = fn(&[Value]) -> Result<Value, RunError>;

/// Description of one builtin function.
pub struct Builtin {
    /// Surface name (the button label).
    pub name: &'static str,
    /// Number of arguments (`usize::MAX` marks "any array" single-arg
    /// functions, but all current builtins use fixed arities).
    pub arity: usize,
    /// Cost in abstract operations, charged per call by the interpreter.
    pub cost: u64,
    /// The implementation, called with exactly `arity` arguments.
    pub func: BuiltinFn,
}

/// Constants preloaded into every PITS environment.
pub const CONSTANTS: [(&str, f64); 2] = [("pi", std::f64::consts::PI), ("e", std::f64::consts::E)];

/// Scalar argument `i`, or the same `NotAScalar` error `apply` has always
/// produced; the message is only built on the error path so the success
/// path stays allocation-free.
fn num_arg(args: &[Value], i: usize, name: &str) -> Result<f64, RunError> {
    match &args[i] {
        Value::Num(v) => Ok(*v),
        Value::Array(_) => Err(RunError::NotAScalar(format!(
            "argument {} of {name}()",
            i + 1
        ))),
    }
}

/// Array argument `i`, or the usual `NotAnArray` error.
fn arr_arg<'a>(args: &'a [Value], i: usize, name: &str) -> Result<&'a [f64], RunError> {
    match &args[i] {
        Value::Array(v) => Ok(v),
        Value::Num(_) => Err(RunError::NotAnArray(format!(
            "argument {} of {name}()",
            i + 1
        ))),
    }
}

macro_rules! scalar1 {
    ($fname:ident, $name:literal, $body:expr) => {
        fn $fname(args: &[Value]) -> Result<Value, RunError> {
            let x = num_arg(args, 0, $name)?;
            #[allow(clippy::redundant_closure_call)]
            Ok(Value::Num(($body)(x)))
        }
    };
}

macro_rules! scalar2 {
    ($fname:ident, $name:literal, $body:expr) => {
        fn $fname(args: &[Value]) -> Result<Value, RunError> {
            let x = num_arg(args, 0, $name)?;
            let y = num_arg(args, 1, $name)?;
            #[allow(clippy::redundant_closure_call)]
            Ok(Value::Num(($body)(x, y)))
        }
    };
}

scalar1!(b_abs, "abs", |x: f64| x.abs());
scalar1!(b_acos, "acos", |x: f64| x.acos());
scalar1!(b_asin, "asin", |x: f64| x.asin());
scalar1!(b_atan, "atan", |x: f64| x.atan());
scalar1!(b_ceil, "ceil", |x: f64| x.ceil());
scalar1!(b_cos, "cos", |x: f64| x.cos());
scalar1!(b_exp, "exp", |x: f64| x.exp());
scalar1!(b_floor, "floor", |x: f64| x.floor());
scalar1!(b_ln, "ln", |x: f64| x.ln());
scalar1!(b_log10, "log10", |x: f64| x.log10());
scalar1!(b_round, "round", |x: f64| x.round());
scalar1!(b_sin, "sin", |x: f64| x.sin());
scalar1!(b_sqrt, "sqrt", |x: f64| x.sqrt());
scalar1!(b_tan, "tan", |x: f64| x.tan());
scalar2!(b_atan2, "atan2", |x: f64, y: f64| x.atan2(y));
scalar2!(b_max, "max", |x: f64, y: f64| x.max(y));
scalar2!(b_min, "min", |x: f64, y: f64| x.min(y));
scalar2!(b_pow, "pow", |x: f64, y: f64| x.powf(y));

fn b_len(args: &[Value]) -> Result<Value, RunError> {
    Ok(Value::Num(arr_arg(args, 0, "len")?.len() as f64))
}

fn b_sum(args: &[Value]) -> Result<Value, RunError> {
    Ok(Value::Num(arr_arg(args, 0, "sum")?.iter().sum()))
}

fn b_amin(args: &[Value]) -> Result<Value, RunError> {
    Ok(Value::Num(
        arr_arg(args, 0, "amin")?
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min),
    ))
}

fn b_amax(args: &[Value]) -> Result<Value, RunError> {
    Ok(Value::Num(
        arr_arg(args, 0, "amax")?
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max),
    ))
}

fn b_dot(args: &[Value]) -> Result<Value, RunError> {
    let (a, b) = (arr_arg(args, 0, "dot")?, arr_arg(args, 1, "dot")?);
    if a.len() != b.len() {
        return Err(RunError::BadArity {
            name: "dot".into(),
            expected: a.len(),
            got: b.len(),
        });
    }
    Ok(Value::Num(a.iter().zip(b).map(|(x, y)| x * y).sum()))
}

fn b_zeros(args: &[Value]) -> Result<Value, RunError> {
    let n = num_arg(args, 0, "zeros")?.round();
    if !(0.0..=1e9).contains(&n) {
        return Err(RunError::NotAScalar(format!(
            "zeros() size must be in 0..=1e9, got {n}"
        )));
    }
    Ok(Value::array(vec![0.0; n as usize]))
}

fn b_fill(args: &[Value]) -> Result<Value, RunError> {
    let n = num_arg(args, 0, "fill")?.round();
    if !(0.0..=1e9).contains(&n) {
        return Err(RunError::NotAScalar(format!(
            "fill() size must be in 0..=1e9, got {n}"
        )));
    }
    Ok(Value::array(vec![num_arg(args, 1, "fill")?; n as usize]))
}

/// The builtin table (kept sorted by name for binary search).
pub const BUILTINS: &[Builtin] = &[
    Builtin {
        name: "abs",
        arity: 1,
        cost: 1,
        func: b_abs,
    },
    Builtin {
        name: "acos",
        arity: 1,
        cost: 8,
        func: b_acos,
    },
    Builtin {
        name: "amax",
        arity: 1,
        cost: 4,
        func: b_amax,
    },
    Builtin {
        name: "amin",
        arity: 1,
        cost: 4,
        func: b_amin,
    },
    Builtin {
        name: "asin",
        arity: 1,
        cost: 8,
        func: b_asin,
    },
    Builtin {
        name: "atan",
        arity: 1,
        cost: 8,
        func: b_atan,
    },
    Builtin {
        name: "atan2",
        arity: 2,
        cost: 10,
        func: b_atan2,
    },
    Builtin {
        name: "ceil",
        arity: 1,
        cost: 1,
        func: b_ceil,
    },
    Builtin {
        name: "cos",
        arity: 1,
        cost: 8,
        func: b_cos,
    },
    Builtin {
        name: "dot",
        arity: 2,
        cost: 8,
        func: b_dot,
    },
    Builtin {
        name: "exp",
        arity: 1,
        cost: 8,
        func: b_exp,
    },
    Builtin {
        name: "fill",
        arity: 2,
        cost: 4,
        func: b_fill,
    },
    Builtin {
        name: "floor",
        arity: 1,
        cost: 1,
        func: b_floor,
    },
    Builtin {
        name: "len",
        arity: 1,
        cost: 1,
        func: b_len,
    },
    Builtin {
        name: "ln",
        arity: 1,
        cost: 8,
        func: b_ln,
    },
    Builtin {
        name: "log10",
        arity: 1,
        cost: 8,
        func: b_log10,
    },
    Builtin {
        name: "max",
        arity: 2,
        cost: 1,
        func: b_max,
    },
    Builtin {
        name: "min",
        arity: 2,
        cost: 1,
        func: b_min,
    },
    Builtin {
        name: "pow",
        arity: 2,
        cost: 10,
        func: b_pow,
    },
    Builtin {
        name: "round",
        arity: 1,
        cost: 1,
        func: b_round,
    },
    Builtin {
        name: "sin",
        arity: 1,
        cost: 8,
        func: b_sin,
    },
    Builtin {
        name: "sqrt",
        arity: 1,
        cost: 6,
        func: b_sqrt,
    },
    Builtin {
        name: "sum",
        arity: 1,
        cost: 4,
        func: b_sum,
    },
    Builtin {
        name: "tan",
        arity: 1,
        cost: 8,
        func: b_tan,
    },
    Builtin {
        name: "zeros",
        arity: 1,
        cost: 2,
        func: b_zeros,
    },
];

/// Looks up a builtin by name.
pub fn lookup(name: &str) -> Option<&'static Builtin> {
    index_of(name).map(|i| &BUILTINS[i])
}

/// Table index of a builtin — the "direct function index" the bytecode
/// compiler freezes into `Op::Call` so the VM never re-resolves names.
pub fn index_of(name: &str) -> Option<usize> {
    BUILTINS.binary_search_by(|b| b.name.cmp(name)).ok()
}

/// Applies a builtin by name. `args` length is pre-checked against the
/// arity by the interpreter.
pub fn apply(name: &str, args: &[Value]) -> Result<Value, RunError> {
    match lookup(name) {
        Some(b) => (b.func)(args),
        None => Err(RunError::UnknownFunction(name.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_for_binary_search() {
        for w in BUILTINS.windows(2) {
            assert!(w[0].name < w[1].name, "{} >= {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn lookup_finds_everything() {
        for (i, b) in BUILTINS.iter().enumerate() {
            let found = lookup(b.name).unwrap();
            assert_eq!(found.name, b.name);
            assert_eq!(index_of(b.name), Some(i));
        }
        assert!(lookup("nope").is_none());
        assert!(index_of("nope").is_none());
    }

    #[test]
    fn scalar_functions() {
        let n = |v: f64| Value::Num(v);
        assert_eq!(apply("abs", &[n(-3.0)]).unwrap(), n(3.0));
        assert_eq!(apply("sqrt", &[n(9.0)]).unwrap(), n(3.0));
        assert_eq!(apply("max", &[n(2.0), n(5.0)]).unwrap(), n(5.0));
        assert_eq!(apply("min", &[n(2.0), n(5.0)]).unwrap(), n(2.0));
        assert_eq!(apply("pow", &[n(2.0), n(10.0)]).unwrap(), n(1024.0));
        assert_eq!(apply("floor", &[n(2.7)]).unwrap(), n(2.0));
        assert_eq!(apply("ceil", &[n(2.2)]).unwrap(), n(3.0));
        assert_eq!(apply("round", &[n(2.5)]).unwrap(), n(3.0));
        if let Value::Num(v) = apply("atan2", &[n(1.0), n(1.0)]).unwrap() {
            assert!((v - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        } else {
            panic!();
        }
    }

    #[test]
    fn array_functions() {
        let a = Value::array(vec![1.0, 2.0, 3.0]);
        assert_eq!(
            apply("len", std::slice::from_ref(&a)).unwrap(),
            Value::Num(3.0)
        );
        assert_eq!(
            apply("sum", std::slice::from_ref(&a)).unwrap(),
            Value::Num(6.0)
        );
        assert_eq!(
            apply("amin", std::slice::from_ref(&a)).unwrap(),
            Value::Num(1.0)
        );
        assert_eq!(
            apply("amax", std::slice::from_ref(&a)).unwrap(),
            Value::Num(3.0)
        );
        assert_eq!(
            apply("dot", &[a.clone(), a.clone()]).unwrap(),
            Value::Num(14.0)
        );
        assert_eq!(
            apply("zeros", &[Value::Num(2.0)]).unwrap(),
            Value::array(vec![0.0, 0.0])
        );
        assert_eq!(
            apply("fill", &[Value::Num(2.0), Value::Num(7.0)]).unwrap(),
            Value::array(vec![7.0, 7.0])
        );
    }

    #[test]
    fn type_errors() {
        let a = Value::array(vec![1.0]);
        assert!(apply("sqrt", std::slice::from_ref(&a)).is_err());
        assert!(apply("len", &[Value::Num(1.0)]).is_err());
        assert!(apply("dot", &[a, Value::array(vec![1.0, 2.0])]).is_err());
        assert!(apply("zeros", &[Value::Num(-1.0)]).is_err());
        assert!(apply("nosuch", &[]).is_err());
    }

    #[test]
    fn type_error_messages_name_the_argument() {
        let a = Value::array(vec![1.0]);
        let err = apply("sqrt", std::slice::from_ref(&a)).unwrap_err();
        assert_eq!(
            err,
            RunError::NotAScalar("argument 1 of sqrt()".to_string())
        );
        let err2 = apply("len", &[Value::Num(1.0)]).unwrap_err();
        assert_eq!(
            err2,
            RunError::NotAnArray("argument 1 of len()".to_string())
        );
    }

    #[test]
    fn constants_present() {
        assert_eq!(CONSTANTS[0].0, "pi");
        assert_eq!(CONSTANTS[0].1, std::f64::consts::PI);
        assert_eq!(CONSTANTS[1].0, "e");
    }
}
