//! The calculator's scientific function buttons and constants.
//!
//! The paper's calculator metaphor promises "scientific and engineering
//! functions, constants, and formulas"; this module is that button panel.
//! Every builtin carries an operation-count cost so trial runs can
//! estimate task weights for the scheduler.

use crate::error::RunError;
use crate::value::Value;

/// Description of one builtin function.
pub struct Builtin {
    /// Surface name (the button label).
    pub name: &'static str,
    /// Number of arguments (`usize::MAX` marks "any array" single-arg
    /// functions, but all current builtins use fixed arities).
    pub arity: usize,
    /// Cost in abstract operations, charged per call by the interpreter.
    pub cost: u64,
}

/// Constants preloaded into every PITS environment.
pub const CONSTANTS: [(&str, f64); 2] = [("pi", std::f64::consts::PI), ("e", std::f64::consts::E)];

/// The builtin table (kept sorted by name for binary search).
pub const BUILTINS: &[Builtin] = &[
    Builtin {
        name: "abs",
        arity: 1,
        cost: 1,
    },
    Builtin {
        name: "acos",
        arity: 1,
        cost: 8,
    },
    Builtin {
        name: "amax",
        arity: 1,
        cost: 4,
    },
    Builtin {
        name: "amin",
        arity: 1,
        cost: 4,
    },
    Builtin {
        name: "asin",
        arity: 1,
        cost: 8,
    },
    Builtin {
        name: "atan",
        arity: 1,
        cost: 8,
    },
    Builtin {
        name: "atan2",
        arity: 2,
        cost: 10,
    },
    Builtin {
        name: "ceil",
        arity: 1,
        cost: 1,
    },
    Builtin {
        name: "cos",
        arity: 1,
        cost: 8,
    },
    Builtin {
        name: "dot",
        arity: 2,
        cost: 8,
    },
    Builtin {
        name: "exp",
        arity: 1,
        cost: 8,
    },
    Builtin {
        name: "fill",
        arity: 2,
        cost: 4,
    },
    Builtin {
        name: "floor",
        arity: 1,
        cost: 1,
    },
    Builtin {
        name: "len",
        arity: 1,
        cost: 1,
    },
    Builtin {
        name: "ln",
        arity: 1,
        cost: 8,
    },
    Builtin {
        name: "log10",
        arity: 1,
        cost: 8,
    },
    Builtin {
        name: "max",
        arity: 2,
        cost: 1,
    },
    Builtin {
        name: "min",
        arity: 2,
        cost: 1,
    },
    Builtin {
        name: "pow",
        arity: 2,
        cost: 10,
    },
    Builtin {
        name: "round",
        arity: 1,
        cost: 1,
    },
    Builtin {
        name: "sin",
        arity: 1,
        cost: 8,
    },
    Builtin {
        name: "sqrt",
        arity: 1,
        cost: 6,
    },
    Builtin {
        name: "sum",
        arity: 1,
        cost: 4,
    },
    Builtin {
        name: "tan",
        arity: 1,
        cost: 8,
    },
    Builtin {
        name: "zeros",
        arity: 1,
        cost: 2,
    },
];

/// Looks up a builtin by name.
pub fn lookup(name: &str) -> Option<&'static Builtin> {
    BUILTINS
        .binary_search_by(|b| b.name.cmp(name))
        .ok()
        .map(|i| &BUILTINS[i])
}

/// Applies a builtin. `args` length is pre-checked against the arity by
/// the interpreter.
pub fn apply(name: &str, args: &[Value]) -> Result<Value, RunError> {
    let num = |i: usize| args[i].as_num(&format!("argument {} of {name}()", i + 1));
    let arr = |i: usize| args[i].as_array(&format!("argument {} of {name}()", i + 1));
    let v = match name {
        "abs" => Value::Num(num(0)?.abs()),
        "acos" => Value::Num(num(0)?.acos()),
        "asin" => Value::Num(num(0)?.asin()),
        "atan" => Value::Num(num(0)?.atan()),
        "atan2" => Value::Num(num(0)?.atan2(num(1)?)),
        "ceil" => Value::Num(num(0)?.ceil()),
        "cos" => Value::Num(num(0)?.cos()),
        "exp" => Value::Num(num(0)?.exp()),
        "floor" => Value::Num(num(0)?.floor()),
        "ln" => Value::Num(num(0)?.ln()),
        "log10" => Value::Num(num(0)?.log10()),
        "max" => Value::Num(num(0)?.max(num(1)?)),
        "min" => Value::Num(num(0)?.min(num(1)?)),
        "pow" => Value::Num(num(0)?.powf(num(1)?)),
        "round" => Value::Num(num(0)?.round()),
        "sin" => Value::Num(num(0)?.sin()),
        "sqrt" => Value::Num(num(0)?.sqrt()),
        "tan" => Value::Num(num(0)?.tan()),
        "len" => Value::Num(arr(0)?.len() as f64),
        "sum" => Value::Num(arr(0)?.iter().sum()),
        "amin" => Value::Num(arr(0)?.iter().copied().fold(f64::INFINITY, f64::min)),
        "amax" => Value::Num(arr(0)?.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
        "dot" => {
            let (a, b) = (arr(0)?, arr(1)?);
            if a.len() != b.len() {
                return Err(RunError::BadArity {
                    name: "dot".into(),
                    expected: a.len(),
                    got: b.len(),
                });
            }
            Value::Num(a.iter().zip(b).map(|(x, y)| x * y).sum())
        }
        "zeros" => {
            let n = num(0)?.round();
            if !(0.0..=1e9).contains(&n) {
                return Err(RunError::NotAScalar(format!(
                    "zeros() size must be in 0..=1e9, got {n}"
                )));
            }
            Value::Array(vec![0.0; n as usize])
        }
        "fill" => {
            let n = num(0)?.round();
            if !(0.0..=1e9).contains(&n) {
                return Err(RunError::NotAScalar(format!(
                    "fill() size must be in 0..=1e9, got {n}"
                )));
            }
            Value::Array(vec![num(1)?; n as usize])
        }
        _ => return Err(RunError::UnknownFunction(name.to_string())),
    };
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_for_binary_search() {
        for w in BUILTINS.windows(2) {
            assert!(w[0].name < w[1].name, "{} >= {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn lookup_finds_everything() {
        for b in BUILTINS {
            let found = lookup(b.name).unwrap();
            assert_eq!(found.name, b.name);
        }
        assert!(lookup("nope").is_none());
    }

    #[test]
    fn scalar_functions() {
        let n = |v: f64| Value::Num(v);
        assert_eq!(apply("abs", &[n(-3.0)]).unwrap(), n(3.0));
        assert_eq!(apply("sqrt", &[n(9.0)]).unwrap(), n(3.0));
        assert_eq!(apply("max", &[n(2.0), n(5.0)]).unwrap(), n(5.0));
        assert_eq!(apply("min", &[n(2.0), n(5.0)]).unwrap(), n(2.0));
        assert_eq!(apply("pow", &[n(2.0), n(10.0)]).unwrap(), n(1024.0));
        assert_eq!(apply("floor", &[n(2.7)]).unwrap(), n(2.0));
        assert_eq!(apply("ceil", &[n(2.2)]).unwrap(), n(3.0));
        assert_eq!(apply("round", &[n(2.5)]).unwrap(), n(3.0));
        if let Value::Num(v) = apply("atan2", &[n(1.0), n(1.0)]).unwrap() {
            assert!((v - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        } else {
            panic!();
        }
    }

    #[test]
    fn array_functions() {
        let a = Value::Array(vec![1.0, 2.0, 3.0]);
        assert_eq!(
            apply("len", std::slice::from_ref(&a)).unwrap(),
            Value::Num(3.0)
        );
        assert_eq!(
            apply("sum", std::slice::from_ref(&a)).unwrap(),
            Value::Num(6.0)
        );
        assert_eq!(
            apply("amin", std::slice::from_ref(&a)).unwrap(),
            Value::Num(1.0)
        );
        assert_eq!(
            apply("amax", std::slice::from_ref(&a)).unwrap(),
            Value::Num(3.0)
        );
        assert_eq!(
            apply("dot", &[a.clone(), a.clone()]).unwrap(),
            Value::Num(14.0)
        );
        assert_eq!(
            apply("zeros", &[Value::Num(2.0)]).unwrap(),
            Value::Array(vec![0.0, 0.0])
        );
        assert_eq!(
            apply("fill", &[Value::Num(2.0), Value::Num(7.0)]).unwrap(),
            Value::Array(vec![7.0, 7.0])
        );
    }

    #[test]
    fn type_errors() {
        let a = Value::Array(vec![1.0]);
        assert!(apply("sqrt", std::slice::from_ref(&a)).is_err());
        assert!(apply("len", &[Value::Num(1.0)]).is_err());
        assert!(apply("dot", &[a, Value::Array(vec![1.0, 2.0])]).is_err());
        assert!(apply("zeros", &[Value::Num(-1.0)]).is_err());
        assert!(apply("nosuch", &[]).is_err());
    }

    #[test]
    fn constants_present() {
        assert_eq!(CONSTANTS[0].0, "pi");
        assert_eq!(CONSTANTS[0].1, std::f64::consts::PI);
        assert_eq!(CONSTANTS[1].0, "e");
    }
}
