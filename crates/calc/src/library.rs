//! A named collection of PITS programs — the bridge between a design's
//! task nodes (which carry a `program` name) and the executable routines
//! behind them.
//!
//! Every program is compiled to bytecode ([`crate::compile`]) exactly
//! once, when it enters the library; the `Arc<CompiledProgram>` handed
//! out by [`ProgramLibrary::get_compiled`] is shared by the exec
//! runner's worker threads, trial runs, and benchmarks, so no caller
//! ever recompiles (or re-walks the AST of) a task body per invocation.

use crate::ast::Program;
use crate::compile::{compile, CompiledProgram};
use crate::cost;
use crate::error::ParseError;
use crate::parser::parse_program;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A library of PITS programs keyed by name.
#[derive(Debug, Clone, Default)]
pub struct ProgramLibrary {
    programs: BTreeMap<String, Entry>,
}

#[derive(Debug, Clone)]
struct Entry {
    source: Arc<Program>,
    compiled: Arc<CompiledProgram>,
}

impl ProgramLibrary {
    /// An empty library.
    pub fn new() -> Self {
        ProgramLibrary::default()
    }

    /// Parses `src` and registers the program under its own task name.
    /// Returns the name. Re-registering a name replaces the old program
    /// (the panel's "edit task" flow) and its compiled form.
    pub fn add_source(&mut self, src: &str) -> Result<String, ParseError> {
        let prog = parse_program(src)?;
        Ok(self.add(prog))
    }

    /// Registers an already-parsed program, compiling it eagerly
    /// (compilation never fails — unresolvable names become runtime
    /// errors at the same execution points the tree-walker raises them).
    pub fn add(&mut self, prog: Program) -> String {
        let name = prog.name.clone();
        let compiled = Arc::new(compile(&prog));
        self.programs.insert(
            name.clone(),
            Entry {
                source: Arc::new(prog),
                compiled,
            },
        );
        name
    }

    /// Looks a program up by name.
    pub fn get(&self, name: &str) -> Option<&Program> {
        self.programs.get(name).map(|e| e.source.as_ref())
    }

    /// The shared handle to a named program's AST. Lets long-lived
    /// runtimes (the executor's persistent [`Session`]s) own their
    /// routing tables without borrowing the library or cloning ASTs.
    ///
    /// [`Session`]: https://docs.rs/banger-exec
    pub fn get_shared(&self, name: &str) -> Option<Arc<Program>> {
        self.programs.get(name).map(|e| Arc::clone(&e.source))
    }

    /// The compile-once bytecode form of a named program. Cloning the
    /// `Arc` is how worker threads share it without re-compilation.
    pub fn get_compiled(&self, name: &str) -> Option<Arc<CompiledProgram>> {
        self.programs.get(name).map(|e| Arc::clone(&e.compiled))
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Iterates over `(name, program)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Program)> {
        self.programs.iter().map(|(n, e)| (n, e.source.as_ref()))
    }

    /// Static weight estimate for a named program (see [`crate::cost`]).
    /// `None` when the name is unknown.
    pub fn estimate_weight(&self, name: &str) -> Option<f64> {
        self.get(name).map(cost::estimate_program)
    }

    /// Full static cost bounds for a named program: lower/upper bounds on
    /// a clean trial run's operation count plus the point estimate (see
    /// [`crate::cost::static_cost`]). `None` when the name is unknown.
    pub fn static_cost(&self, name: &str) -> Option<crate::absint::StaticCost> {
        self.get(name).map(cost::static_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_and_estimate() {
        let mut lib = ProgramLibrary::new();
        assert!(lib.is_empty());
        let name = lib
            .add_source("task Double in a out b begin b := a * 2 end")
            .unwrap();
        assert_eq!(name, "Double");
        assert_eq!(lib.len(), 1);
        assert!(lib.get("Double").is_some());
        assert!(lib.get("Nope").is_none());
        assert_eq!(lib.estimate_weight("Double"), Some(2.0));
        assert_eq!(lib.estimate_weight("Nope"), None);
        let sc = lib.static_cost("Double").unwrap();
        assert!(sc.exact);
        assert_eq!(sc.ops_lo, 2.0);
        assert!(lib.static_cost("Nope").is_none());
    }

    #[test]
    fn replace_on_same_name() {
        let mut lib = ProgramLibrary::new();
        lib.add_source("task T in a out b begin b := a end")
            .unwrap();
        lib.add_source("task T in a out b begin b := a * 3 end")
            .unwrap();
        assert_eq!(lib.len(), 1);
        let p = lib.get("T").unwrap();
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn parse_errors_propagate() {
        let mut lib = ProgramLibrary::new();
        assert!(lib.add_source("task ???").is_err());
        assert!(lib.is_empty());
    }

    #[test]
    fn iteration_in_name_order() {
        let mut lib = ProgramLibrary::new();
        lib.add_source("task B out x begin x := 1 end").unwrap();
        lib.add_source("task A out x begin x := 1 end").unwrap();
        let names: Vec<&String> = lib.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn compiled_form_is_cached_and_replaced() {
        let mut lib = ProgramLibrary::new();
        lib.add_source("task T in a out b begin b := a end")
            .unwrap();
        let c1 = lib.get_compiled("T").unwrap();
        let c1_again = lib.get_compiled("T").unwrap();
        assert!(Arc::ptr_eq(&c1, &c1_again), "same Arc on repeated lookup");
        lib.add_source("task T in a out b begin b := a * 3 end")
            .unwrap();
        let c2 = lib.get_compiled("T").unwrap();
        assert!(!Arc::ptr_eq(&c1, &c2), "re-registering recompiles");
        assert!(lib.get_compiled("Nope").is_none());
    }

    #[test]
    fn compiled_form_runs() {
        use crate::value::Value;
        let mut lib = ProgramLibrary::new();
        lib.add_source("task Double in a out b begin b := a * 2 end")
            .unwrap();
        let c = lib.get_compiled("Double").unwrap();
        let out = crate::vm::run_compiled(
            &c,
            &[("a".to_string(), Value::Num(21.0))].into_iter().collect(),
            crate::interp::InterpConfig::default(),
        )
        .unwrap();
        assert_eq!(out.outputs["b"], Value::Num(42.0));
    }
}
