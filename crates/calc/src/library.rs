//! A named collection of PITS programs — the bridge between a design's
//! task nodes (which carry a `program` name) and the executable routines
//! behind them.

use crate::ast::Program;
use crate::cost;
use crate::error::ParseError;
use crate::parser::parse_program;
use std::collections::BTreeMap;

/// A library of PITS programs keyed by name.
#[derive(Debug, Clone, Default)]
pub struct ProgramLibrary {
    programs: BTreeMap<String, Program>,
}

impl ProgramLibrary {
    /// An empty library.
    pub fn new() -> Self {
        ProgramLibrary::default()
    }

    /// Parses `src` and registers the program under its own task name.
    /// Returns the name. Re-registering a name replaces the old program
    /// (the panel's "edit task" flow).
    pub fn add_source(&mut self, src: &str) -> Result<String, ParseError> {
        let prog = parse_program(src)?;
        let name = prog.name.clone();
        self.programs.insert(name.clone(), prog);
        Ok(name)
    }

    /// Registers an already-parsed program.
    pub fn add(&mut self, prog: Program) -> String {
        let name = prog.name.clone();
        self.programs.insert(name.clone(), prog);
        name
    }

    /// Looks a program up by name.
    pub fn get(&self, name: &str) -> Option<&Program> {
        self.programs.get(name)
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Iterates over `(name, program)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Program)> {
        self.programs.iter()
    }

    /// Static weight estimate for a named program (see [`crate::cost`]).
    /// `None` when the name is unknown.
    pub fn estimate_weight(&self, name: &str) -> Option<f64> {
        self.get(name).map(cost::estimate_program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_and_estimate() {
        let mut lib = ProgramLibrary::new();
        assert!(lib.is_empty());
        let name = lib
            .add_source("task Double in a out b begin b := a * 2 end")
            .unwrap();
        assert_eq!(name, "Double");
        assert_eq!(lib.len(), 1);
        assert!(lib.get("Double").is_some());
        assert!(lib.get("Nope").is_none());
        assert_eq!(lib.estimate_weight("Double"), Some(2.0));
        assert_eq!(lib.estimate_weight("Nope"), None);
    }

    #[test]
    fn replace_on_same_name() {
        let mut lib = ProgramLibrary::new();
        lib.add_source("task T in a out b begin b := a end")
            .unwrap();
        lib.add_source("task T in a out b begin b := a * 3 end")
            .unwrap();
        assert_eq!(lib.len(), 1);
        let p = lib.get("T").unwrap();
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn parse_errors_propagate() {
        let mut lib = ProgramLibrary::new();
        assert!(lib.add_source("task ???").is_err());
        assert!(lib.is_empty());
    }

    #[test]
    fn iteration_in_name_order() {
        let mut lib = ProgramLibrary::new();
        lib.add_source("task B out x begin x := 1 end").unwrap();
        lib.add_source("task A out x begin x := 1 end").unwrap();
        let names: Vec<&String> = lib.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["A", "B"]);
    }
}
