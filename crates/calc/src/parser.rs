//! Recursive-descent parser for the PITS calculator language.
//!
//! Grammar (EBNF):
//!
//! ```text
//! program   = "task" IDENT { decl } "begin" stmts "end"
//! decl      = ("in" | "out" | "local") IDENT { "," IDENT }
//! stmts     = { stmt }
//! stmt      = IDENT ( ":=" expr | "[" expr "]" ":=" expr )
//!           | "if" expr "then" stmts [ "else" stmts ] "end"
//!           | "while" expr "do" stmts "end"
//!           | "for" IDENT ":=" expr "to" expr "do" stmts "end"
//!           | "print" expr
//! expr      = orterm   { "or" orterm }
//! orterm    = andterm  { "and" andterm }
//! andterm   = [ "not" ] cmp
//! cmp       = sum [ ("="|"<>"|"<"|"<="|">"|">=") sum ]
//! sum       = prod { ("+"|"-") prod }
//! prod      = unary { ("*"|"/"|"%") unary }
//! unary     = [ "-" ] power
//! power     = primary [ "^" unary ]          (right associative)
//! primary   = NUMBER | IDENT | IDENT "(" [ expr {"," expr} ] ")"
//!           | IDENT "[" expr "]" | "(" expr ")"
//! ```

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::error::{ParseError, Pos};
use crate::token::{lex, Spanned, Tok};

/// Parses a complete `task ... begin ... end` program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        i: 0,
        depth: 0,
    };
    let prog = p.program()?;
    p.expect(Tok::Eof, "end of input")?;
    Ok(prog)
}

/// Parses a bare expression (used by the calculator panel's immediate
/// evaluation mode).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        i: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect(Tok::Eof, "end of input")?;
    Ok(e)
}

/// Maximum expression/statement nesting depth; deeper input is rejected
/// with a parse error instead of overflowing the stack (the recursive-
/// descent parser recurses once per nesting level).
const MAX_DEPTH: u32 = 200;

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
    depth: u32,
}

impl Parser {
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        self.expect(Tok::Task, "`task`")?;
        let name = self.ident("task name")?;
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut locals = Vec::new();
        let mut decl_pos = std::collections::BTreeMap::new();
        loop {
            let list = match self.peek() {
                Tok::In => &mut inputs,
                Tok::Out => &mut outputs,
                Tok::Local => &mut locals,
                _ => break,
            };
            self.bump();
            loop {
                let pos = self.pos();
                let v = self.ident("variable name")?;
                if list.contains(&v) {
                    return Err(self.err(format!("variable {v:?} declared twice")));
                }
                decl_pos.entry(v.clone()).or_insert(pos);
                list.push(v);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // A name must appear in only one section.
        for v in &inputs {
            if outputs.contains(v) || locals.contains(v) {
                return Err(self.err(format!("variable {v:?} declared in two sections")));
            }
        }
        for v in &outputs {
            if locals.contains(v) {
                return Err(self.err(format!("variable {v:?} declared in two sections")));
            }
        }
        self.expect(Tok::Begin, "`begin`")?;
        let body = self.stmts()?;
        self.expect(Tok::End, "`end`")?;
        Ok(Program {
            name,
            inputs,
            outputs,
            locals,
            body,
            decl_pos,
        })
    }

    /// Statements until a block terminator (`end` / `else` / EOF).
    fn stmts(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Tok::End | Tok::Else | Tok::Eof => return Ok(out),
                _ => out.push(self.stmt()?),
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let r = self.stmt_inner();
        self.leave();
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Ident(var) => {
                self.bump();
                match self.peek() {
                    Tok::Assign => {
                        self.bump();
                        let expr = self.expr()?;
                        Ok(Stmt::Assign { var, expr, pos })
                    }
                    Tok::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket, "`]`")?;
                        self.expect(Tok::Assign, "`:=`")?;
                        let expr = self.expr()?;
                        Ok(Stmt::AssignIndex {
                            var,
                            index,
                            expr,
                            pos,
                        })
                    }
                    _ => Err(self.err("expected `:=` or `[` after variable")),
                }
            }
            Tok::If => {
                self.bump();
                let cond = self.expr()?;
                self.expect(Tok::Then, "`then`")?;
                let then_body = self.stmts()?;
                let else_body = if *self.peek() == Tok::Else {
                    self.bump();
                    self.stmts()?
                } else {
                    Vec::new()
                };
                self.expect(Tok::End, "`end`")?;
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    pos,
                })
            }
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(Tok::Do, "`do`")?;
                let body = self.stmts()?;
                self.expect(Tok::End, "`end`")?;
                Ok(Stmt::While { cond, body, pos })
            }
            Tok::For => {
                self.bump();
                let var = self.ident("loop variable")?;
                self.expect(Tok::Assign, "`:=`")?;
                let from = self.expr()?;
                self.expect(Tok::To, "`to`")?;
                let to = self.expr()?;
                self.expect(Tok::Do, "`do`")?;
                let body = self.stmts()?;
                self.expect(Tok::End, "`end`")?;
                Ok(Stmt::For {
                    var,
                    from,
                    to,
                    body,
                    pos,
                })
            }
            Tok::Print => {
                self.bump();
                Ok(Stmt::Print {
                    expr: self.expr()?,
                    pos,
                })
            }
            other => Err(self.err(format!("expected a statement, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.expr_inner();
        self.leave();
        r
    }

    fn expr_inner(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.orterm()?;
        while *self.peek() == Tok::Or {
            self.bump();
            let rhs = self.orterm()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn orterm(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.andterm()?;
        while *self.peek() == Tok::And {
            self.bump();
            let rhs = self.andterm()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn andterm(&mut self) -> Result<Expr, ParseError> {
        if *self.peek() == Tok::Not {
            self.enter()?; // `not not ...` chains recurse here
            self.bump();
            let inner = self.andterm();
            self.leave();
            return Ok(Expr::Un(UnOp::Not, Box::new(inner?)));
        }
        self.cmp()
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.sum()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.sum()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn sum(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.prod()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.prod()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn prod(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if *self.peek() == Tok::Minus {
            self.enter()?; // `- - - x` chains recurse here
            self.bump();
            let inner = self.unary();
            self.leave();
            return Ok(Expr::Un(UnOp::Neg, Box::new(inner?)));
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr, ParseError> {
        let base = self.primary()?;
        if *self.peek() == Tok::Caret {
            self.bump();
            // right-associative: 2^3^2 = 2^(3^2)
            let exp = self.unary()?;
            return Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Num(v) => {
                self.bump();
                Ok(Expr::Num(v))
            }
            Tok::Ident(name) => {
                self.bump();
                match self.peek() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if *self.peek() != Tok::RParen {
                            loop {
                                args.push(self.expr()?);
                                if *self.peek() == Tok::Comma {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RParen, "`)`")?;
                        Ok(Expr::Call(name, args))
                    }
                    Tok::LBracket => {
                        self.bump();
                        let idx = self.expr()?;
                        self.expect(Tok::RBracket, "`]`")?;
                        Ok(Expr::Index(name, Box::new(idx)))
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Stmt, UnOp};

    /// The paper's Figure 4 program.
    pub const SQRT_SRC: &str = "\
task SquareRoot
  in a
  out x
  local g, prev
begin
  g := a / 2
  prev := 0
  while abs(g - prev) > 1e-12 do
    prev := g
    g := (g + a / g) / 2
  end
  x := g
end";

    #[test]
    fn parses_figure4_squareroot() {
        let p = parse_program(SQRT_SRC).unwrap();
        assert_eq!(p.name, "SquareRoot");
        assert_eq!(p.inputs, vec!["a"]);
        assert_eq!(p.outputs, vec!["x"]);
        assert_eq!(p.locals, vec!["g", "prev"]);
        assert_eq!(p.body.len(), 4);
        assert!(matches!(p.body[2], Stmt::While { .. }));
    }

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Num(1.0)),
                Box::new(Expr::Bin(
                    BinOp::Mul,
                    Box::new(Expr::Num(2.0)),
                    Box::new(Expr::Num(3.0))
                ))
            )
        );
    }

    #[test]
    fn power_right_associative() {
        let e = parse_expr("2 ^ 3 ^ 2").unwrap();
        // 2 ^ (3 ^ 2)
        match e {
            Expr::Bin(BinOp::Pow, lhs, rhs) => {
                assert_eq!(*lhs, Expr::Num(2.0));
                assert!(matches!(*rhs, Expr::Bin(BinOp::Pow, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_binds_tighter_than_sub() {
        let e = parse_expr("-a - b").unwrap();
        match e {
            Expr::Bin(BinOp::Sub, lhs, _) => {
                assert!(matches!(*lhs, Expr::Un(UnOp::Neg, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn logic_precedence() {
        // or < and < not < cmp
        let e = parse_expr("not a = 1 and b or c").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Or, _, _)));
    }

    #[test]
    fn calls_and_indexing() {
        let e = parse_expr("atan2(y, x) + v[i + 1]").unwrap();
        match e {
            Expr::Bin(BinOp::Add, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Call(ref n, ref a) if n == "atan2" && a.len() == 2));
                assert!(matches!(*rhs, Expr::Index(ref n, _) if n == "v"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_call() {
        let e = parse_expr("rand()").unwrap();
        assert!(matches!(e, Expr::Call(ref n, ref a) if n == "rand" && a.is_empty()));
    }

    #[test]
    fn if_else_and_for() {
        let src = "task T in a out b begin \
                   if a > 0 then b := 1 else b := 0 end \
                   for i := 1 to 10 do b := b + i end \
                   end";
        let p = parse_program(src).unwrap();
        assert_eq!(p.body.len(), 2);
        match &p.body[0] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(p.body[1], Stmt::For { .. }));
    }

    #[test]
    fn indexed_assignment() {
        let src = "task T in a out v begin v := zeros(3) v[2] := a * 2 end";
        let p = parse_program(src).unwrap();
        assert!(matches!(p.body[1], Stmt::AssignIndex { .. }));
    }

    #[test]
    fn print_statement() {
        let p = parse_program("task T in a begin print a + 1 end").unwrap();
        assert!(matches!(p.body[0], Stmt::Print { .. }));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        assert!(parse_program("task T in a, a begin end").is_err());
        assert!(parse_program("task T in a out a begin end").is_err());
        assert!(parse_program("task T out x local x begin end").is_err());
    }

    #[test]
    fn error_positions_and_messages() {
        let err = parse_program("task T in a begin a := end").unwrap_err();
        assert!(err.message.contains("expression"), "{err}");
        let err = parse_program("task begin end").unwrap_err();
        assert!(err.message.contains("task name"), "{err}");
        let err = parse_program("task T begin while 1 do end").unwrap_err();
        assert!(err.message.contains("`end`"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_program("task T begin end extra").is_err());
        assert!(parse_expr("1 + 2 3").is_err());
    }

    #[test]
    fn nested_blocks() {
        let src = "task T in n out s local i, j begin \
                   s := 0 \
                   for i := 1 to n do \
                     for j := 1 to i do \
                       if j % 2 = 0 then s := s + j end \
                     end \
                   end \
                   end";
        let p = parse_program(src).unwrap();
        assert_eq!(p.body.len(), 2);
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;

    #[test]
    fn deep_parens_rejected_not_crashed() {
        let src = format!("{}1{}", "(".repeat(5000), ")".repeat(5000));
        let err = parse_expr(&src).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn deep_unary_chains_rejected() {
        let src = format!("{}x", "-".repeat(5000));
        assert!(parse_expr(&src).is_err());
        let src2 = format!("{}x", "not ".repeat(5000));
        assert!(parse_expr(&src2).is_err());
    }

    #[test]
    fn deep_nested_statements_rejected() {
        let mut body = String::new();
        for _ in 0..5000 {
            body.push_str("if 1 then ");
        }
        body.push_str("x := 1 ");
        for _ in 0..5000 {
            body.push_str("end ");
        }
        let src = format!("task T out x begin {body} end");
        assert!(parse_program(&src).is_err());
    }

    #[test]
    fn reasonable_nesting_accepted() {
        let src = format!("{}1 + 2{}", "(".repeat(100), ")".repeat(100));
        assert!(parse_expr(&src).is_ok());
    }
}
