//! The programmable pocket-calculator panel (paper Figure 4), as a
//! headless library.
//!
//! Banger's GUI showed in/out variables top-right, locals top-left, a grid
//! of programming buttons in the middle and the growing program text in
//! the lower window. This module models exactly that interaction: buttons
//! append to an entry line, `=` evaluates it immediately (instant
//! feedback), `STO` stores the result in a register **and** records the
//! assignment as a program line, so pressing buttons literally writes the
//! PITS routine — "users simply do not need to learn and recall arcane
//! syntactic expressions".

use crate::ast::Program;
use crate::error::{ParseError, Pos, RunError};
use crate::interp::eval_expr;
use crate::parser::{parse_expr, parse_program};
use crate::value::Value;
use std::collections::BTreeMap;

/// A calculator button.
#[derive(Debug, Clone, PartialEq)]
pub enum Button {
    /// Digit `0..=9`.
    Digit(u8),
    /// Decimal point.
    Dot,
    /// Binary operator: one of `+ - * / ^ %`.
    Op(char),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// Argument separator `,`.
    Comma,
    /// A function button, e.g. `sin` — appends `sin(`.
    Func(String),
    /// A constant button (`pi`, `e`).
    Const(String),
    /// A variable button (one of the panel's variable windows).
    Var(String),
    /// Clear the entry line.
    Clear,
    /// Delete the last character.
    Backspace,
}

/// Errors surfaced by the panel.
#[derive(Debug, Clone, PartialEq)]
pub enum PanelError {
    /// The entry line does not parse.
    Parse(ParseError),
    /// The entry line failed to evaluate.
    Run(RunError),
    /// Operation requires an active recording (`begin_task` not called).
    NotRecording,
    /// `Button::Op` with a character that is not an operator.
    BadOpButton(char),
}

impl std::fmt::Display for PanelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PanelError::Parse(e) => write!(f, "{e}"),
            PanelError::Run(e) => write!(f, "{e}"),
            PanelError::NotRecording => write!(f, "no task recording in progress"),
            PanelError::BadOpButton(c) => write!(f, "{c:?} is not an operator button"),
        }
    }
}

impl std::error::Error for PanelError {}

/// An in-progress task recording.
#[derive(Debug, Clone, Default)]
struct Recording {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    locals: Vec<String>,
    lines: Vec<String>,
}

/// The calculator panel state.
#[derive(Debug, Clone, Default)]
pub struct Panel {
    entry: String,
    registers: BTreeMap<String, Value>,
    tape: Vec<String>,
    recording: Option<Recording>,
}

impl Panel {
    /// A fresh panel with empty entry and registers.
    pub fn new() -> Self {
        Panel::default()
    }

    /// The current entry line (the calculator display).
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The feedback tape: one line per evaluation, newest last.
    pub fn tape(&self) -> &[String] {
        &self.tape
    }

    /// The panel's variable registers (including `ans`).
    pub fn registers(&self) -> &BTreeMap<String, Value> {
        &self.registers
    }

    /// Sets a register directly (e.g. loading a vector of samples).
    pub fn set_register(&mut self, name: impl Into<String>, v: Value) {
        self.registers.insert(name.into(), v);
    }

    /// Presses one button.
    pub fn press(&mut self, b: Button) -> Result<(), PanelError> {
        match b {
            Button::Digit(d) => {
                self.entry.push((b'0' + d.min(9)) as char);
            }
            Button::Dot => self.entry.push('.'),
            Button::Op(c) => {
                if !matches!(c, '+' | '-' | '*' | '/' | '^' | '%') {
                    return Err(PanelError::BadOpButton(c));
                }
                self.entry.push(' ');
                self.entry.push(c);
                self.entry.push(' ');
            }
            Button::LParen => self.entry.push('('),
            Button::RParen => self.entry.push(')'),
            Button::LBracket => self.entry.push('['),
            Button::RBracket => self.entry.push(']'),
            Button::Comma => self.entry.push_str(", "),
            Button::Func(name) => {
                self.entry.push_str(&name);
                self.entry.push('(');
            }
            Button::Const(name) | Button::Var(name) => self.entry.push_str(&name),
            Button::Clear => self.entry.clear(),
            Button::Backspace => {
                self.entry.pop();
            }
        }
        Ok(())
    }

    /// Presses a sequence of buttons.
    pub fn press_all(
        &mut self,
        buttons: impl IntoIterator<Item = Button>,
    ) -> Result<(), PanelError> {
        for b in buttons {
            self.press(b)?;
        }
        Ok(())
    }

    /// The `=` key: evaluates the entry line against the registers, logs
    /// it to the tape, stores the result in `ans`, clears the entry and
    /// returns the value.
    pub fn equals(&mut self) -> Result<Value, PanelError> {
        let expr = parse_expr(&self.entry).map_err(PanelError::Parse)?;
        let v = eval_expr(&expr, &self.registers).map_err(PanelError::Run)?;
        self.tape.push(format!("{} = {v}", self.entry.trim()));
        self.registers.insert("ans".to_string(), v.clone());
        self.entry.clear();
        Ok(v)
    }

    /// The `STO` key: evaluates the entry line, stores the result in the
    /// named register, and — when a task recording is active — records the
    /// assignment as a program line.
    pub fn store(&mut self, var: &str) -> Result<Value, PanelError> {
        let text = self.entry.trim().to_string();
        let expr = parse_expr(&text).map_err(PanelError::Parse)?;
        let v = eval_expr(&expr, &self.registers).map_err(PanelError::Run)?;
        self.tape.push(format!("{var} := {text}  ({v})"));
        self.registers.insert(var.to_string(), v.clone());
        if let Some(rec) = &mut self.recording {
            rec.lines.push(format!("{var} := {text}"));
        }
        self.entry.clear();
        Ok(v)
    }

    /// Begins recording a task program of the given name.
    pub fn begin_task(&mut self, name: impl Into<String>) {
        self.recording = Some(Recording {
            name: name.into(),
            ..Recording::default()
        });
    }

    /// Declares an `in` variable for the recording and gives it a trial
    /// value in the registers so immediate evaluation works while editing.
    pub fn declare_in(&mut self, name: &str, trial: Value) -> Result<(), PanelError> {
        let rec = self.recording.as_mut().ok_or(PanelError::NotRecording)?;
        rec.inputs.push(name.to_string());
        self.registers.insert(name.to_string(), trial);
        Ok(())
    }

    /// Declares an `out` variable for the recording.
    pub fn declare_out(&mut self, name: &str) -> Result<(), PanelError> {
        let rec = self.recording.as_mut().ok_or(PanelError::NotRecording)?;
        rec.outputs.push(name.to_string());
        Ok(())
    }

    /// Declares a `local` variable for the recording.
    pub fn declare_local(&mut self, name: &str) -> Result<(), PanelError> {
        let rec = self.recording.as_mut().ok_or(PanelError::NotRecording)?;
        rec.locals.push(name.to_string());
        Ok(())
    }

    /// Records a raw program line (the structured-programming buttons:
    /// `if`/`while`/`for`/`end`...).
    pub fn record_line(&mut self, line: &str) -> Result<(), PanelError> {
        let rec = self.recording.as_mut().ok_or(PanelError::NotRecording)?;
        rec.lines.push(line.to_string());
        Ok(())
    }

    /// Finishes the recording, parses the assembled routine and returns
    /// the [`Program`] together with its canonical source text.
    pub fn finish_task(&mut self) -> Result<(Program, String), PanelError> {
        let rec = self.recording.take().ok_or(PanelError::NotRecording)?;
        let mut src = format!("task {}\n", rec.name);
        if !rec.inputs.is_empty() {
            src.push_str(&format!("  in {}\n", rec.inputs.join(", ")));
        }
        if !rec.outputs.is_empty() {
            src.push_str(&format!("  out {}\n", rec.outputs.join(", ")));
        }
        if !rec.locals.is_empty() {
            src.push_str(&format!("  local {}\n", rec.locals.join(", ")));
        }
        src.push_str("begin\n");
        for line in &rec.lines {
            src.push_str("  ");
            src.push_str(line);
            src.push('\n');
        }
        src.push_str("end\n");
        let prog = parse_program(&src).map_err(PanelError::Parse)?;
        Ok((prog, src))
    }

    /// Whether a task recording is in progress.
    pub fn is_recording(&self) -> bool {
        self.recording.is_some()
    }
}

/// Convenience: a [`ParseError`] placeholder position for panel-internal
/// messages.
#[allow(dead_code)]
fn here() -> Pos {
    Pos { line: 1, col: 1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run;

    #[test]
    fn digits_and_ops_evaluate() {
        let mut p = Panel::new();
        p.press_all([
            Button::Digit(1),
            Button::Digit(2),
            Button::Op('+'),
            Button::Digit(3),
            Button::Op('*'),
            Button::Digit(4),
        ])
        .unwrap();
        assert_eq!(p.entry(), "12 + 3 * 4");
        let v = p.equals().unwrap();
        assert_eq!(v, Value::Num(24.0));
        assert_eq!(p.entry(), "");
        assert_eq!(p.tape().len(), 1);
        assert!(p.tape()[0].contains("= 24"));
    }

    #[test]
    fn ans_register_chains() {
        let mut p = Panel::new();
        p.press_all([Button::Digit(5), Button::Op('*'), Button::Digit(5)])
            .unwrap();
        p.equals().unwrap();
        p.press_all([Button::Var("ans".into()), Button::Op('+'), Button::Digit(1)])
            .unwrap();
        assert_eq!(p.equals().unwrap(), Value::Num(26.0));
    }

    #[test]
    fn function_and_const_buttons() {
        let mut p = Panel::new();
        p.press_all([
            Button::Func("cos".into()),
            Button::Const("pi".into()),
            Button::RParen,
        ])
        .unwrap();
        assert_eq!(p.entry(), "cos(pi)");
        assert_eq!(p.equals().unwrap(), Value::Num(-1.0));
    }

    #[test]
    fn backspace_and_clear() {
        let mut p = Panel::new();
        p.press_all([Button::Digit(7), Button::Digit(8)]).unwrap();
        p.press(Button::Backspace).unwrap();
        assert_eq!(p.entry(), "7");
        p.press(Button::Clear).unwrap();
        assert_eq!(p.entry(), "");
    }

    #[test]
    fn bad_op_button_rejected() {
        let mut p = Panel::new();
        assert_eq!(p.press(Button::Op('&')), Err(PanelError::BadOpButton('&')));
    }

    #[test]
    fn parse_error_reported() {
        let mut p = Panel::new();
        p.press_all([Button::Digit(1), Button::Op('+')]).unwrap();
        assert!(matches!(p.equals(), Err(PanelError::Parse(_))));
    }

    #[test]
    fn run_error_reported() {
        let mut p = Panel::new();
        p.press(Button::Var("nosuch".into())).unwrap();
        assert!(matches!(p.equals(), Err(PanelError::Run(_))));
    }

    #[test]
    fn record_a_task_by_button_presses() {
        // Build the Figure 4 SquareRoot routine interactively.
        let mut p = Panel::new();
        p.begin_task("SquareRoot");
        p.declare_in("a", Value::Num(9.0)).unwrap();
        p.declare_out("x").unwrap();
        p.declare_local("g").unwrap();
        p.declare_local("prev").unwrap();

        // g := a / 2   — entered via buttons, evaluated instantly (4.5).
        p.press_all([Button::Var("a".into()), Button::Op('/'), Button::Digit(2)])
            .unwrap();
        let v = p.store("g").unwrap();
        assert_eq!(v, Value::Num(4.5));

        p.press(Button::Digit(0)).unwrap();
        p.store("prev").unwrap();

        // Structured-programming buttons record raw lines.
        p.record_line("while abs(g - prev) > 1e-12 do").unwrap();
        p.record_line("prev := g").unwrap();
        p.record_line("g := (g + a / g) / 2").unwrap();
        p.record_line("end").unwrap();
        p.record_line("x := g").unwrap();

        let (prog, src) = p.finish_task().unwrap();
        assert!(src.contains("task SquareRoot"));
        assert_eq!(prog.inputs, vec!["a"]);
        // The recorded program really computes square roots.
        let out = run(
            &prog,
            &[("a".to_string(), Value::Num(49.0))].into_iter().collect(),
        )
        .unwrap();
        assert!((out.outputs["x"].as_num("x").unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn recording_required_for_declares() {
        let mut p = Panel::new();
        assert_eq!(p.declare_out("x"), Err(PanelError::NotRecording));
        assert_eq!(p.record_line("x := 1"), Err(PanelError::NotRecording));
        assert!(matches!(p.finish_task(), Err(PanelError::NotRecording)));
        assert!(!p.is_recording());
    }

    #[test]
    fn registers_accessible() {
        let mut p = Panel::new();
        p.set_register("v", Value::array(vec![1.0, 2.0, 3.0]));
        p.press_all([
            Button::Func("sum".into()),
            Button::Var("v".into()),
            Button::RParen,
        ])
        .unwrap();
        assert_eq!(p.equals().unwrap(), Value::Num(6.0));
        assert!(p.registers().contains_key("ans"));
    }
}
