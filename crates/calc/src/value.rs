//! Runtime values of the PITS language: scalars and flat numeric arrays.
//!
//! Arrays let PITS tasks pass vectors and (row-major, manually indexed)
//! matrices along dataflow arcs — the LU example ships whole columns this
//! way. Indexing is 1-based, matching calculator and Fortran conventions
//! familiar to the paper's scientific audience.
//!
//! ## Copy-on-write arrays
//!
//! `Value::Array` holds its buffer behind an [`Arc`]: cloning a value —
//! publishing a task's outputs, fanning an array out to N consumer
//! edges, binding a VM input register, `M := A` inside a task body — is
//! a reference-count bump, never an O(len) copy. The buffer is copied
//! *only* when a write (`M[i] := x`) hits a shared value, via
//! [`Value::as_array_mut`] / `Arc::make_mut`; a value holding the sole
//! reference mutates in place. Observable semantics are identical to a
//! deep-copying representation: mutation through one binding is never
//! visible through another, and — because the interpreter's op counter
//! ticks on *operations*, never on value movement — a CoW copy does not
//! tick, so measured task weights (`Outcome::ops`) are byte-for-byte
//! unchanged (see DESIGN.md §10 and `tests/prop_cow.rs`).

use crate::error::RunError;
use std::fmt;
use std::sync::Arc;

/// Thread-local copy-on-write counters.
///
/// Every CoW write gate (the three `Arc::make_mut` sites: interpreter
/// `AssignIndex`, VM `IndexSet`, and [`Value::as_array_mut`]) notes a
/// copy here when — and only when — the write actually duplicated a
/// shared buffer. The counters are cumulative per thread; the traced
/// executor reads deltas around each task body to attribute copies to
/// tasks. Counting never touches `Outcome` — measured weights stay
/// byte-identical whether anyone reads these or not.
pub mod cow {
    use std::cell::Cell;

    thread_local! {
        static COPIES: Cell<u64> = const { Cell::new(0) };
        static ELEMS: Cell<u64> = const { Cell::new(0) };
    }

    /// Cumulative `(buffer copies, f64 elements copied)` on the calling
    /// thread since it started.
    pub fn counters() -> (u64, u64) {
        (COPIES.with(Cell::get), ELEMS.with(Cell::get))
    }

    pub(crate) fn note(elems: usize) {
        COPIES.with(|c| c.set(c.get() + 1));
        ELEMS.with(|c| c.set(c.get() + elems as u64));
    }
}

/// The shared write gate: clones the buffer iff it is aliased (exactly
/// `Arc::make_mut`), recording the copy in [`cow`] when one happens.
pub(crate) fn make_mut_counted(a: &mut Arc<Vec<f64>>) -> &mut Vec<f64> {
    if Arc::strong_count(a) > 1 {
        cow::note(a.len());
    }
    Arc::make_mut(a)
}

/// A PITS runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar.
    Num(f64),
    /// A flat numeric array (1-based indexing at the language level),
    /// shared copy-on-write: `clone` bumps a refcount, writes copy only
    /// when the buffer is aliased.
    Array(Arc<Vec<f64>>),
}

impl Value {
    /// Wraps a buffer as an array value (the only allocation an array
    /// value ever needs; every subsequent clone is a refcount bump).
    pub fn array(v: Vec<f64>) -> Self {
        Value::Array(Arc::new(v))
    }

    /// The scalar inside, or an error naming `what` for diagnostics.
    pub fn as_num(&self, what: &str) -> Result<f64, RunError> {
        match self {
            Value::Num(v) => Ok(*v),
            Value::Array(_) => Err(RunError::NotAScalar(what.to_string())),
        }
    }

    /// The array inside, or an error naming `what`.
    pub fn as_array(&self, what: &str) -> Result<&[f64], RunError> {
        match self {
            Value::Array(v) => Ok(v),
            Value::Num(_) => Err(RunError::NotAnArray(what.to_string())),
        }
    }

    /// Mutable access to the array buffer, copying it first iff it is
    /// shared with another binding (`Arc::make_mut`). This is the single
    /// write gate that keeps aliased values semantically independent; the
    /// copy, when it happens, does **not** tick the op counter.
    pub fn as_array_mut(&mut self, what: &str) -> Result<&mut Vec<f64>, RunError> {
        match self {
            Value::Array(v) => Ok(make_mut_counted(v)),
            Value::Num(_) => Err(RunError::NotAnArray(what.to_string())),
        }
    }

    /// True when `self` and `other` are arrays sharing one buffer — a
    /// zero-copy witness for tests and benchmarks (scalars, and arrays
    /// that have diverged through copy-on-write, return false).
    pub fn shares_buffer(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Array(a), Value::Array(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Truthiness: a scalar is true iff non-zero; arrays are not booleans.
    pub fn truthy(&self, what: &str) -> Result<bool, RunError> {
        Ok(self.as_num(what)? != 0.0)
    }

    /// Abstract size in "data units" — 1 for a scalar, `len` for an array.
    /// Used to estimate communication volumes from trial runs.
    pub fn volume(&self) -> f64 {
        match self {
            Value::Num(_) => 1.0,
            Value::Array(v) => v.len() as f64,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(v) => write!(f, "{v}"),
            Value::Array(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::array(v)
    }
}

/// Converts a calculator index expression result to a 1-based array
/// offset, checking range.
pub fn to_index(raw: f64, var: &str, len: usize) -> Result<usize, RunError> {
    let idx = raw.round() as i64;
    if idx < 1 || idx as usize > len {
        return Err(RunError::IndexOutOfRange {
            var: var.to_string(),
            index: idx,
            len,
        });
    }
    Ok(idx as usize - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors() {
        let v = Value::Num(2.5);
        assert_eq!(v.as_num("x").unwrap(), 2.5);
        assert!(v.as_array("x").is_err());
        assert!(v.truthy("x").unwrap());
        assert!(!Value::Num(0.0).truthy("x").unwrap());
        assert_eq!(v.volume(), 1.0);
    }

    #[test]
    fn array_accessors() {
        let v = Value::array(vec![1.0, 2.0]);
        assert_eq!(v.as_array("v").unwrap(), &[1.0, 2.0]);
        assert!(v.as_num("v").is_err());
        assert!(v.truthy("v").is_err());
        assert_eq!(v.volume(), 2.0);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Num(3.0).to_string(), "3");
        assert_eq!(Value::array(vec![1.0, 2.5]).to_string(), "[1, 2.5]");
    }

    #[test]
    fn clone_is_shared_until_written() {
        let a = Value::array(vec![1.0, 2.0, 3.0]);
        let mut b = a.clone();
        assert!(a.shares_buffer(&b), "clone must not copy the buffer");
        b.as_array_mut("b").unwrap()[0] = 9.0;
        assert!(!a.shares_buffer(&b), "write must unshare");
        assert_eq!(a.as_array("a").unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(b.as_array("b").unwrap(), &[9.0, 2.0, 3.0]);
    }

    #[test]
    fn sole_owner_mutates_in_place() {
        let mut a = Value::array(vec![1.0, 2.0]);
        let before = match &a {
            Value::Array(v) => Arc::as_ptr(v),
            _ => unreachable!(),
        };
        a.as_array_mut("a").unwrap()[1] = 7.0;
        let after = match &a {
            Value::Array(v) => Arc::as_ptr(v),
            _ => unreachable!(),
        };
        assert_eq!(before, after, "unshared write must not reallocate");
        assert_eq!(a.as_array("a").unwrap(), &[1.0, 7.0]);
    }

    #[test]
    fn as_array_mut_rejects_scalars() {
        let mut v = Value::Num(1.0);
        assert_eq!(
            v.as_array_mut("v"),
            Err(RunError::NotAnArray("v".to_string()))
        );
        assert!(!Value::Num(1.0).shares_buffer(&Value::Num(1.0)));
    }

    #[test]
    fn index_conversion() {
        assert_eq!(to_index(1.0, "v", 3).unwrap(), 0);
        assert_eq!(to_index(3.0, "v", 3).unwrap(), 2);
        assert_eq!(to_index(2.4, "v", 3).unwrap(), 1); // rounds
        assert!(to_index(0.0, "v", 3).is_err());
        assert!(to_index(4.0, "v", 3).is_err());
        assert!(to_index(-1.0, "v", 3).is_err());
    }
}
