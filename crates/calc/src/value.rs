//! Runtime values of the PITS language: scalars and flat numeric arrays.
//!
//! Arrays let PITS tasks pass vectors and (row-major, manually indexed)
//! matrices along dataflow arcs — the LU example ships whole columns this
//! way. Indexing is 1-based, matching calculator and Fortran conventions
//! familiar to the paper's scientific audience.

use crate::error::RunError;
use std::fmt;

/// A PITS runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar.
    Num(f64),
    /// A flat numeric array (1-based indexing at the language level).
    Array(Vec<f64>),
}

impl Value {
    /// The scalar inside, or an error naming `what` for diagnostics.
    pub fn as_num(&self, what: &str) -> Result<f64, RunError> {
        match self {
            Value::Num(v) => Ok(*v),
            Value::Array(_) => Err(RunError::NotAScalar(what.to_string())),
        }
    }

    /// The array inside, or an error naming `what`.
    pub fn as_array(&self, what: &str) -> Result<&[f64], RunError> {
        match self {
            Value::Array(v) => Ok(v),
            Value::Num(_) => Err(RunError::NotAnArray(what.to_string())),
        }
    }

    /// Truthiness: a scalar is true iff non-zero; arrays are not booleans.
    pub fn truthy(&self, what: &str) -> Result<bool, RunError> {
        Ok(self.as_num(what)? != 0.0)
    }

    /// Abstract size in "data units" — 1 for a scalar, `len` for an array.
    /// Used to estimate communication volumes from trial runs.
    pub fn volume(&self) -> f64 {
        match self {
            Value::Num(_) => 1.0,
            Value::Array(v) => v.len() as f64,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(v) => write!(f, "{v}"),
            Value::Array(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::Array(v)
    }
}

/// Converts a calculator index expression result to a 1-based array
/// offset, checking range.
pub fn to_index(raw: f64, var: &str, len: usize) -> Result<usize, RunError> {
    let idx = raw.round() as i64;
    if idx < 1 || idx as usize > len {
        return Err(RunError::IndexOutOfRange {
            var: var.to_string(),
            index: idx,
            len,
        });
    }
    Ok(idx as usize - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors() {
        let v = Value::Num(2.5);
        assert_eq!(v.as_num("x").unwrap(), 2.5);
        assert!(v.as_array("x").is_err());
        assert!(v.truthy("x").unwrap());
        assert!(!Value::Num(0.0).truthy("x").unwrap());
        assert_eq!(v.volume(), 1.0);
    }

    #[test]
    fn array_accessors() {
        let v = Value::Array(vec![1.0, 2.0]);
        assert_eq!(v.as_array("v").unwrap(), &[1.0, 2.0]);
        assert!(v.as_num("v").is_err());
        assert!(v.truthy("v").is_err());
        assert_eq!(v.volume(), 2.0);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Num(3.0).to_string(), "3");
        assert_eq!(Value::Array(vec![1.0, 2.5]).to_string(), "[1, 2.5]");
    }

    #[test]
    fn index_conversion() {
        assert_eq!(to_index(1.0, "v", 3).unwrap(), 0);
        assert_eq!(to_index(3.0, "v", 3).unwrap(), 2);
        assert_eq!(to_index(2.4, "v", 3).unwrap(), 1); // rounds
        assert!(to_index(0.0, "v", 3).is_err());
        assert!(to_index(4.0, "v", 3).is_err());
        assert!(to_index(-1.0, "v", 3).is_err());
    }
}
