//! Lexer for the PITS calculator language.
//!
//! The surface syntax is the "simplified programming language" shown in
//! the lower window of the paper's Figure 4 calculator panel: keyword
//! blocks (`task`/`begin`/`end`, `if`/`then`/`else`, `while`/`do`,
//! `for`/`to`), `:=` assignment, numeric literals, identifiers and the
//! usual operator set.

use crate::error::{ParseError, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Numeric literal.
    Num(f64),
    /// Identifier (variable or function name).
    Ident(String),
    /// `task`
    Task,
    /// `in`
    In,
    /// `out`
    Out,
    /// `local`
    Local,
    /// `begin`
    Begin,
    /// `end`
    End,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `while`
    While,
    /// `do`
    Do,
    /// `for`
    For,
    /// `to`
    To,
    /// `print`
    Print,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `:=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `%` (modulo)
    Percent,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Lexes a complete source text.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let keyword = |s: &str| -> Option<Tok> {
        Some(match s {
            "task" => Tok::Task,
            "in" => Tok::In,
            "out" => Tok::Out,
            "local" => Tok::Local,
            "begin" => Tok::Begin,
            "end" => Tok::End,
            "if" => Tok::If,
            "then" => Tok::Then,
            "else" => Tok::Else,
            "while" => Tok::While,
            "do" => Tok::Do,
            "for" => Tok::For,
            "to" => Tok::To,
            "print" => Tok::Print,
            "and" => Tok::And,
            "or" => Tok::Or,
            "not" => Tok::Not,
            _ => return None,
        })
    };

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        let advance = |i: &mut usize, col: &mut u32| {
            *i += 1;
            *col += 1;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => advance(&mut i, &mut col),
            '#' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while i < bytes.len() {
                    let d = bytes[i];
                    if d.is_ascii_digit() {
                        advance(&mut i, &mut col);
                    } else if d == '.' && !seen_dot && !seen_exp {
                        seen_dot = true;
                        advance(&mut i, &mut col);
                    } else if (d == 'e' || d == 'E')
                        && !seen_exp
                        && i + 1 < bytes.len()
                        && (bytes[i + 1].is_ascii_digit()
                            || ((bytes[i + 1] == '+' || bytes[i + 1] == '-')
                                && i + 2 < bytes.len()
                                && bytes[i + 2].is_ascii_digit()))
                    {
                        seen_exp = true;
                        advance(&mut i, &mut col);
                        if bytes[i] == '+' || bytes[i] == '-' {
                            advance(&mut i, &mut col);
                        }
                    } else {
                        break;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                let value: f64 = text.parse().map_err(|_| ParseError {
                    pos,
                    message: format!("bad number literal {text:?}"),
                })?;
                out.push(Spanned {
                    tok: Tok::Num(value),
                    pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    advance(&mut i, &mut col);
                }
                let word: String = bytes[start..i].iter().collect();
                let tok = keyword(&word).unwrap_or(Tok::Ident(word));
                out.push(Spanned { tok, pos });
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    advance(&mut i, &mut col);
                    advance(&mut i, &mut col);
                    out.push(Spanned {
                        tok: Tok::Assign,
                        pos,
                    });
                } else {
                    return Err(ParseError {
                        pos,
                        message: "expected `:=`".into(),
                    });
                }
            }
            '<' => {
                advance(&mut i, &mut col);
                let tok = if i < bytes.len() && bytes[i] == '=' {
                    advance(&mut i, &mut col);
                    Tok::Le
                } else if i < bytes.len() && bytes[i] == '>' {
                    advance(&mut i, &mut col);
                    Tok::Ne
                } else {
                    Tok::Lt
                };
                out.push(Spanned { tok, pos });
            }
            '>' => {
                advance(&mut i, &mut col);
                let tok = if i < bytes.len() && bytes[i] == '=' {
                    advance(&mut i, &mut col);
                    Tok::Ge
                } else {
                    Tok::Gt
                };
                out.push(Spanned { tok, pos });
            }
            '=' => {
                advance(&mut i, &mut col);
                out.push(Spanned { tok: Tok::Eq, pos });
            }
            '+' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::Plus,
                    pos,
                });
            }
            '-' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::Minus,
                    pos,
                });
            }
            '*' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::Star,
                    pos,
                });
            }
            '/' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::Slash,
                    pos,
                });
            }
            '^' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::Caret,
                    pos,
                });
            }
            '%' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::Percent,
                    pos,
                });
            }
            '(' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::LParen,
                    pos,
                });
            }
            ')' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::RParen,
                    pos,
                });
            }
            '[' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::LBracket,
                    pos,
                });
            }
            ']' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::RBracket,
                    pos,
                });
            }
            ',' => {
                advance(&mut i, &mut col);
                out.push(Spanned {
                    tok: Tok::Comma,
                    pos,
                });
            }
            other => {
                return Err(ParseError {
                    pos,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("task Sqrt in a out x"),
            vec![
                Tok::Task,
                Tok::Ident("Sqrt".into()),
                Tok::In,
                Tok::Ident("a".into()),
                Tok::Out,
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Num(42.0), Tok::Eof]);
        assert_eq!(toks("3.5"), vec![Tok::Num(3.5), Tok::Eof]);
        assert_eq!(toks("1e-3"), vec![Tok::Num(0.001), Tok::Eof]);
        assert_eq!(toks("2.5E2"), vec![Tok::Num(250.0), Tok::Eof]);
        assert_eq!(toks(".5"), vec![Tok::Num(0.5), Tok::Eof]);
    }

    #[test]
    fn number_followed_by_ident() {
        // `2e` is a number 2 followed by identifier e (no exponent digits)
        assert_eq!(
            toks("2e"),
            vec![Tok::Num(2.0), Tok::Ident("e".into()), Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("x := a + b * c - d / e ^ f % g"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("a".into()),
                Tok::Plus,
                Tok::Ident("b".into()),
                Tok::Star,
                Tok::Ident("c".into()),
                Tok::Minus,
                Tok::Ident("d".into()),
                Tok::Slash,
                Tok::Ident("e".into()),
                Tok::Caret,
                Tok::Ident("f".into()),
                Tok::Percent,
                Tok::Ident("g".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            toks("= <> < <= > >="),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a # this is a comment\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bare_colon_is_error() {
        let err = lex("a : b").unwrap_err();
        assert!(err.message.contains(":="));
        assert_eq!(err.pos.col, 3);
    }

    #[test]
    fn unknown_char_is_error() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn brackets_and_commas() {
        assert_eq!(
            toks("f(a, b[1])"),
            vec![
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::LBracket,
                Tok::Num(1.0),
                Tok::RBracket,
                Tok::RParen,
                Tok::Eof
            ]
        );
    }
}
