//! Error types for the PITS calculator language.

use std::fmt;

/// A source position (1-based line and column), carried by every
/// compile-time diagnostic so the calculator panel can highlight it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Compile-time errors: lexing and parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Where the problem was found.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Runtime errors raised by the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A variable was read before being assigned.
    Undefined(String),
    /// A variable declared `in` was not supplied by the caller.
    MissingInput(String),
    /// Indexing a scalar, or calling array builtins on scalars.
    NotAnArray(String),
    /// Array index out of range.
    IndexOutOfRange {
        /// Variable being indexed.
        var: String,
        /// The (rounded) index used.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// Wrong number of arguments to a builtin.
    BadArity {
        /// Builtin name.
        name: String,
        /// Arguments expected.
        expected: usize,
        /// Arguments given.
        got: usize,
    },
    /// Call of a name that is not a builtin function.
    UnknownFunction(String),
    /// The step budget was exhausted (runaway loop protection for
    /// Banger's "trial run" feature).
    StepLimit(u64),
    /// An array was used where a scalar is required (e.g. `while` guard).
    NotAScalar(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Undefined(v) => write!(f, "variable {v:?} used before assignment"),
            RunError::MissingInput(v) => write!(f, "input variable {v:?} was not supplied"),
            RunError::NotAnArray(v) => write!(f, "{v:?} is not an array"),
            RunError::IndexOutOfRange { var, index, len } => {
                write!(f, "index {index} out of range for {var:?} (length {len})")
            }
            RunError::BadArity {
                name,
                expected,
                got,
            } => write!(f, "{name}() expects {expected} argument(s), got {got}"),
            RunError::UnknownFunction(n) => write!(f, "unknown function {n:?}"),
            RunError::StepLimit(n) => write!(f, "step limit of {n} exceeded (runaway loop?)"),
            RunError::NotAScalar(what) => write!(f, "{what} must be a scalar"),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let p = ParseError {
            pos: Pos { line: 3, col: 7 },
            message: "expected `:=`".into(),
        };
        assert_eq!(p.to_string(), "parse error at 3:7: expected `:=`");
        assert!(RunError::Undefined("x".into())
            .to_string()
            .contains("\"x\""));
        assert!(RunError::StepLimit(10).to_string().contains("10"));
        assert!(RunError::BadArity {
            name: "atan2".into(),
            expected: 2,
            got: 1
        }
        .to_string()
        .contains("expects 2"));
    }
}
