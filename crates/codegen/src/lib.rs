#![warn(missing_docs)]

//! # banger-codegen — automatic code generation
//!
//! The paper closes with: *"Banger does not currently support automatic
//! code generation. A number of program generators for a variety of
//! systems are under development."* This crate implements that future
//! work:
//!
//! * [`rustgen`] — emits a **self-contained Rust program** (no external
//!   crates): one OS thread per schedule processor, `std::sync::mpsc`
//!   channels for every dataflow arc, and each PITS task body translated
//!   into Rust over a tiny embedded `Value` runtime. The output compiles
//!   with a bare `rustc` and prints the design's output ports.
//! * [`cgen`] — emits an **MPI-style C program** (rank-per-processor
//!   `switch`, `MPI_Send`/`MPI_Recv` pairs per arc) for the
//!   message-passing machines the paper targeted.
//!
//! Both generators consume a flattened design, its program library, the
//! schedule that maps tasks to processors, and concrete input-port values.

pub mod cgen;
pub mod rustgen;

pub use cgen::generate_c;
pub use rustgen::generate_rust;

use banger_calc::Value;
use std::fmt;

/// Errors from code generation.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// A task has no program attached.
    NoProgram(String),
    /// A program name is missing from the library.
    UnknownProgram(String),
    /// The schedule does not place a task.
    Unscheduled(String),
    /// An input port has no supplied value.
    MissingInput(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::NoProgram(t) => write!(f, "task {t:?} has no program"),
            CodegenError::UnknownProgram(p) => write!(f, "program {p:?} not in library"),
            CodegenError::Unscheduled(t) => write!(f, "task {t:?} is not scheduled"),
            CodegenError::MissingInput(v) => write!(f, "no value supplied for input port {v:?}"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// Renders a [`Value`] as a Rust literal over the generated runtime.
pub(crate) fn rust_value_literal(v: &Value) -> String {
    match v {
        Value::Num(n) => format!("Value::Num({n:?}f64)"),
        Value::Array(a) => {
            let items: Vec<String> = a.iter().map(|x| format!("{x:?}f64")).collect();
            format!("Value::Array(vec![{}])", items.join(", "))
        }
    }
}
