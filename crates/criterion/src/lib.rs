//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! vendors the subset of the criterion 0.5 API the workspace's benches use:
//! `Criterion::bench_function`, `benchmark_group` + `bench_with_input`,
//! `BenchmarkId::{new, from_parameter}`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Behavior mirrors upstream's two modes:
//! - Under `cargo bench`, cargo passes `--bench` and each benchmark is timed
//!   (short adaptive warmup, then enough iterations for a stable mean) and a
//!   `name  time: [...]` line is printed.
//! - Under `cargo test` (no `--bench` flag) every benchmark closure runs its
//!   body exactly once as a smoke test, so tier-1 stays fast.
//!
//! There is no statistical analysis, plotting, or baseline comparison; the
//! printed mean is a plain arithmetic mean of wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    test_mode: bool,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warmup + calibration: time a single call to pick an iteration count
        // targeting ~120ms of measurement, clamped to [10, 1e6].
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(120);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(10, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = t1.elapsed();
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--bench` when invoked as `cargo bench`; its absence
        // means we are running under `cargo test` and should only smoke-test.
        let bench = std::env::args().any(|a| a == "--bench");
        Criterion { test_mode: !bench }
    }
}

impl Criterion {
    /// Upstream-compatible no-op: configuration comes from `Default`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn run_one(&self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            test_mode: self.test_mode,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        if !self.test_mode {
            println!(
                "{name:<56} time: {:>12.1} ns/iter ({} iters)",
                b.mean_ns, b.iters
            );
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run_one(name.as_ref(), &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.c.run_one(&full, &mut |b| f(b, input));
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.run_one(&full, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut count = 0u32;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("MH", "gauss-8");
        assert_eq!(id.id, "MH/gauss-8");
        let id = BenchmarkId::from_parameter(64);
        assert_eq!(id.id, "64");
    }
}
