#![warn(missing_docs)]

//! # banger-trace — what the executor *actually did*
//!
//! The scheduler predicts a timeline; the simulator refines the
//! prediction; this crate records reality. When
//! `ExecOptions::trace` is on, both executor modes (greedy and pinned)
//! append [`TraceEvent`]s to per-worker buffers — task start/finish with
//! worker id, measured ops, copy-on-write copy counts, bytes gathered
//! per input arc, queue/dependency wait intervals, and error events —
//! and the merged, time-sorted stream becomes a [`Trace`].
//!
//! A trace has three consumers:
//!
//! 1. **Observed Gantt + drift.** [`Trace::observed_schedule`] replays
//!    the events as a [`Schedule`] in wall-clock seconds so the existing
//!    Gantt renderer draws what happened, and [`DriftReport`] joins the
//!    observation against a predicted timeline (the schedule itself, or
//!    the simulator's message-accurate replay of it) to show per-task
//!    start/finish drift and the makespan error.
//! 2. **Chrome trace export.** [`Trace::chrome_json`] emits the Trace
//!    Event Format JSON that `chrome://tracing` and Perfetto load
//!    directly (`banger run <file> --trace out.json`).
//! 3. **Aggregate counters.** [`Trace::summary`] reduces the stream to
//!    tasks/s, worker utilization, total queue wait, CoW copies and
//!    bytes moved — printed by the CLI and recorded by `bench_exec`.
//!
//! The overhead contract: with tracing off the executor does no trace
//! work at all (no timestamps beyond the ones it always took, no
//! allocation, no atomics); with tracing on the cost is two buffer
//! pushes and one thread-local counter read per task — negligible
//! against large-grain task bodies. DESIGN.md §11 documents the event
//! model and the drift semantics.

use banger_machine::ProcId;
use banger_sched::Schedule;
use banger_taskgraph::TaskId;
use std::fmt::Write as _;
use std::time::Duration;

/// One recorded execution event. Times are offsets from the execution
/// epoch (the moment `execute` started).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A task copy began executing (inputs already gathered).
    TaskStart {
        /// The task.
        task: TaskId,
        /// Worker thread index.
        worker: usize,
        /// Offset from the execution epoch.
        at: Duration,
    },
    /// A task copy finished. Repeats the matching start time so every
    /// finish event is self-contained (consumers need no pairing pass).
    TaskFinish {
        /// The task.
        task: TaskId,
        /// Worker thread index.
        worker: usize,
        /// When this copy started executing.
        start: Duration,
        /// When it finished.
        finish: Duration,
        /// Interpreter operation count (the measured weight).
        ops: u64,
        /// Copy-on-write buffer copies the task body triggered.
        cow_copies: u64,
        /// Bytes those CoW copies moved.
        cow_bytes: u64,
        /// Bytes gathered per input arc, in declaration order:
        /// `(variable, bytes)`.
        bytes_in: Vec<(String, u64)>,
    },
    /// Time a worker spent waiting before a task could run: queue
    /// latency in greedy mode (ready-to-dequeue), dependency wait in
    /// pinned mode (blocked on predecessors publishing).
    QueueWait {
        /// The task that was waited for.
        task: TaskId,
        /// Worker thread index.
        worker: usize,
        /// When the wait began.
        since: Duration,
        /// When the wait ended.
        until: Duration,
    },
    /// A task failed (interpreter error, or a caught worker panic).
    TaskError {
        /// Name of the offending task.
        task: String,
        /// Worker thread index.
        worker: usize,
        /// When the failure surfaced.
        at: Duration,
        /// Human-readable failure description.
        message: String,
    },
    /// The coordinator lost its workers with work still outstanding.
    WorkerLost {
        /// When the loss was detected.
        at: Duration,
        /// What was outstanding.
        detail: String,
    },
    /// Work-stealing dispatch counters one worker accumulated since its
    /// previous flush (a worker may emit several per execution; consumers
    /// sum them). Attributes where the old coordinator queue wait went:
    /// tasks run straight off the private inline stack never queued at
    /// all, and steals mark the handoffs that did cross threads.
    WorkerStats {
        /// Worker thread index.
        worker: usize,
        /// When the counters were flushed.
        at: Duration,
        /// Successful steals from other workers' deques.
        steals: u64,
        /// Tasks executed from the private inline stack (below the
        /// inline threshold; never published to a stealable deque).
        inline_tasks: u64,
    },
}

impl TraceEvent {
    /// The event's primary timestamp, for stream ordering.
    pub fn at(&self) -> Duration {
        match self {
            TraceEvent::TaskStart { at, .. } => *at,
            TraceEvent::TaskFinish { finish, .. } => *finish,
            TraceEvent::QueueWait { until, .. } => *until,
            TraceEvent::TaskError { at, .. } => *at,
            TraceEvent::WorkerLost { at, .. } => *at,
            TraceEvent::WorkerStats { at, .. } => *at,
        }
    }

    /// The worker the event belongs to (coordinator events report 0).
    pub fn worker(&self) -> usize {
        match self {
            TraceEvent::TaskStart { worker, .. }
            | TraceEvent::TaskFinish { worker, .. }
            | TraceEvent::QueueWait { worker, .. }
            | TraceEvent::WorkerStats { worker, .. }
            | TraceEvent::TaskError { worker, .. } => *worker,
            TraceEvent::WorkerLost { .. } => 0,
        }
    }
}

/// One executed task copy, flattened from a [`TraceEvent::TaskFinish`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpan {
    /// The task.
    pub task: TaskId,
    /// Worker thread index.
    pub worker: usize,
    /// Start offset from the execution epoch.
    pub start: Duration,
    /// Finish offset from the execution epoch.
    pub finish: Duration,
    /// Measured operation count.
    pub ops: u64,
}

/// The merged event stream of one traced execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// All events, sorted by [`TraceEvent::at`] then worker.
    pub events: Vec<TraceEvent>,
    /// Worker thread count the execution ran with.
    pub workers: usize,
    /// Total wall-clock time of the execution.
    pub wall: Duration,
}

impl Trace {
    /// Builds a trace from raw per-worker event buffers: merges and
    /// time-sorts them.
    pub fn from_events(mut events: Vec<TraceEvent>, workers: usize, wall: Duration) -> Self {
        events.sort_by(|a, b| a.at().cmp(&b.at()).then(a.worker().cmp(&b.worker())));
        Trace {
            events,
            workers,
            wall,
        }
    }

    /// Every executed task copy, in finish order.
    pub fn spans(&self) -> Vec<TaskSpan> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::TaskFinish {
                    task,
                    worker,
                    start,
                    finish,
                    ops,
                    ..
                } => Some(TaskSpan {
                    task: *task,
                    worker: *worker,
                    start: *start,
                    finish: *finish,
                    ops: *ops,
                }),
                _ => None,
            })
            .collect()
    }

    /// The observed timeline as a [`Schedule`] over `n_tasks` tasks, in
    /// **microseconds** (processor *i* = worker *i*; µs keeps makespans
    /// of realistic large-grain runs in a readable numeric range, and
    /// matches the Chrome export's time unit). The earliest copy of each
    /// task is its primary; later copies (pinned-mode duplicates) are
    /// marked as duplicates, so the existing Gantt renderer draws them
    /// with the duplicate tick.
    pub fn observed_schedule(&self, n_tasks: usize) -> Schedule {
        let mut spans = self.spans();
        spans.sort_by(|a, b| a.start.cmp(&b.start).then(a.task.cmp(&b.task)));
        let mut seen = vec![false; n_tasks];
        let mut s = Schedule::new("observed", n_tasks);
        for sp in spans {
            let primary = !std::mem::replace(&mut seen[sp.task.index()], true);
            s.place(
                sp.task,
                ProcId(sp.worker as u32),
                sp.start.as_secs_f64() * 1e6,
                sp.finish.as_secs_f64() * 1e6,
                primary,
            );
        }
        s
    }

    /// Reduces the stream to aggregate counters.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary {
            workers: self.workers,
            wall: self.wall,
            ..TraceSummary::default()
        };
        for e in &self.events {
            match e {
                TraceEvent::TaskFinish {
                    start,
                    finish,
                    ops,
                    cow_copies,
                    cow_bytes,
                    bytes_in,
                    ..
                } => {
                    s.tasks += 1;
                    s.busy += finish.saturating_sub(*start);
                    s.ops += ops;
                    s.cow_copies += cow_copies;
                    s.cow_bytes += cow_bytes;
                    s.bytes_in += bytes_in.iter().map(|(_, b)| b).sum::<u64>();
                }
                TraceEvent::QueueWait { since, until, .. } => {
                    s.queue_wait += until.saturating_sub(*since);
                }
                TraceEvent::TaskError { .. } | TraceEvent::WorkerLost { .. } => s.errors += 1,
                TraceEvent::WorkerStats {
                    steals,
                    inline_tasks,
                    ..
                } => {
                    s.steals += steals;
                    s.inline_tasks += inline_tasks;
                }
                TraceEvent::TaskStart { .. } => {}
            }
        }
        s
    }

    /// Serialises the trace to Chrome trace-format JSON (the
    /// `traceEvents` object form), loadable in `chrome://tracing` and
    /// Perfetto. `name_of` maps tasks to display names. Timestamps are
    /// microseconds; each worker is one thread row; CoW copies also emit
    /// a cumulative counter track.
    pub fn chrome_json(&self, name_of: impl Fn(TaskId) -> String) -> String {
        let us = |d: &Duration| d.as_secs_f64() * 1e6;
        let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"banger exec\"}}}}"
        );
        for w in 0..self.workers {
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{w},\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            );
        }
        let mut cow_total = 0u64;
        for e in &self.events {
            match e {
                TraceEvent::TaskStart { .. } => {} // the finish span covers it
                TraceEvent::TaskFinish {
                    task,
                    worker,
                    start,
                    finish,
                    ops,
                    cow_copies,
                    cow_bytes,
                    bytes_in,
                } => {
                    let mut args = format!(
                        "\"ops\":{ops},\"cow_copies\":{cow_copies},\"cow_bytes\":{cow_bytes}"
                    );
                    for (var, bytes) in bytes_in {
                        let _ = write!(args, ",\"in {}\":{bytes}", json_escape(var));
                    }
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":0,\
                         \"tid\":{worker},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{{args}}}}}",
                        json_escape(&name_of(*task)),
                        us(start),
                        us(&finish.saturating_sub(*start)),
                    );
                    cow_total += cow_copies;
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"cow_copies\",\"ph\":\"C\",\"pid\":0,\"ts\":{:.3},\
                         \"args\":{{\"copies\":{cow_total}}}}}",
                        us(finish),
                    );
                }
                TraceEvent::QueueWait {
                    task,
                    worker,
                    since,
                    until,
                } => {
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"wait {}\",\"cat\":\"wait\",\"ph\":\"X\",\"pid\":0,\
                         \"tid\":{worker},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{}}}}",
                        json_escape(&name_of(*task)),
                        us(since),
                        us(&until.saturating_sub(*since)),
                    );
                }
                TraceEvent::TaskError {
                    task,
                    worker,
                    at,
                    message,
                } => {
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"error {}\",\"cat\":\"error\",\"ph\":\"i\",\"s\":\"g\",\
                         \"pid\":0,\"tid\":{worker},\"ts\":{:.3},\
                         \"args\":{{\"message\":\"{}\"}}}}",
                        json_escape(task),
                        us(at),
                        json_escape(message),
                    );
                }
                TraceEvent::WorkerLost { at, detail } => {
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"workers lost\",\"cat\":\"error\",\"ph\":\"i\",\"s\":\"g\",\
                         \"pid\":0,\"tid\":0,\"ts\":{:.3},\"args\":{{\"detail\":\"{}\"}}}}",
                        us(at),
                        json_escape(detail),
                    );
                }
                TraceEvent::WorkerStats {
                    worker,
                    at,
                    steals,
                    inline_tasks,
                } => {
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"dispatch\",\"ph\":\"C\",\"pid\":0,\"tid\":{worker},\
                         \"ts\":{:.3},\"args\":{{\"steals\":{steals},\
                         \"inline_tasks\":{inline_tasks}}}}}",
                        us(at),
                    );
                }
            }
        }
        out.push_str("\n]\n}\n");
        out
    }
}

/// Aggregate counters of one traced execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSummary {
    /// Task copies executed.
    pub tasks: usize,
    /// Worker thread count.
    pub workers: usize,
    /// Wall-clock time.
    pub wall: Duration,
    /// Total time workers spent inside task bodies.
    pub busy: Duration,
    /// Total time workers spent waiting (queue latency + dependency
    /// stalls).
    pub queue_wait: Duration,
    /// Total interpreter operations.
    pub ops: u64,
    /// Copy-on-write buffer copies across all tasks.
    pub cow_copies: u64,
    /// Bytes those copies moved.
    pub cow_bytes: u64,
    /// Bytes gathered over all input arcs.
    pub bytes_in: u64,
    /// Error events (task failures, worker loss).
    pub errors: u64,
    /// Successful deque steals across all workers (work-stealing mode).
    pub steals: u64,
    /// Tasks executed inline off private stacks, never queued
    /// (work-stealing mode's small-task policy).
    pub inline_tasks: u64,
}

impl TraceSummary {
    /// Task throughput in tasks per second.
    pub fn tasks_per_sec(&self) -> f64 {
        let w = self.wall.as_secs_f64();
        if w > 0.0 {
            self.tasks as f64 / w
        } else {
            0.0
        }
    }

    /// Fraction of total worker time spent inside task bodies
    /// (`busy / (wall * workers)`), in `0.0..=1.0`.
    pub fn utilization(&self) -> f64 {
        let denom = self.wall.as_secs_f64() * self.workers as f64;
        if denom > 0.0 {
            (self.busy.as_secs_f64() / denom).min(1.0)
        } else {
            0.0
        }
    }

    /// One-line human rendering for CLI output.
    pub fn render(&self) -> String {
        format!(
            "trace: {} task runs in {:?} ({:.0} tasks/s), {} workers at {:.0}% utilization, \
             queue wait {:?}, {} inline / {} stolen, {} CoW copies ({} bytes), \
             {} input bytes moved",
            self.tasks,
            self.wall,
            self.tasks_per_sec(),
            self.workers,
            100.0 * self.utilization(),
            self.queue_wait,
            self.inline_tasks,
            self.steals,
            self.cow_copies,
            self.cow_bytes,
            self.bytes_in,
        )
    }
}

/// Predicted-vs-observed drift of one task (primary copies only).
/// Observed times are normalised into the prediction's abstract time
/// units (see [`DriftReport`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDrift {
    /// The task.
    pub task: TaskId,
    /// Predicted start, in schedule units.
    pub predicted_start: f64,
    /// Predicted finish, in schedule units.
    pub predicted_finish: f64,
    /// Observed start, normalised into schedule units.
    pub observed_start: f64,
    /// Observed finish, normalised into schedule units.
    pub observed_finish: f64,
}

impl TaskDrift {
    /// `observed_start - predicted_start` (positive = started late).
    pub fn start_drift(&self) -> f64 {
        self.observed_start - self.predicted_start
    }

    /// `observed_finish - predicted_finish` (positive = finished late).
    pub fn finish_drift(&self) -> f64 {
        self.observed_finish - self.predicted_finish
    }
}

/// Joins a predicted timeline (a schedule, or the simulator's
/// message-accurate replay of one) against a trace's observation.
///
/// Predictions live in abstract weight units, observations in seconds,
/// so the report fits one global conversion constant — `scale` units
/// per second, chosen so total predicted busy time equals total
/// observed busy time — and compares *shapes* under that fit: if the
/// scheduler's relative durations and orderings were right, every
/// normalised observation lands on its prediction and the makespan
/// error is zero; systematic drift (a task heavier than its weight, a
/// worker starved by queue waits) shows up per task.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Per-task drift rows, in predicted start order.
    pub tasks: Vec<TaskDrift>,
    /// Fitted conversion: schedule units per observed second.
    pub scale: f64,
    /// The prediction's makespan, in schedule units.
    pub predicted_makespan: f64,
    /// The observed makespan, normalised into schedule units.
    pub observed_makespan: f64,
}

impl DriftReport {
    /// Builds the report from a predicted schedule and a trace of the
    /// same design. Tasks missing from either side (never executed, or
    /// unplaced) are skipped.
    pub fn new(predicted: &Schedule, trace: &Trace) -> Self {
        // Earliest observed copy of each task, keyed by task index.
        let mut observed: Vec<Option<TaskSpan>> = vec![None; predicted.task_count()];
        for sp in trace.spans() {
            if sp.task.index() >= observed.len() {
                continue;
            }
            let slot = &mut observed[sp.task.index()];
            if slot.as_ref().is_none_or(|cur| sp.start < cur.start) {
                *slot = Some(sp);
            }
        }

        // Fit the unit conversion over tasks present on both sides.
        let mut pred_busy = 0.0f64;
        let mut obs_busy = 0.0f64;
        let mut rows: Vec<(f64, TaskId, TaskSpan, f64, f64)> = Vec::new();
        for (i, sp) in observed.iter().enumerate() {
            let Some(sp) = sp else { continue };
            let Some(p) = predicted.primary(TaskId(i as u32)) else {
                continue;
            };
            pred_busy += p.finish - p.start;
            obs_busy += (sp.finish - sp.start).as_secs_f64();
            rows.push((p.start, sp.task, sp.clone(), p.start, p.finish));
        }
        let scale = if obs_busy > 0.0 {
            pred_busy / obs_busy
        } else {
            1.0
        };

        rows.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut observed_makespan = 0.0f64;
        let tasks: Vec<TaskDrift> = rows
            .into_iter()
            .map(|(_, task, sp, ps, pf)| {
                let of = sp.finish.as_secs_f64() * scale;
                observed_makespan = observed_makespan.max(of);
                TaskDrift {
                    task,
                    predicted_start: ps,
                    predicted_finish: pf,
                    observed_start: sp.start.as_secs_f64() * scale,
                    observed_finish: of,
                }
            })
            .collect();

        DriftReport {
            tasks,
            scale,
            predicted_makespan: predicted.makespan(),
            observed_makespan,
        }
    }

    /// `(observed - predicted) / predicted`, as a signed fraction
    /// (+0.1 = the run's shape was 10% longer than predicted).
    pub fn makespan_error(&self) -> f64 {
        if self.predicted_makespan > 0.0 {
            (self.observed_makespan - self.predicted_makespan) / self.predicted_makespan
        } else {
            0.0
        }
    }

    /// Renders the report as an aligned table. `name_of` maps tasks to
    /// display names.
    pub fn render(&self, name_of: impl Fn(TaskId) -> String) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "drift report — observed vs predicted ({:.3} schedule units per second)",
            self.scale
        );
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "task", "pred start", "pred fin", "obs start", "obs fin", "Δstart", "Δfinish"
        );
        for d in &self.tasks {
            let _ = writeln!(
                out,
                "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>+9.3} {:>+9.3}",
                name_of(d.task),
                d.predicted_start,
                d.predicted_finish,
                d.observed_start,
                d.observed_finish,
                d.start_drift(),
                d.finish_drift(),
            );
        }
        let _ = writeln!(
            out,
            "makespan: predicted {:.3}, observed {:.3} (error {:+.1}%)",
            self.predicted_makespan,
            self.observed_makespan,
            100.0 * self.makespan_error(),
        );
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn finish(task: u32, worker: usize, start: u64, fin: u64, ops: u64, cow: u64) -> TraceEvent {
        TraceEvent::TaskFinish {
            task: TaskId(task),
            worker,
            start: ms(start),
            finish: ms(fin),
            ops,
            cow_copies: cow,
            cow_bytes: cow * 64,
            bytes_in: vec![("a".to_string(), 8)],
        }
    }

    fn two_task_trace() -> Trace {
        Trace::from_events(
            vec![
                finish(1, 1, 10, 30, 200, 1),
                TraceEvent::TaskStart {
                    task: TaskId(0),
                    worker: 0,
                    at: ms(0),
                },
                finish(0, 0, 0, 20, 100, 0),
                TraceEvent::QueueWait {
                    task: TaskId(1),
                    worker: 1,
                    since: ms(0),
                    until: ms(10),
                },
            ],
            2,
            ms(30),
        )
    }

    #[test]
    fn events_sorted_and_spans_extracted() {
        let t = two_task_trace();
        let ats: Vec<Duration> = t.events.iter().map(TraceEvent::at).collect();
        assert!(ats.windows(2).all(|w| w[0] <= w[1]), "{ats:?}");
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].task, TaskId(0));
        assert_eq!(spans[1].ops, 200);
    }

    #[test]
    fn summary_counts() {
        let s = two_task_trace().summary();
        assert_eq!(s.tasks, 2);
        assert_eq!(s.ops, 300);
        assert_eq!(s.cow_copies, 1);
        assert_eq!(s.cow_bytes, 64);
        assert_eq!(s.bytes_in, 16);
        assert_eq!(s.busy, ms(40));
        assert_eq!(s.queue_wait, ms(10));
        // busy 40ms over 2 workers * 30ms wall = 2/3.
        assert!((s.utilization() - 40.0 / 60.0).abs() < 1e-9);
        assert!((s.tasks_per_sec() - 2.0 / 0.030).abs() < 1e-6);
        let line = s.render();
        assert!(line.contains("2 task runs"), "{line}");
        assert!(line.contains("CoW"), "{line}");
    }

    #[test]
    fn observed_schedule_marks_duplicates() {
        let t = Trace::from_events(
            vec![finish(0, 0, 0, 10, 1, 0), finish(0, 1, 2, 12, 1, 0)],
            2,
            ms(12),
        );
        let s = t.observed_schedule(1);
        let copies = s.placements_of(TaskId(0));
        assert_eq!(copies.len(), 2);
        assert_eq!(copies.iter().filter(|p| p.primary).count(), 1);
        assert!(s.primary(TaskId(0)).unwrap().start < 0.001 + 1e-12);
    }

    #[test]
    fn chrome_json_is_valid_and_complete() {
        let mut t = two_task_trace();
        t.events.push(TraceEvent::TaskError {
            task: "bad \"task\"".to_string(),
            worker: 1,
            at: ms(30),
            message: "boom\nline2".to_string(),
        });
        let json = t.chrome_json(|t| format!("t{}", t.0));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"t0\""));
        assert!(json.contains("\"ops\":100"));
        assert!(json.contains("wait t1"));
        assert!(json.contains("bad \\\"task\\\""));
        assert!(json.contains("boom\\nline2"));
        // Structural sanity: balanced braces/brackets outside strings.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "unbalanced JSON:\n{json}");
        assert!(!in_str);
    }

    #[test]
    fn drift_exact_when_shape_matches() {
        // Prediction: t0 on P0 0..10, t1 on P1 5..25 (units).
        let mut pred = Schedule::new("MH", 2);
        pred.place(TaskId(0), ProcId(0), 0.0, 10.0, true);
        pred.place(TaskId(1), ProcId(1), 5.0, 25.0, true);
        // Observation: identical shape at 1 unit = 2ms.
        let t = Trace::from_events(
            vec![finish(0, 0, 0, 20, 1, 0), finish(1, 1, 10, 50, 1, 0)],
            2,
            ms(50),
        );
        let d = DriftReport::new(&pred, &t);
        assert!((d.scale - 0.5 / 0.001).abs() < 1e-6, "scale {}", d.scale);
        for row in &d.tasks {
            assert!(row.start_drift().abs() < 1e-9, "{row:?}");
            assert!(row.finish_drift().abs() < 1e-9, "{row:?}");
        }
        assert!(d.makespan_error().abs() < 1e-9);
        let text = d.render(|t| format!("t{}", t.0));
        assert!(text.contains("makespan"), "{text}");
        assert!(text.contains("t0"), "{text}");
    }

    #[test]
    fn drift_detects_late_task() {
        let mut pred = Schedule::new("MH", 2);
        pred.place(TaskId(0), ProcId(0), 0.0, 10.0, true);
        pred.place(TaskId(1), ProcId(1), 0.0, 10.0, true);
        // t1 ran 3x longer than its equal-weight prediction claims.
        let t = Trace::from_events(
            vec![finish(0, 0, 0, 10, 1, 0), finish(1, 1, 0, 30, 1, 0)],
            2,
            ms(30),
        );
        let d = DriftReport::new(&pred, &t);
        // Total pred busy 20 units over 40ms observed => scale 500/s;
        // t1 finishes at 15 units vs 10 predicted.
        let t1 = d.tasks.iter().find(|r| r.task == TaskId(1)).unwrap();
        assert!(t1.finish_drift() > 4.9, "{t1:?}");
        assert!(d.makespan_error() > 0.49, "{}", d.makespan_error());
    }

    #[test]
    fn drift_skips_unmatched_tasks() {
        let mut pred = Schedule::new("MH", 3);
        pred.place(TaskId(0), ProcId(0), 0.0, 10.0, true);
        // Task 1 unplaced; task 2 placed but never observed.
        pred.place(TaskId(2), ProcId(0), 10.0, 20.0, true);
        let t = Trace::from_events(
            vec![finish(0, 0, 0, 10, 1, 0), finish(1, 0, 10, 20, 1, 0)],
            1,
            ms(20),
        );
        let d = DriftReport::new(&pred, &t);
        assert_eq!(d.tasks.len(), 1);
        assert_eq!(d.tasks[0].task, TaskId(0));
    }
}
