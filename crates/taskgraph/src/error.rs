//! Error types shared by the graph layer.

use std::fmt;

/// Errors produced while constructing or analysing dataflow graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id referred to a node that does not exist in this graph.
    UnknownNode(u32),
    /// Adding the edge would create a self-loop, which a dataflow graph
    /// forbids (a task cannot precede itself).
    SelfLoop(u32),
    /// Adding the arc would create a self-loop on the named node.
    SelfLoopNamed(String),
    /// A duplicate arc between the same pair of named nodes with the same
    /// label.
    DuplicateArc {
        /// Source node name.
        src: String,
        /// Destination node name.
        dst: String,
        /// The repeated variable label.
        label: String,
    },
    /// The graph contains a cycle; dataflow designs must be acyclic.
    /// Carries one node id known to participate in a cycle.
    Cycle(u32),
    /// A duplicate edge between the same pair of nodes with the same label.
    DuplicateEdge {
        /// Source node id.
        src: u32,
        /// Destination node id.
        dst: u32,
        /// The repeated variable label.
        label: String,
    },
    /// A task weight or edge volume was negative or non-finite.
    BadWeight(f64),
    /// Hierarchy error: a compound node's expansion is missing or invalid.
    BadExpansion(String),
    /// Text (de)serialisation error.
    Parse(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            GraphError::SelfLoop(id) => write!(f, "self-loop on node {id} is not allowed"),
            GraphError::SelfLoopNamed(name) => {
                write!(f, "self-loop on node {name:?} is not allowed")
            }
            GraphError::DuplicateArc { src, dst, label } => {
                write!(f, "duplicate arc {src:?} -> {dst:?} with label {label:?}")
            }
            GraphError::Cycle(id) => {
                write!(f, "graph is cyclic (node {id} participates in a cycle)")
            }
            GraphError::DuplicateEdge { src, dst, label } => {
                write!(f, "duplicate edge {src} -> {dst} with label {label:?}")
            }
            GraphError::BadWeight(w) => {
                write!(f, "weight/volume must be finite and non-negative, got {w}")
            }
            GraphError::BadExpansion(msg) => write!(f, "bad hierarchical expansion: {msg}"),
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::DuplicateEdge {
            src: 1,
            dst: 2,
            label: "x".into(),
        };
        let s = e.to_string();
        assert!(s.contains("duplicate"), "{s}");
        assert!(s.contains("\"x\""), "{s}");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(GraphError::Cycle(3));
        assert!(e.to_string().contains("cyclic"));
    }
}
