//! Hierarchical PITL dataflow graphs — the user-facing design
//! representation of Banger's graph editor (paper Figure 1).
//!
//! A [`HierGraph`] contains three kinds of nodes:
//!
//! * **Task** — a primitive sequential node (oval in the paper) with a
//!   computational weight and, optionally, the name of the PITS program
//!   that implements it;
//! * **Storage** — a named data item (open rectangle) with a size in
//!   abstract data units; arcs in/out of storage model reads and writes;
//! * **Compound** — a bold-lined node that expands into a lower-level
//!   [`HierGraph`]. Arcs crossing a compound boundary are connected to
//!   inner nodes through explicit *port bindings* keyed by the arc label.
//!
//! [`HierGraph::flatten`] recursively expands compounds and eliminates
//! storage nodes, producing the flat weighted [`TaskGraph`] consumed by the
//! scheduler, plus the design's external inputs and outputs (storage items
//! with no producer / no consumer).

use crate::error::GraphError;
use crate::graph::{TaskGraph, TaskId};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node within one level of a [`HierGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HierNodeId(pub u32);

impl HierNodeId {
    /// Dense index of the node at its level.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HierNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// What a hierarchical node is.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A primitive sequential task.
    Task {
        /// Computational weight in abstract operations.
        weight: f64,
        /// Name of the PITS program implementing the task, if any.
        program: Option<String>,
    },
    /// A named data item of the given size (abstract units).
    Storage {
        /// Data size; becomes the volume of the flattened arcs through it.
        size: f64,
    },
    /// A node that expands into a lower-level dataflow graph.
    Compound {
        /// The lower-level design.
        expansion: Box<HierGraph>,
        /// For each externally visible input variable: the inner nodes that
        /// receive it.
        inputs: BTreeMap<String, Vec<HierNodeId>>,
        /// For each externally visible output variable: the inner nodes
        /// that produce it.
        outputs: BTreeMap<String, Vec<HierNodeId>>,
    },
}

/// One node of a hierarchical design.
#[derive(Debug, Clone, PartialEq)]
pub struct HierNode {
    /// Display name (`fan1`, `A`, `LUD`, ...).
    pub name: String,
    /// The node kind.
    pub kind: NodeKind,
}

/// A directed arc at one hierarchy level.
#[derive(Debug, Clone, PartialEq)]
pub struct HierArc {
    /// Source node.
    pub src: HierNodeId,
    /// Destination node.
    pub dst: HierNodeId,
    /// Variable name drawn on the arc; used to select compound port
    /// bindings.
    pub label: String,
    /// Data volume carried by the arc when it connects two tasks directly.
    /// Arcs through storage use the storage size instead.
    pub volume: f64,
}

/// An external port of a flattened design: a storage item with no producer
/// (input) or no consumer (output), together with the flat tasks touching
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalPort {
    /// Variable (storage) name.
    pub var: String,
    /// Tasks that read (for inputs) or write (for outputs) the variable.
    pub tasks: Vec<TaskId>,
}

/// Result of flattening a hierarchical design.
#[derive(Debug, Clone, PartialEq)]
pub struct Flattened {
    /// The flat weighted DAG for the scheduler.
    pub graph: TaskGraph,
    /// External inputs: storage read but never written inside the design.
    pub inputs: Vec<ExternalPort>,
    /// External outputs: storage written but never read inside the design.
    pub outputs: Vec<ExternalPort>,
}

/// A hierarchical PITL dataflow design.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierGraph {
    name: String,
    nodes: Vec<HierNode>,
    arcs: Vec<HierArc>,
}

impl HierGraph {
    /// Creates an empty design with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        HierGraph {
            name: name.into(),
            nodes: Vec::new(),
            arcs: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes at this level.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of arcs at this level.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Adds a primitive task node.
    pub fn add_task(&mut self, name: impl Into<String>, weight: f64) -> HierNodeId {
        self.push(HierNode {
            name: name.into(),
            kind: NodeKind::Task {
                weight,
                program: None,
            },
        })
    }

    /// Adds a primitive task node with an attached PITS program name.
    pub fn add_task_with_program(
        &mut self,
        name: impl Into<String>,
        weight: f64,
        program: impl Into<String>,
    ) -> HierNodeId {
        self.push(HierNode {
            name: name.into(),
            kind: NodeKind::Task {
                weight,
                program: Some(program.into()),
            },
        })
    }

    /// Adds a storage node (named data item).
    pub fn add_storage(&mut self, name: impl Into<String>, size: f64) -> HierNodeId {
        self.push(HierNode {
            name: name.into(),
            kind: NodeKind::Storage { size },
        })
    }

    /// Adds a compound node expanding into `expansion`. Port bindings are
    /// attached afterwards with [`HierGraph::bind_input`] /
    /// [`HierGraph::bind_output`].
    pub fn add_compound(&mut self, name: impl Into<String>, expansion: HierGraph) -> HierNodeId {
        self.push(HierNode {
            name: name.into(),
            kind: NodeKind::Compound {
                expansion: Box::new(expansion),
                inputs: BTreeMap::new(),
                outputs: BTreeMap::new(),
            },
        })
    }

    fn push(&mut self, node: HierNode) -> HierNodeId {
        let id = HierNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Declares that variable `label` entering compound `c` is received by
    /// inner node `inner` (an id in the compound's expansion).
    pub fn bind_input(
        &mut self,
        c: HierNodeId,
        label: impl Into<String>,
        inner: HierNodeId,
    ) -> Result<(), GraphError> {
        match &mut self.node_mut(c)?.kind {
            NodeKind::Compound { inputs, .. } => {
                inputs.entry(label.into()).or_default().push(inner);
                Ok(())
            }
            _ => Err(GraphError::BadExpansion(format!(
                "node {c} is not a compound node"
            ))),
        }
    }

    /// Declares that variable `label` leaving compound `c` is produced by
    /// inner node `inner`.
    pub fn bind_output(
        &mut self,
        c: HierNodeId,
        label: impl Into<String>,
        inner: HierNodeId,
    ) -> Result<(), GraphError> {
        match &mut self.node_mut(c)?.kind {
            NodeKind::Compound { outputs, .. } => {
                outputs.entry(label.into()).or_default().push(inner);
                Ok(())
            }
            _ => Err(GraphError::BadExpansion(format!(
                "node {c} is not a compound node"
            ))),
        }
    }

    /// Adds an arc between two nodes at this level. `volume` applies only
    /// to direct task-to-task (or compound-boundary) arcs; arcs through
    /// storage take the storage size.
    pub fn add_arc(
        &mut self,
        src: HierNodeId,
        dst: HierNodeId,
        label: impl Into<String>,
        volume: f64,
    ) -> Result<(), GraphError> {
        if src.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(src.0));
        }
        if dst.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(dst.0));
        }
        if src == dst {
            return Err(GraphError::SelfLoopNamed(
                self.nodes[src.index()].name.clone(),
            ));
        }
        if !volume.is_finite() || volume < 0.0 {
            return Err(GraphError::BadWeight(volume));
        }
        if matches!(self.nodes[src.index()].kind, NodeKind::Storage { .. })
            && matches!(self.nodes[dst.index()].kind, NodeKind::Storage { .. })
        {
            return Err(GraphError::BadExpansion(
                "storage-to-storage arcs are not allowed; route through a task".into(),
            ));
        }
        let label = label.into();
        if self
            .arcs
            .iter()
            .any(|a| a.src == src && a.dst == dst && a.label == label)
        {
            return Err(GraphError::DuplicateArc {
                src: self.nodes[src.index()].name.clone(),
                dst: self.nodes[dst.index()].name.clone(),
                label,
            });
        }
        self.arcs.push(HierArc {
            src,
            dst,
            label,
            volume,
        });
        Ok(())
    }

    /// Convenience: arc whose label is the destination/source storage name
    /// and volume comes from the storage node.
    pub fn add_flow(&mut self, src: HierNodeId, dst: HierNodeId) -> Result<(), GraphError> {
        let label = match (&self.nodes[src.index()].kind, &self.nodes[dst.index()].kind) {
            (_, NodeKind::Storage { .. }) => self.nodes[dst.index()].name.clone(),
            (NodeKind::Storage { .. }, _) => self.nodes[src.index()].name.clone(),
            _ => format!(
                "{}_{}",
                self.nodes[src.index()].name,
                self.nodes[dst.index()].name
            ),
        };
        self.add_arc(src, dst, label, 0.0)
    }

    /// The node record for `id`.
    pub fn node(&self, id: HierNodeId) -> Option<&HierNode> {
        self.nodes.get(id.index())
    }

    fn node_mut(&mut self, id: HierNodeId) -> Result<&mut HierNode, GraphError> {
        let raw = id.0;
        self.nodes
            .get_mut(id.index())
            .ok_or(GraphError::UnknownNode(raw))
    }

    /// Iterates over nodes with ids.
    pub fn nodes(&self) -> impl Iterator<Item = (HierNodeId, &HierNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (HierNodeId(i as u32), n))
    }

    /// Iterates over arcs at this level.
    pub fn arcs(&self) -> impl Iterator<Item = &HierArc> {
        self.arcs.iter()
    }

    /// Sets the weight of a task node. Returns true when `id` names a task
    /// node at this level (storage/compound nodes are left untouched).
    pub fn set_task_weight(&mut self, id: HierNodeId, weight: f64) -> bool {
        match self.nodes.get_mut(id.index()) {
            Some(HierNode {
                kind: NodeKind::Task { weight: w, .. },
                ..
            }) => {
                *w = weight;
                true
            }
            _ => false,
        }
    }

    /// Replaces a *task* node in place with a compound node expanding into
    /// `expansion`, keeping the node id (so existing arcs remain attached)
    /// and installing the given port bindings. Used by design transforms
    /// such as data-parallel expansion. Fails when `id` is not a task.
    pub fn replace_task_with_compound(
        &mut self,
        id: HierNodeId,
        expansion: HierGraph,
        inputs: BTreeMap<String, Vec<HierNodeId>>,
        outputs: BTreeMap<String, Vec<HierNodeId>>,
    ) -> Result<(), GraphError> {
        let node = self.node_mut(id)?;
        if !matches!(node.kind, NodeKind::Task { .. }) {
            return Err(GraphError::BadExpansion(format!(
                "node {id} is not a task; only tasks can be expanded"
            )));
        }
        node.kind = NodeKind::Compound {
            expansion: Box::new(expansion),
            inputs,
            outputs,
        };
        Ok(())
    }

    /// Runs `f` on the expansion of compound node `id`; returns `None` for
    /// non-compound nodes. Enables recursive edits (e.g. re-weighting tasks
    /// from trial runs) without exposing the boxed sub-graph directly.
    pub fn with_expansion_mut<R>(
        &mut self,
        id: HierNodeId,
        f: impl FnOnce(&mut HierGraph) -> R,
    ) -> Option<R> {
        match self.nodes.get_mut(id.index()) {
            Some(HierNode {
                kind: NodeKind::Compound { expansion, .. },
                ..
            }) => Some(f(expansion)),
            _ => None,
        }
    }

    /// Maximum nesting depth: 1 for a design with no compound nodes.
    pub fn depth(&self) -> usize {
        1 + self
            .nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Compound { expansion, .. } => Some(expansion.depth()),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Total number of primitive tasks across all levels.
    pub fn leaf_task_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Task { .. } => 1,
                NodeKind::Compound { expansion, .. } => expansion.leaf_task_count(),
                NodeKind::Storage { .. } => 0,
            })
            .sum()
    }

    /// Recursively expands compounds and eliminates storage, producing the
    /// flat scheduler graph plus the design's external ports.
    pub fn flatten(&self) -> Result<Flattened, GraphError> {
        let mut acc = FlatAccum::default();
        let level = expand_level(self, "", &mut acc)?;
        // Re-route this top level's arcs into the accumulator.
        route_arcs(self, &level, &mut acc)?;
        acc.finish(self.name.clone())
    }
}

/// A node in the intermediate flat accumulation (tasks and storage only).
#[derive(Debug, Clone)]
enum FlatKind {
    Task {
        weight: f64,
        program: Option<String>,
    },
    Storage {
        size: f64,
        base: String,
    },
}

#[derive(Debug, Clone)]
struct FlatNode {
    name: String,
    kind: FlatKind,
}

#[derive(Debug, Default)]
struct FlatAccum {
    nodes: Vec<FlatNode>,
    /// (src, dst, label, volume) in flat-node space.
    arcs: Vec<(usize, usize, String, f64)>,
}

/// How a hierarchical node at some level is represented in flat space.
#[derive(Debug, Clone)]
enum Repr {
    Simple(usize),
    Compound {
        inputs: BTreeMap<String, Vec<usize>>,
        outputs: BTreeMap<String, Vec<usize>>,
    },
}

struct Level {
    repr: Vec<Repr>,
}

fn qualified(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

fn expand_level(g: &HierGraph, prefix: &str, acc: &mut FlatAccum) -> Result<Level, GraphError> {
    let mut repr = Vec::with_capacity(g.nodes.len());
    for node in &g.nodes {
        match &node.kind {
            NodeKind::Task { weight, program } => {
                let idx = acc.nodes.len();
                acc.nodes.push(FlatNode {
                    name: qualified(prefix, &node.name),
                    kind: FlatKind::Task {
                        weight: *weight,
                        program: program.clone(),
                    },
                });
                repr.push(Repr::Simple(idx));
            }
            NodeKind::Storage { size } => {
                let idx = acc.nodes.len();
                acc.nodes.push(FlatNode {
                    name: qualified(prefix, &node.name),
                    kind: FlatKind::Storage {
                        size: *size,
                        base: node.name.clone(),
                    },
                });
                repr.push(Repr::Simple(idx));
            }
            NodeKind::Compound {
                expansion,
                inputs,
                outputs,
            } => {
                let child_prefix = qualified(prefix, &node.name);
                let child = expand_level(expansion, &child_prefix, acc)?;
                route_arcs(expansion, &child, acc)?;
                let resolve = |bindings: &BTreeMap<String, Vec<HierNodeId>>,
                               side_in: bool|
                 -> Result<BTreeMap<String, Vec<usize>>, GraphError> {
                    let mut out = BTreeMap::new();
                    for (label, ids) in bindings {
                        let mut flats = Vec::new();
                        for &inner in ids {
                            let r = child.repr.get(inner.index()).ok_or_else(|| {
                                GraphError::BadExpansion(format!(
                                    "binding for {label:?} in compound {child_prefix:?} \
                                     names missing inner node {inner}"
                                ))
                            })?;
                            match r {
                                Repr::Simple(i) => flats.push(*i),
                                Repr::Compound { inputs, outputs } => {
                                    // Binding to a nested compound passes
                                    // through the same label.
                                    let map = if side_in { inputs } else { outputs };
                                    let nested = map.get(label).ok_or_else(|| {
                                        GraphError::BadExpansion(format!(
                                            "nested compound lacks a binding for {label:?}"
                                        ))
                                    })?;
                                    flats.extend(nested.iter().copied());
                                }
                            }
                        }
                        out.insert(label.clone(), flats);
                    }
                    Ok(out)
                };
                repr.push(Repr::Compound {
                    inputs: resolve(inputs, true)?,
                    outputs: resolve(outputs, false)?,
                });
            }
        }
    }
    Ok(Level { repr })
}

fn endpoints(
    level: &Level,
    id: HierNodeId,
    label: &str,
    incoming: bool,
    ctx: &str,
) -> Result<Vec<usize>, GraphError> {
    match &level.repr[id.index()] {
        Repr::Simple(i) => Ok(vec![*i]),
        Repr::Compound { inputs, outputs } => {
            let map = if incoming { inputs } else { outputs };
            map.get(label).cloned().ok_or_else(|| {
                GraphError::BadExpansion(format!(
                    "compound node {id} in {ctx:?} has no {} binding for variable {label:?}",
                    if incoming { "input" } else { "output" },
                ))
            })
        }
    }
}

fn route_arcs(g: &HierGraph, level: &Level, acc: &mut FlatAccum) -> Result<(), GraphError> {
    for arc in &g.arcs {
        let srcs = endpoints(level, arc.src, &arc.label, false, g.name())?;
        let dsts = endpoints(level, arc.dst, &arc.label, true, g.name())?;
        for &s in &srcs {
            for &d in &dsts {
                acc.arcs.push((s, d, arc.label.clone(), arc.volume));
            }
        }
    }
    Ok(())
}

/// Union-find over flat node indices, used to merge storage nodes that are
/// aliases of the same data item (an outer storage bound to an inner one
/// across a compound boundary).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

impl FlatAccum {
    /// Eliminates storage nodes and produces the final [`Flattened`] result.
    fn finish(self, name: String) -> Result<Flattened, GraphError> {
        let n = self.nodes.len();
        // Storage-to-storage arcs only arise from compound port bindings —
        // the two nodes are aliases of one data item, so merge them.
        let mut uf = UnionFind::new(n);
        for (s, d, _, _) in &self.arcs {
            let s_store = matches!(self.nodes[*s].kind, FlatKind::Storage { .. });
            let d_store = matches!(self.nodes[*d].kind, FlatKind::Storage { .. });
            if s_store && d_store {
                uf.union(*s, *d);
            }
        }
        // Producer/consumer lists per storage class representative.
        let mut writers: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut readers: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut direct: Vec<(usize, usize, String, f64)> = Vec::new();
        for (s, d, label, vol) in &self.arcs {
            let s_store = matches!(self.nodes[*s].kind, FlatKind::Storage { .. });
            let d_store = matches!(self.nodes[*d].kind, FlatKind::Storage { .. });
            match (s_store, d_store) {
                (false, false) => direct.push((*s, *d, label.clone(), *vol)),
                (false, true) => writers[uf.find(*d)].push(*s),
                (true, false) => readers[uf.find(*s)].push(*d),
                (true, true) => {} // alias arc, already merged
            }
        }

        // Map flat task indices to dense TaskGraph ids.
        let mut graph = TaskGraph::new(name);
        let mut task_of: Vec<Option<TaskId>> = vec![None; n];
        for (i, node) in self.nodes.iter().enumerate() {
            if let FlatKind::Task { weight, program } = &node.kind {
                let t = graph.try_add_task(node.name.clone(), *weight)?;
                if let Some(p) = program {
                    graph.set_program(t, p.clone())?;
                }
                task_of[i] = Some(t);
            }
        }

        let add_edge = |graph: &mut TaskGraph,
                        s: usize,
                        d: usize,
                        label: &str,
                        vol: f64|
         -> Result<(), GraphError> {
            let (ts, td) = (task_of[s].unwrap(), task_of[d].unwrap());
            if ts == td {
                // A task both writing and reading the same storage collapses
                // to nothing after elimination.
                return Ok(());
            }
            match graph.add_edge(ts, td, vol, label) {
                Ok(_) | Err(GraphError::DuplicateEdge { .. }) => Ok(()),
                Err(e) => Err(e),
            }
        };

        for (s, d, label, vol) in &direct {
            add_edge(&mut graph, *s, *d, label, *vol)?;
        }

        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !matches!(node.kind, FlatKind::Storage { .. }) || uf.find(i) != i {
                continue;
            }
            // Size and base name of the class: take the largest size (the
            // aliases describe the same item, sizes should agree) and the
            // representative's base name.
            let mut size = 0.0f64;
            let mut base = String::new();
            for (j, other) in self.nodes.iter().enumerate() {
                if let FlatKind::Storage { size: s, base: b } = &other.kind {
                    if uf.find(j) == i {
                        if *s > size {
                            size = *s;
                        }
                        if base.is_empty() {
                            base = b.clone();
                        }
                    }
                }
            }
            match (writers[i].is_empty(), readers[i].is_empty()) {
                (true, true) => {} // isolated storage: ignored
                (true, false) => inputs.push(ExternalPort {
                    var: base,
                    tasks: readers[i].iter().map(|&r| task_of[r].unwrap()).collect(),
                }),
                (false, true) => outputs.push(ExternalPort {
                    var: base,
                    tasks: writers[i].iter().map(|&w| task_of[w].unwrap()).collect(),
                }),
                (false, false) => {
                    for &w in &writers[i] {
                        for &r in &readers[i] {
                            add_edge(&mut graph, w, r, &base, size)?;
                        }
                    }
                }
            }
        }

        if !graph.is_dag() {
            let culprit = graph
                .topo_order()
                .err()
                .map(|e| match e {
                    GraphError::Cycle(c) => c,
                    _ => 0,
                })
                .unwrap_or(0);
            return Err(GraphError::Cycle(culprit));
        }

        Ok(Flattened {
            graph,
            inputs,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-level design: A --(a)--> sqrt --(x)--> X
    fn simple() -> HierGraph {
        let mut g = HierGraph::new("sqrtprog");
        let a = g.add_storage("a", 1.0);
        let t = g.add_task_with_program("sqrt", 10.0, "sqrt_body");
        let x = g.add_storage("x", 1.0);
        g.add_flow(a, t).unwrap();
        g.add_flow(t, x).unwrap();
        g
    }

    #[test]
    fn flatten_simple() {
        let f = simple().flatten().unwrap();
        assert_eq!(f.graph.task_count(), 1);
        assert_eq!(f.graph.edge_count(), 0);
        assert_eq!(f.inputs.len(), 1);
        assert_eq!(f.inputs[0].var, "a");
        assert_eq!(f.outputs.len(), 1);
        assert_eq!(f.outputs[0].var, "x");
        let t = f.graph.find_task("sqrt").unwrap();
        assert_eq!(f.graph.task(t).program.as_deref(), Some("sqrt_body"));
    }

    #[test]
    fn storage_between_tasks_becomes_edge() {
        let mut g = HierGraph::new("pipe");
        let p = g.add_task("produce", 5.0);
        let s = g.add_storage("buf", 64.0);
        let c = g.add_task("consume", 3.0);
        g.add_flow(p, s).unwrap();
        g.add_flow(s, c).unwrap();
        let f = g.flatten().unwrap();
        assert_eq!(f.graph.task_count(), 2);
        assert_eq!(f.graph.edge_count(), 1);
        let (_, e) = f.graph.edges().next().unwrap();
        assert_eq!(e.volume, 64.0);
        assert_eq!(e.label, "buf");
        assert!(f.inputs.is_empty());
        assert!(f.outputs.is_empty());
    }

    #[test]
    fn fan_out_fan_in_through_storage() {
        let mut g = HierGraph::new("fan");
        let w1 = g.add_task("w1", 1.0);
        let w2 = g.add_task("w2", 1.0);
        let s = g.add_storage("s", 8.0);
        let r1 = g.add_task("r1", 1.0);
        let r2 = g.add_task("r2", 1.0);
        g.add_flow(w1, s).unwrap();
        g.add_flow(w2, s).unwrap();
        g.add_flow(s, r1).unwrap();
        g.add_flow(s, r2).unwrap();
        let f = g.flatten().unwrap();
        // Cross product: 2 writers x 2 readers = 4 edges.
        assert_eq!(f.graph.edge_count(), 4);
    }

    #[test]
    fn compound_expansion() {
        // Inner: in storage "v" -> double -> out storage "w"
        let mut inner = HierGraph::new("inner");
        let iv = inner.add_storage("v", 4.0);
        let t = inner.add_task("double", 2.0);
        let iw = inner.add_storage("w", 4.0);
        inner.add_flow(iv, t).unwrap();
        inner.add_flow(t, iw).unwrap();

        // Outer: gen -> [C] -> use, bound through v/w.
        let mut outer = HierGraph::new("outer");
        let gen = outer.add_task("gen", 1.0);
        let c = outer.add_compound("C", inner);
        let use_ = outer.add_task("use", 1.0);
        outer.bind_input(c, "v", iv).unwrap();
        outer.bind_output(c, "w", iw).unwrap();
        outer.add_arc(gen, c, "v", 4.0).unwrap();
        outer.add_arc(c, use_, "w", 4.0).unwrap();

        let f = outer.flatten().unwrap();
        assert_eq!(f.graph.task_count(), 3);
        assert_eq!(f.graph.edge_count(), 2);
        let names: Vec<String> = f.graph.tasks().map(|(_, t)| t.name.clone()).collect();
        assert!(names.contains(&"C.double".to_string()), "{names:?}");
        // gen -> C.double and C.double -> use must exist
        let gen_t = f.graph.find_task("gen").unwrap();
        let dbl = f.graph.find_task("C.double").unwrap();
        let use_t = f.graph.find_task("use").unwrap();
        assert_eq!(f.graph.successors(gen_t).collect::<Vec<_>>(), vec![dbl]);
        assert_eq!(f.graph.successors(dbl).collect::<Vec<_>>(), vec![use_t]);
        assert!(f.graph.is_dag());
    }

    #[test]
    fn compound_binding_directly_to_inner_task() {
        let mut inner = HierGraph::new("inner");
        let t = inner.add_task("work", 2.0);

        let mut outer = HierGraph::new("outer");
        let gen = outer.add_task("gen", 1.0);
        let c = outer.add_compound("C", inner);
        outer.bind_input(c, "d", t).unwrap();
        outer.add_arc(gen, c, "d", 3.0).unwrap();

        let f = outer.flatten().unwrap();
        assert_eq!(f.graph.edge_count(), 1);
        let (_, e) = f.graph.edges().next().unwrap();
        assert_eq!(e.volume, 3.0);
        assert_eq!(e.label, "d");
    }

    #[test]
    fn missing_binding_is_an_error() {
        let inner = HierGraph::new("inner");
        let mut outer = HierGraph::new("outer");
        let gen = outer.add_task("gen", 1.0);
        let c = outer.add_compound("C", inner);
        outer.add_arc(gen, c, "d", 3.0).unwrap();
        let err = outer.flatten().unwrap_err();
        assert!(matches!(err, GraphError::BadExpansion(_)), "{err:?}");
    }

    #[test]
    fn two_level_nesting() {
        let mut leaf = HierGraph::new("leaf");
        let lt = leaf.add_task("w", 1.0);

        let mut mid = HierGraph::new("mid");
        let mc = mid.add_compound("L", leaf);
        mid.bind_input(mc, "x", lt).unwrap();

        let mut top = HierGraph::new("top");
        let gen = top.add_task("gen", 1.0);
        let tc = top.add_compound("M", mid);
        // Binding to a nested compound resolves through its own binding.
        top.bind_input(tc, "x", mc).unwrap();
        top.add_arc(gen, tc, "x", 2.0).unwrap();

        let f = top.flatten().unwrap();
        assert_eq!(f.graph.task_count(), 2);
        assert_eq!(f.graph.edge_count(), 1);
        assert!(f.graph.find_task("M.L.w").is_some());
        assert_eq!(top.depth(), 3);
        assert_eq!(top.leaf_task_count(), 2);
    }

    #[test]
    fn storage_to_storage_rejected() {
        let mut g = HierGraph::new("ss");
        let a = g.add_storage("a", 1.0);
        let b = g.add_storage("b", 1.0);
        assert!(g.add_arc(a, b, "x", 1.0).is_err());
    }

    #[test]
    fn bind_on_non_compound_rejected() {
        let mut g = HierGraph::new("bn");
        let t = g.add_task("t", 1.0);
        assert!(g.bind_input(t, "x", HierNodeId(0)).is_err());
        assert!(g.bind_output(t, "x", HierNodeId(0)).is_err());
    }

    #[test]
    fn task_reading_and_writing_same_storage_no_self_loop() {
        let mut g = HierGraph::new("rw");
        let t = g.add_task("t", 1.0);
        let s = g.add_storage("s", 4.0);
        let u = g.add_task("u", 1.0);
        g.add_flow(t, s).unwrap();
        g.add_flow(s, t).unwrap(); // t updates s in place
        g.add_flow(s, u).unwrap();
        let f = g.flatten().unwrap();
        // Only t -> u survives; the t -> t edge is dropped.
        assert_eq!(f.graph.edge_count(), 1);
        assert!(f.graph.is_dag());
    }

    #[test]
    fn flatten_cycle_detected() {
        let mut g = HierGraph::new("cyc");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_arc(a, b, "x", 1.0).unwrap();
        g.add_arc(b, a, "y", 1.0).unwrap();
        assert!(matches!(g.flatten(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn self_loop_rejected_with_node_name() {
        let mut g = HierGraph::new("sl");
        let t = g.add_task("worker", 1.0);
        let err = g.add_arc(t, t, "x", 1.0).unwrap_err();
        assert_eq!(err, GraphError::SelfLoopNamed("worker".into()));
        assert!(err.to_string().contains("worker"));
        let err2 = g.add_flow(t, t).unwrap_err();
        assert_eq!(err2, GraphError::SelfLoopNamed("worker".into()));
    }

    #[test]
    fn duplicate_arc_rejected_with_node_names() {
        let mut g = HierGraph::new("dup");
        let a = g.add_task("producer", 1.0);
        let b = g.add_task("consumer", 1.0);
        g.add_arc(a, b, "x", 1.0).unwrap();
        let err = g.add_arc(a, b, "x", 2.0).unwrap_err();
        assert_eq!(
            err,
            GraphError::DuplicateArc {
                src: "producer".into(),
                dst: "consumer".into(),
                label: "x".into(),
            }
        );
        assert!(err.to_string().contains("producer"), "{err}");
        // A different label between the same nodes is still fine.
        g.add_arc(a, b, "y", 1.0).unwrap();
    }

    #[test]
    fn duplicate_flow_rejected() {
        let mut g = HierGraph::new("dupf");
        let t = g.add_task("t", 1.0);
        let s = g.add_storage("s", 4.0);
        g.add_flow(t, s).unwrap();
        assert!(matches!(
            g.add_flow(t, s),
            Err(GraphError::DuplicateArc { .. })
        ));
    }
}
