//! Static graph analysis used by the scheduling heuristics and by Banger's
//! "instant feedback" displays: t-levels, b-levels, static levels, ALAP
//! times, the parallelism profile, and summary statistics.
//!
//! Conventions follow the task-scheduling literature the paper builds on
//! (El-Rewini & Lewis 1990; Kruatrachue 1987):
//!
//! * **t-level(t)** — longest path length from any entry to `t`, *excluding*
//!   `t`'s own weight, *including* communication volumes along the path.
//!   It is the earliest possible start time on an idealised machine.
//! * **b-level(t)** — longest path length from `t` to any exit, *including*
//!   `t`'s own weight and communication volumes.
//! * **static level(t)** — b-level computed with communication ignored
//!   (the HLFET priority).
//! * **ALAP(t)** — latest start time that does not stretch the critical
//!   path.

use crate::graph::{TaskGraph, TaskId};

/// Result of a full static analysis of a task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphAnalysis {
    /// Earliest start times including communication (one per task).
    pub t_level: Vec<f64>,
    /// Longest exit path including the task itself and communication.
    pub b_level: Vec<f64>,
    /// Longest exit path ignoring communication (HLFET priority).
    pub static_level: Vec<f64>,
    /// Latest start times that keep the (comm-inclusive) critical path.
    pub alap: Vec<f64>,
    /// Length of the communication-inclusive critical path.
    pub cp_length: f64,
    /// One valid topological order (reused by schedulers).
    pub topo: Vec<TaskId>,
}

impl GraphAnalysis {
    /// Runs the full analysis. Panics if the graph is cyclic: callers are
    /// expected to validate designs before analysing them (use
    /// [`TaskGraph::is_dag`]).
    pub fn analyze(g: &TaskGraph) -> Self {
        let topo = g
            .topo_order()
            .expect("analysis requires an acyclic dataflow graph");
        let n = g.task_count();
        let mut t_level = vec![0.0f64; n];
        for &t in &topo {
            let mut best = 0.0f64;
            for &e in g.in_edges(t) {
                let edge = g.edge(e);
                let cand = t_level[edge.src.index()] + g.task(edge.src).weight + edge.volume;
                best = best.max(cand);
            }
            t_level[t.index()] = best;
        }

        let mut b_level = vec![0.0f64; n];
        let mut static_level = vec![0.0f64; n];
        for &t in topo.iter().rev() {
            let w = g.task(t).weight;
            let mut bb = 0.0f64;
            let mut sb = 0.0f64;
            for &e in g.out_edges(t) {
                let edge = g.edge(e);
                bb = bb.max(edge.volume + b_level[edge.dst.index()]);
                sb = sb.max(static_level[edge.dst.index()]);
            }
            b_level[t.index()] = w + bb;
            static_level[t.index()] = w + sb;
        }

        let cp_length = g
            .task_ids()
            .map(|t| t_level[t.index()] + b_level[t.index()])
            .fold(0.0f64, f64::max);

        let mut alap = vec![0.0f64; n];
        for &t in topo.iter().rev() {
            let w = g.task(t).weight;
            let mut latest_finish = cp_length;
            for &e in g.out_edges(t) {
                let edge = g.edge(e);
                latest_finish = latest_finish.min(alap[edge.dst.index()] - edge.volume);
            }
            alap[t.index()] = latest_finish - w;
        }

        GraphAnalysis {
            t_level,
            b_level,
            static_level,
            alap,
            cp_length,
            topo,
        }
    }

    /// Tasks on the communication-inclusive critical path, i.e. those whose
    /// `t_level + b_level` equals the critical path length (within `eps`).
    pub fn critical_tasks(&self, eps: f64) -> Vec<TaskId> {
        self.topo
            .iter()
            .copied()
            .filter(|t| {
                (self.t_level[t.index()] + self.b_level[t.index()] - self.cp_length).abs() <= eps
            })
            .collect()
    }

    /// Slack of each task: `alap - t_level`; zero for critical tasks.
    pub fn slack(&self) -> Vec<f64> {
        self.t_level
            .iter()
            .zip(&self.alap)
            .map(|(t, a)| a - t)
            .collect()
    }
}

/// The parallelism profile: for each *depth level* (longest hop count from
/// an entry), how many tasks sit at that level. The maximum is the graph's
/// width — an upper bound on usable processors.
pub fn parallelism_profile(g: &TaskGraph) -> Vec<usize> {
    let topo = match g.topo_order() {
        Ok(t) => t,
        Err(_) => return Vec::new(),
    };
    let mut depth = vec![0usize; g.task_count()];
    let mut max_depth = 0usize;
    for &t in &topo {
        let d = g
            .predecessors(t)
            .map(|p| depth[p.index()] + 1)
            .max()
            .unwrap_or(0);
        depth[t.index()] = d;
        max_depth = max_depth.max(d);
    }
    if g.task_count() == 0 {
        return Vec::new();
    }
    let mut profile = vec![0usize; max_depth + 1];
    for d in depth {
        profile[d] += 1;
    }
    profile
}

/// The graph's width: the maximum of the parallelism profile.
pub fn width(g: &TaskGraph) -> usize {
    parallelism_profile(g).into_iter().max().unwrap_or(0)
}

/// The graph's depth: number of levels in the parallelism profile.
pub fn depth(g: &TaskGraph) -> usize {
    parallelism_profile(g).len()
}

/// Average parallelism: total weight divided by the computation-only
/// critical path length. This is the classic upper bound on achievable
/// speedup.
pub fn average_parallelism(g: &TaskGraph) -> f64 {
    let cp = g.critical_path_length();
    if cp == 0.0 {
        0.0
    } else {
        g.total_weight() / cp
    }
}

/// Summary statistics used by the `repro` binary's design report.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of arcs.
    pub edges: usize,
    /// Total computation weight.
    pub total_weight: f64,
    /// Total communication volume.
    pub total_volume: f64,
    /// Communication/computation ratio.
    pub ccr: f64,
    /// Computation-only critical path length.
    pub cp_length: f64,
    /// Maximum width (tasks at one depth level).
    pub width: usize,
    /// Number of depth levels.
    pub depth: usize,
    /// Total weight / critical path — the speedup upper bound.
    pub average_parallelism: f64,
}

/// Computes [`GraphStats`] for a design.
pub fn stats(g: &TaskGraph) -> GraphStats {
    GraphStats {
        tasks: g.task_count(),
        edges: g.edge_count(),
        total_weight: g.total_weight(),
        total_volume: g.total_volume(),
        ccr: g.ccr(),
        cp_length: g.critical_path_length(),
        width: width(g),
        depth: depth(g),
        average_parallelism: average_parallelism(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    /// The canonical two-level fork/join:
    ///        a(2)
    ///   v=4 /    \ v=1
    ///    b(3)    c(5)
    ///   v=2 \    / v=6
    ///        d(1)
    fn fork_join() -> TaskGraph {
        let mut g = TaskGraph::new("fj");
        let a = g.add_task("a", 2.0);
        let b = g.add_task("b", 3.0);
        let c = g.add_task("c", 5.0);
        let d = g.add_task("d", 1.0);
        g.add_edge(a, b, 4.0, "ab").unwrap();
        g.add_edge(a, c, 1.0, "ac").unwrap();
        g.add_edge(b, d, 2.0, "bd").unwrap();
        g.add_edge(c, d, 6.0, "cd").unwrap();
        g
    }

    #[test]
    fn t_levels() {
        let g = fork_join();
        let a = GraphAnalysis::analyze(&g);
        assert_eq!(a.t_level, vec![0.0, 6.0, 3.0, 14.0]);
    }

    #[test]
    fn b_levels() {
        let g = fork_join();
        let a = GraphAnalysis::analyze(&g);
        // d: 1; b: 3+2+1=6; c: 5+6+1=12; a: 2+max(4+6, 1+12)=15
        assert_eq!(a.b_level, vec![15.0, 6.0, 12.0, 1.0]);
        assert_eq!(a.cp_length, 15.0);
    }

    #[test]
    fn static_levels_ignore_comm() {
        let g = fork_join();
        let a = GraphAnalysis::analyze(&g);
        // d: 1; b: 4; c: 6; a: 2+6=8
        assert_eq!(a.static_level, vec![8.0, 4.0, 6.0, 1.0]);
    }

    #[test]
    fn alap_and_slack() {
        let g = fork_join();
        let a = GraphAnalysis::analyze(&g);
        // cp = 15. alap(d) = 14; alap(c) = 14-6-5 = 3; alap(b) = 14-2-3 = 9;
        // alap(a) = min(9-4, 3-1) - 2 = 0.
        assert_eq!(a.alap, vec![0.0, 9.0, 3.0, 14.0]);
        let slack = a.slack();
        assert_eq!(slack, vec![0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn critical_tasks_follow_cp() {
        let g = fork_join();
        let a = GraphAnalysis::analyze(&g);
        let crit = a.critical_tasks(1e-9);
        let names: Vec<&str> = crit.iter().map(|&t| g.task(t).name.as_str()).collect();
        assert_eq!(names, vec!["a", "c", "d"]);
    }

    #[test]
    fn profile_width_depth() {
        let g = fork_join();
        assert_eq!(parallelism_profile(&g), vec![1, 2, 1]);
        assert_eq!(width(&g), 2);
        assert_eq!(depth(&g), 3);
    }

    #[test]
    fn avg_parallelism() {
        let g = fork_join();
        // total weight 11, comp-only cp = 2+5+1 = 8
        assert!((average_parallelism(&g) - 11.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn stats_summary() {
        let g = fork_join();
        let s = stats(&g);
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.width, 2);
        assert_eq!(s.cp_length, 8.0);
    }

    #[test]
    fn empty_profile() {
        let g = TaskGraph::new("e");
        assert!(parallelism_profile(&g).is_empty());
        assert_eq!(width(&g), 0);
        assert_eq!(depth(&g), 0);
        assert_eq!(average_parallelism(&g), 0.0);
    }

    #[test]
    fn independent_tasks_profile() {
        let mut g = TaskGraph::new("ind");
        for i in 0..5 {
            g.add_task(format!("t{i}"), 1.0);
        }
        assert_eq!(parallelism_profile(&g), vec![5]);
        assert_eq!(width(&g), 5);
        let a = GraphAnalysis::analyze(&g);
        assert_eq!(a.cp_length, 1.0);
        assert!(a.t_level.iter().all(|&x| x == 0.0));
    }
}
