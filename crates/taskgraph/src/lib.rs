#![warn(missing_docs)]

//! # banger-taskgraph — PITL hierarchical dataflow graphs
//!
//! This crate implements the *programming-in-the-large* (PITL) layer of the
//! Banger environment (Lewis, ICPP 1994): a parallel program is a
//! **hierarchical dataflow graph** whose nodes are either primitive
//! sequential tasks (written in the PITS calculator language), compound
//! nodes that expand into lower-level dataflow graphs, or *storage* items
//! (the open rectangles of the paper's Figure 1); arcs carry named data
//! values and induce precedence.
//!
//! Two graph representations are provided:
//!
//! * [`hierarchy::HierGraph`] — the user-facing hierarchical design, exactly
//!   what Banger's graph editor manipulated;
//! * [`graph::TaskGraph`] — the flat weighted DAG the scheduler consumes,
//!   produced by [`hierarchy::HierGraph::flatten`].
//!
//! The crate also contains graph [`analysis`] (topological order, critical
//! path, t-/b-levels, parallelism profile), workload [`generators`] used by
//! the benchmark harness (the paper's LU decomposition design of Figure 1
//! and a family of classic scheduling workloads), and [`dot`] rendering for
//! instant visual feedback.
//!
//! ## Example
//!
//! ```
//! use banger_taskgraph::graph::TaskGraph;
//!
//! let mut g = TaskGraph::new("demo");
//! let a = g.add_task("load", 10.0);
//! let b = g.add_task("compute", 50.0);
//! let c = g.add_task("store", 5.0);
//! g.add_edge(a, b, 8.0, "x").unwrap();
//! g.add_edge(b, c, 8.0, "y").unwrap();
//! assert_eq!(g.topo_order().unwrap(), vec![a, b, c]);
//! assert_eq!(g.critical_path_length(), 65.0);
//! ```

pub mod analysis;
pub mod dot;
pub mod error;
pub mod generators;
pub mod graph;
pub mod hierarchy;
pub mod textfmt;

pub use error::GraphError;
pub use graph::{EdgeId, Task, TaskGraph, TaskId};
pub use hierarchy::{HierGraph, HierNodeId, NodeKind};
