//! Graphviz DOT rendering — the headless stand-in for Banger's graph
//! editor display. Tasks render as ovals, storage as open rectangles and
//! compound nodes as bold clusters, matching the visual vocabulary of the
//! paper's Figure 1.

use crate::graph::TaskGraph;
use crate::hierarchy::{HierGraph, NodeKind};
use std::fmt::Write as _;

/// Renders a flat task graph as DOT. Node labels include the task weight;
/// edge labels include the variable name and volume.
pub fn taskgraph_to_dot(g: &TaskGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(g.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=oval];");
    for (id, t) in g.tasks() {
        let _ = writeln!(
            out,
            "  t{} [label=\"{}\\nw={}\"];",
            id.0,
            escape(&t.name),
            t.weight
        );
    }
    for (_, e) in g.edges() {
        let _ = writeln!(
            out,
            "  t{} -> t{} [label=\"{} ({})\"];",
            e.src.0,
            e.dst.0,
            escape(&e.label),
            e.volume
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a hierarchical design as DOT, expanding compound nodes into
/// `cluster` subgraphs so every level is visible at once.
pub fn hiergraph_to_dot(g: &HierGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(g.name()));
    let _ = writeln!(out, "  rankdir=TB; compound=true;");
    let mut counter = 0usize;
    emit_level(g, "", &mut out, &mut counter);
    out.push_str("}\n");
    out
}

fn emit_level(g: &HierGraph, prefix: &str, out: &mut String, counter: &mut usize) {
    // Node names must be globally unique: prefix with the path.
    let mangle = |id: u32| format!("n{}_{}", prefix.replace('.', "_"), id);
    for (id, node) in g.nodes() {
        match &node.kind {
            NodeKind::Task { weight, .. } => {
                let _ = writeln!(
                    out,
                    "  {} [shape=oval label=\"{}\\nw={}\"];",
                    mangle(id.0),
                    escape(&node.name),
                    weight
                );
            }
            NodeKind::Storage { size } => {
                let _ = writeln!(
                    out,
                    "  {} [shape=box style=\"\" label=\"{} [{}]\"];",
                    mangle(id.0),
                    escape(&node.name),
                    size
                );
            }
            NodeKind::Compound { expansion, .. } => {
                *counter += 1;
                let _ = writeln!(out, "  subgraph cluster_{counter} {{");
                let _ = writeln!(out, "    label=\"{}\"; style=bold;", escape(&node.name));
                let child_prefix = if prefix.is_empty() {
                    node.name.clone()
                } else {
                    format!("{prefix}.{}", node.name)
                };
                emit_level(expansion, &child_prefix, out, counter);
                let _ = writeln!(out, "  }}");
                // An anchor node lets this level's arcs attach to the cluster.
                let _ = writeln!(out, "  {} [shape=point style=invis];", mangle(id.0));
            }
        }
    }
    for arc in g.arcs() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            mangle(arc.src.0),
            mangle(arc.dst.0),
            escape(&arc.label)
        );
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn flat_dot_contains_nodes_and_edges() {
        let g = generators::fork_join(2, 1.0, 2.0, 1.0, 3.0);
        let dot = taskgraph_to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("fork"));
        assert!(dot.contains("join"));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn hier_dot_contains_clusters_and_storage_boxes() {
        let h = generators::lu_hierarchical(3);
        let dot = hiergraph_to_dot(&h);
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("subgraph cluster_2"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("Factor"));
        assert!(dot.contains("fan1"));
    }

    #[test]
    fn escaping() {
        let mut g = TaskGraph::new("has\"quote");
        g.add_task("a\"b", 1.0);
        let dot = taskgraph_to_dot(&g);
        assert!(dot.contains("has\\\"quote"));
        assert!(dot.contains("a\\\"b"));
    }

    #[test]
    fn dot_node_names_unique_across_levels() {
        let h = generators::lu_hierarchical(2);
        let dot = hiergraph_to_dot(&h);
        // Factor and Solve levels both have a node 0; mangling must keep
        // them distinct.
        assert!(dot.contains("n_0"), "top-level node");
        assert!(dot.contains("nFactor_0"), "factor-level node:\n{dot}");
    }
}
