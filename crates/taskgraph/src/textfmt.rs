//! A tiny line-oriented text format for flat task graphs, so designs can be
//! saved, versioned and exchanged without pulling in a serialisation
//! framework (the paper's environment stored designs as documents).
//!
//! Format:
//!
//! ```text
//! taskgraph <name>
//! task <name> <weight> [program]
//! edge <src-name> <dst-name> <volume> <label>
//! ```
//!
//! Task names are written with `%20`-style escaping for whitespace, so the
//! format round-trips arbitrary names.

use crate::error::GraphError;
use crate::graph::TaskGraph;
use std::fmt::Write as _;

fn enc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '%' => out.push_str("%25"),
            _ => out.push(c),
        }
    }
    out
}

fn dec(s: &str) -> Result<String, GraphError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '%' {
            let h1 = chars.next();
            let h2 = chars.next();
            let (h1, h2) = match (h1, h2) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(GraphError::Parse(format!("truncated escape in {s:?}"))),
            };
            let byte = u8::from_str_radix(&format!("{h1}{h2}"), 16)
                .map_err(|_| GraphError::Parse(format!("bad escape %{h1}{h2}")))?;
            out.push(byte as char);
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Serialises a flat graph to the text format.
pub fn to_text(g: &TaskGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "taskgraph {}", enc(g.name()));
    for (_, t) in g.tasks() {
        match &t.program {
            Some(p) => {
                let _ = writeln!(out, "task {} {} {}", enc(&t.name), t.weight, enc(p));
            }
            None => {
                let _ = writeln!(out, "task {} {}", enc(&t.name), t.weight);
            }
        }
    }
    for (_, e) in g.edges() {
        let _ = writeln!(
            out,
            "edge {} {} {} {}",
            enc(&g.task(e.src).name),
            enc(&g.task(e.dst).name),
            e.volume,
            enc(&e.label)
        );
    }
    out
}

/// Parses the text format back into a graph. Unknown directives, missing
/// fields and unknown task names are reported as [`GraphError::Parse`].
pub fn from_text(text: &str) -> Result<TaskGraph, GraphError> {
    let mut g: Option<TaskGraph> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let directive = parts.next().unwrap();
        let ctx = |msg: &str| GraphError::Parse(format!("line {}: {msg}", lineno + 1));
        match directive {
            "taskgraph" => {
                let name = dec(parts.next().ok_or_else(|| ctx("missing graph name"))?)?;
                if g.is_some() {
                    return Err(ctx("duplicate taskgraph header"));
                }
                g = Some(TaskGraph::new(name));
            }
            "task" => {
                let g = g.as_mut().ok_or_else(|| ctx("task before header"))?;
                let name = dec(parts.next().ok_or_else(|| ctx("missing task name"))?)?;
                let weight: f64 = parts
                    .next()
                    .ok_or_else(|| ctx("missing weight"))?
                    .parse()
                    .map_err(|_| ctx("weight is not a number"))?;
                let id = g.try_add_task(name, weight)?;
                if let Some(p) = parts.next() {
                    g.set_program(id, dec(p)?)?;
                }
            }
            "edge" => {
                let g = g.as_mut().ok_or_else(|| ctx("edge before header"))?;
                let src = dec(parts.next().ok_or_else(|| ctx("missing src"))?)?;
                let dst = dec(parts.next().ok_or_else(|| ctx("missing dst"))?)?;
                let volume: f64 = parts
                    .next()
                    .ok_or_else(|| ctx("missing volume"))?
                    .parse()
                    .map_err(|_| ctx("volume is not a number"))?;
                let label = dec(parts.next().ok_or_else(|| ctx("missing label"))?)?;
                let s = g
                    .find_task(&src)
                    .ok_or_else(|| ctx(&format!("unknown task {src:?}")))?;
                let d = g
                    .find_task(&dst)
                    .ok_or_else(|| ctx(&format!("unknown task {dst:?}")))?;
                g.add_edge(s, d, volume, label)?;
            }
            other => return Err(ctx(&format!("unknown directive {other:?}"))),
        }
    }
    g.ok_or_else(|| GraphError::Parse("empty document".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_simple() {
        let g = generators::gauss_elimination(4, 2.0, 3.0);
        let text = to_text(&g);
        let back = from_text(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn round_trip_with_programs_and_spaces() {
        let mut g = TaskGraph::new("my design");
        let a = g.add_task("task one", 1.5);
        let b = g.add_task("task%two", 2.5);
        g.set_program(a, "prog a").unwrap();
        g.add_edge(a, b, 3.0, "var x").unwrap();
        let back = from_text(&to_text(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\ntaskgraph t\ntask a 1\n# more\ntask b 2\nedge a b 0.5 x\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(from_text("").is_err());
        assert!(from_text("task a 1\n").is_err(), "task before header");
        assert!(from_text("taskgraph t\ntask a notanumber\n").is_err());
        assert!(
            from_text("taskgraph t\nedge a b 1 x\n").is_err(),
            "unknown tasks"
        );
        assert!(from_text("taskgraph t\nbogus\n").is_err());
        assert!(
            from_text("taskgraph a\ntaskgraph b\n").is_err(),
            "duplicate header"
        );
        assert!(
            from_text("taskgraph t\ntask a%GG 1\n").is_err(),
            "bad escape"
        );
    }

    #[test]
    fn error_mentions_line_number() {
        let err = from_text("taskgraph t\ntask a x\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
