//! Workload generators.
//!
//! The paper's running example (Figure 1) is the hierarchical LU
//! decomposition design for a 3-by-3 system `Ax = b`; [`lu_hierarchical`]
//! builds that design for arbitrary `n`. The remaining generators produce
//! the classic task-graph families used throughout the scheduling
//! literature the paper builds on (El-Rewini & Lewis 1990; Kruatrachue
//! 1987): chains, fork/joins, trees, wavefront lattices, FFT butterflies,
//! Gaussian-elimination and Cholesky graphs, divide-and-conquer shapes,
//! and seeded random layered DAGs.
//!
//! All weights are deterministic functions of the parameters (except the
//! explicitly seeded random generator), so benchmark runs are repeatable.

use crate::graph::{TaskGraph, TaskId};
use crate::hierarchy::HierGraph;
use rand::Rng;

/// A linear chain of `n` tasks, each of weight `w`, joined by arcs of
/// volume `v`. Width 1 — the pathological no-parallelism case.
pub fn chain(n: usize, w: f64, v: f64) -> TaskGraph {
    let mut g = TaskGraph::new(format!("chain-{n}"));
    let ids: Vec<TaskId> = (0..n).map(|i| g.add_task(format!("c{i}"), w)).collect();
    for pair in ids.windows(2) {
        g.add_edge(pair[0], pair[1], v, format!("d{}", pair[0].0))
            .unwrap();
    }
    g
}

/// `n` completely independent tasks of weight `w` — the embarrassingly
/// parallel case.
pub fn independent(n: usize, w: f64) -> TaskGraph {
    let mut g = TaskGraph::new(format!("indep-{n}"));
    for i in 0..n {
        g.add_task(format!("p{i}"), w);
    }
    g
}

/// A fork/join: one source of weight `w_src`, `width` parallel middles of
/// weight `w_mid`, one sink of weight `w_sink`; all arcs carry volume `v`.
///
/// With large `v` this is Kruatrachue's motivating case for task
/// duplication: copying the source onto every processor deletes the fan-out
/// messages.
pub fn fork_join(width: usize, w_src: f64, w_mid: f64, w_sink: f64, v: f64) -> TaskGraph {
    let mut g = TaskGraph::new(format!("forkjoin-{width}"));
    let src = g.add_task("fork", w_src);
    let sink = g.add_task("join", w_sink);
    for i in 0..width {
        let m = g.add_task(format!("m{i}"), w_mid);
        g.add_edge(src, m, v, format!("a{i}")).unwrap();
        g.add_edge(m, sink, v, format!("b{i}")).unwrap();
    }
    g
}

/// An in-tree (reduction): `arity.pow(depth)` leaves reduced level by level
/// to a single root. Task weight `w`, arc volume `v`.
pub fn intree(depth: u32, arity: usize, w: f64, v: f64) -> TaskGraph {
    assert!(arity >= 2, "reduction trees need arity >= 2");
    let mut g = TaskGraph::new(format!("intree-{depth}x{arity}"));
    let mut frontier: Vec<TaskId> = (0..arity.pow(depth))
        .map(|i| g.add_task(format!("leaf{i}"), w))
        .collect();
    let mut level = 0;
    while frontier.len() > 1 {
        level += 1;
        let mut next = Vec::with_capacity(frontier.len() / arity);
        for (j, group) in frontier.chunks(arity).enumerate() {
            let parent = g.add_task(format!("red{level}_{j}"), w);
            for (k, &c) in group.iter().enumerate() {
                g.add_edge(c, parent, v, format!("r{level}_{j}_{k}"))
                    .unwrap();
            }
            next.push(parent);
        }
        frontier = next;
    }
    g
}

/// An out-tree (broadcast): mirror image of [`intree`].
pub fn outtree(depth: u32, arity: usize, w: f64, v: f64) -> TaskGraph {
    assert!(arity >= 2, "broadcast trees need arity >= 2");
    let mut g = TaskGraph::new(format!("outtree-{depth}x{arity}"));
    let root = g.add_task("root", w);
    let mut frontier = vec![root];
    for level in 1..=depth {
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for (j, &p) in frontier.iter().enumerate() {
            for k in 0..arity {
                let c = g.add_task(format!("n{level}_{j}_{k}"), w);
                g.add_edge(p, c, v, format!("b{level}_{j}_{k}")).unwrap();
                next.push(c);
            }
        }
        frontier = next;
    }
    g
}

/// A wavefront lattice (`rows x cols` grid): task `(i, j)` depends on
/// `(i-1, j)` and `(i, j-1)` — the dependence structure of dynamic
/// programming and stencil sweeps.
pub fn lattice(rows: usize, cols: usize, w: f64, v: f64) -> TaskGraph {
    let mut g = TaskGraph::new(format!("lattice-{rows}x{cols}"));
    let mut ids = vec![vec![TaskId(0); cols]; rows];
    for (i, row) in ids.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = g.add_task(format!("g{i}_{j}"), w);
        }
    }
    for i in 0..rows {
        for j in 0..cols {
            if i > 0 {
                g.add_edge(ids[i - 1][j], ids[i][j], v, format!("v{i}_{j}"))
                    .unwrap();
            }
            if j > 0 {
                g.add_edge(ids[i][j - 1], ids[i][j], v, format!("h{i}_{j}"))
                    .unwrap();
            }
        }
    }
    g
}

/// The FFT butterfly dataflow: `points` must be a power of two; the graph
/// has `log2(points) + 1` ranks of `points` tasks, and each task at rank
/// `r+1` depends on two tasks at rank `r` (itself and its butterfly
/// partner).
pub fn fft(points: usize, w: f64, v: f64) -> TaskGraph {
    assert!(
        points.is_power_of_two() && points >= 2,
        "points must be a power of two >= 2"
    );
    let ranks = points.trailing_zeros() as usize;
    let mut g = TaskGraph::new(format!("fft-{points}"));
    let mut prev: Vec<TaskId> = (0..points)
        .map(|i| g.add_task(format!("in{i}"), w))
        .collect();
    for r in 0..ranks {
        let stride = 1usize << r;
        let cur: Vec<TaskId> = (0..points)
            .map(|i| g.add_task(format!("bf{r}_{i}"), w))
            .collect();
        for i in 0..points {
            let partner = i ^ stride;
            g.add_edge(prev[i], cur[i], v, format!("s{r}_{i}")).unwrap();
            g.add_edge(prev[partner], cur[i], v, format!("x{r}_{i}"))
                .unwrap();
        }
        prev = cur;
    }
    g
}

/// The Gaussian-elimination task graph for an `n x n` system, the flat
/// equivalent of the paper's LU example. For each pivot column `k` there is
/// a *fan* task `fan{k}` computing the multipliers `l(i,k) = a(i,k)/a(k,k)`
/// and, for each remaining column `j > k`, an update task `u{k}_{j}`
/// applying them. Dependencies:
///
/// * `u(k-1, k)   -> fan(k)`   (the pivot column must be up to date)
/// * `fan(k)      -> u(k, j)`  (updates need the multipliers)
/// * `u(k-1, j)   -> u(k, j)`  (column `j` must be up to date)
///
/// Weights model the shrinking active submatrix: work is proportional to
/// `n - k`. `unit_w`/`unit_v` scale computation and communication.
///
/// ```
/// use banger_taskgraph::{analysis, generators};
/// let g = generators::gauss_elimination(5, 2.0, 1.0);
/// assert_eq!(g.task_count(), 4 + 4 + 3 + 2 + 1);
/// assert_eq!(analysis::width(&g), 4);
/// ```
pub fn gauss_elimination(n: usize, unit_w: f64, unit_v: f64) -> TaskGraph {
    assert!(n >= 2, "elimination needs at least a 2x2 system");
    let mut g = TaskGraph::new(format!("gauss-{n}"));
    // fan[k], upd[k][j] for j in k+1..n
    let mut fan: Vec<TaskId> = Vec::with_capacity(n - 1);
    let mut upd: Vec<Vec<TaskId>> = Vec::with_capacity(n - 1);
    for k in 0..n - 1 {
        let rows = (n - k) as f64;
        let f = g.add_task(format!("fan{}", k + 1), rows * unit_w);
        if k > 0 {
            g.add_edge(upd[k - 1][0], f, rows * unit_v, format!("col{}", k + 1))
                .unwrap();
        }
        let mut row = Vec::with_capacity(n - k - 1);
        for j in k + 1..n {
            let u = g.add_task(format!("u{}_{}", k + 1, j + 1), rows * unit_w);
            g.add_edge(f, u, rows * unit_v, format!("l{}", k + 1))
                .unwrap();
            if k > 0 {
                g.add_edge(
                    upd[k - 1][j - k],
                    u,
                    rows * unit_v,
                    format!("a{}_{}", k + 1, j + 1),
                )
                .unwrap();
            }
            row.push(u);
        }
        fan.push(f);
        upd.push(row);
    }
    g
}

/// The paper's Figure 1: a two-level hierarchical dataflow design for LU
/// decomposition of an `n x n` system `Ax = b`.
///
/// The top level has storage `A`, `b`, `x` and two compound nodes:
/// `Factor` (expanding to the Gaussian-elimination fan/update tasks, named
/// `fan1`, `fl21`, ... following the figure) and `Solve` (expanding to the
/// forward- and back-substitution chains). Every primitive task carries a
/// program name so an attached PITS library can execute the design.
pub fn lu_hierarchical(n: usize) -> HierGraph {
    assert!(n >= 2, "LU needs at least a 2x2 system");
    let vol_col = n as f64; // one column of the matrix
    let vol_mat = (n * n) as f64;
    let vol_vec = n as f64;

    // --- Factor: Gaussian elimination producing L and U ------------------
    let mut factor = HierGraph::new("Factor");
    let a_in = factor.add_storage("A", vol_mat);
    let lu_out = factor.add_storage("LU", vol_mat);
    let mut prev_fan_updates: Vec<crate::hierarchy::HierNodeId> = Vec::new();
    for k in 0..n - 1 {
        let rows = (n - k) as f64;
        let fan = factor.add_task_with_program(
            format!("fan{}", k + 1),
            rows * 3.0,
            format!("fan{}", k + 1),
        );
        if k == 0 {
            factor.add_arc(a_in, fan, "A", vol_mat).unwrap();
        } else {
            factor
                .add_arc(prev_fan_updates[0], fan, format!("col{}", k + 1), vol_col)
                .unwrap();
        }
        let mut row = Vec::new();
        for j in k + 1..n {
            // Figure 1 names these fl21, fl31, ... at the first level.
            let u = factor.add_task_with_program(
                format!("fl{}{}", j + 1, k + 1),
                rows * 2.0,
                format!("fl{}{}", j + 1, k + 1),
            );
            factor
                .add_arc(fan, u, format!("l{}", k + 1), vol_col)
                .unwrap();
            if k > 0 {
                factor
                    .add_arc(
                        prev_fan_updates[j - k],
                        u,
                        format!("a{}{}", j + 1, k + 1),
                        vol_col,
                    )
                    .unwrap();
            }
            row.push(u);
        }
        if k == n - 2 {
            // Only the final update task holds the complete factors: its
            // matrix accumulates every finalized pivot column along the
            // dependence chain (see banger-core's lu module for the message
            // protocol).
            debug_assert_eq!(row.len(), 1);
            factor.add_arc(row[0], lu_out, "LU", vol_mat).unwrap();
        }
        // row[0] is next stage's pivot column update; row[j-k] updates
        // column j+1.
        prev_fan_updates = row;
    }

    // --- Solve: forward then back substitution ---------------------------
    let mut solve = HierGraph::new("Solve");
    let lu_in = solve.add_storage("LU", vol_mat);
    let b_in = solve.add_storage("b", vol_vec);
    let x_out = solve.add_storage("x", vol_vec);
    let mut prev: Option<crate::hierarchy::HierNodeId> = None;
    for i in 0..n {
        let f = solve.add_task_with_program(
            format!("fwd{}", i + 1),
            (i + 1) as f64 * 2.0,
            format!("fwd{}", i + 1),
        );
        solve.add_arc(lu_in, f, "LU", vol_mat).unwrap();
        if i == 0 {
            solve.add_arc(b_in, f, "b", vol_vec).unwrap();
        }
        if let Some(p) = prev {
            solve.add_arc(p, f, format!("y{}", i), 1.0).unwrap();
        }
        prev = Some(f);
    }
    for i in (0..n).rev() {
        let bk = solve.add_task_with_program(
            format!("bck{}", i + 1),
            (n - i) as f64 * 2.0,
            format!("bck{}", i + 1),
        );
        solve.add_arc(lu_in, bk, "LU", vol_mat).unwrap();
        solve
            .add_arc(prev.unwrap(), bk, format!("z{}", i + 1), 1.0)
            .unwrap();
        if i == 0 {
            solve.add_arc(bk, x_out, "x", vol_vec).unwrap();
        }
        prev = Some(bk);
    }

    // --- Top level --------------------------------------------------------
    let mut top = HierGraph::new(format!("LU-{n}x{n}"));
    let a = top.add_storage("A", vol_mat);
    let b = top.add_storage("b", vol_vec);
    let x = top.add_storage("x", vol_vec);
    let fc = top.add_compound("Factor", factor);
    let sc = top.add_compound("Solve", solve);
    top.bind_input(fc, "A", a_in).unwrap();
    top.bind_output(fc, "LU", lu_out).unwrap();
    top.bind_input(sc, "LU", lu_in).unwrap();
    top.bind_input(sc, "b", b_in).unwrap();
    top.bind_output(sc, "x", x_out).unwrap();
    top.add_arc(a, fc, "A", vol_mat).unwrap();
    top.add_arc(fc, sc, "LU", vol_mat).unwrap();
    top.add_arc(b, sc, "b", vol_vec).unwrap();
    top.add_arc(sc, x, "x", vol_vec).unwrap();
    top
}

/// The column-Cholesky task graph for an `n x n` SPD system: for each
/// column `k` there is a factor task `chol{k}` (computes the diagonal and
/// scales the column) and, for each later column `j > k`, an update task
/// `cupd{k}_{j}`. Dependencies mirror [`gauss_elimination`] but the
/// update fan-in grows with `j` (column `j` receives updates from *every*
/// earlier column), giving a denser, more communication-bound graph.
pub fn cholesky(n: usize, unit_w: f64, unit_v: f64) -> TaskGraph {
    assert!(n >= 2, "Cholesky needs at least a 2x2 system");
    let mut g = TaskGraph::new(format!("cholesky-{n}"));
    let mut fac: Vec<TaskId> = Vec::with_capacity(n);
    let mut upd: Vec<Vec<TaskId>> = vec![Vec::new(); n]; // upd[j] = updates feeding column j
    for k in 0..n {
        let rows = (n - k) as f64;
        let f = g.add_task(format!("chol{}", k + 1), rows * unit_w);
        for (i, &u) in upd[k].iter().enumerate() {
            g.add_edge(u, f, rows * unit_v, format!("uc{}_{}", k + 1, i))
                .unwrap();
        }
        for (j, feeds) in upd.iter_mut().enumerate().take(n).skip(k + 1) {
            let u = g.add_task(format!("cupd{}_{}", k + 1, j + 1), rows * unit_w * 0.5);
            g.add_edge(f, u, rows * unit_v, format!("col{}", k + 1))
                .unwrap();
            feeds.push(u);
        }
        fac.push(f);
    }
    let _ = fac;
    g
}

/// A divide-and-conquer graph: a binary *divide* tree of the given depth,
/// leaf *solve* tasks, and a mirror-image *merge* tree. Total tasks
/// `3 * 2^depth - 2`. The classic recursive-algorithm shape (mergesort,
/// quadrature, Barnes–Hut force splitting).
pub fn divide_conquer(depth: u32, w_divide: f64, w_solve: f64, w_merge: f64, v: f64) -> TaskGraph {
    let mut g = TaskGraph::new(format!("divcon-{depth}"));
    // Divide tree.
    let root = g.add_task("div0", w_divide);
    let mut frontier = vec![root];
    for level in 1..=depth {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for (i, &p) in frontier.iter().enumerate() {
            for side in 0..2 {
                let c = g.add_task(format!("div{level}_{}", i * 2 + side), w_divide);
                g.add_edge(p, c, v, format!("d{level}_{}_{side}", i))
                    .unwrap();
                next.push(c);
            }
        }
        frontier = next;
    }
    // Leaves solve; then merge back up.
    let mut merged: Vec<TaskId> = frontier
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let s = g.add_task(format!("solve{i}"), w_solve);
            g.add_edge(d, s, v, format!("s{i}")).unwrap();
            s
        })
        .collect();
    let mut level = 0;
    while merged.len() > 1 {
        level += 1;
        let mut next = Vec::with_capacity(merged.len() / 2);
        for (i, pair) in merged.chunks(2).enumerate() {
            let m = g.add_task(format!("merge{level}_{i}"), w_merge);
            for (k, &c) in pair.iter().enumerate() {
                g.add_edge(c, m, v, format!("m{level}_{i}_{k}")).unwrap();
            }
            next.push(m);
        }
        merged = next;
    }
    g
}

/// Parameters for [`random_layered`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSpec {
    /// Number of layers.
    pub layers: usize,
    /// Tasks per layer.
    pub width: usize,
    /// Probability of an arc between consecutive-layer task pairs.
    pub edge_prob: f64,
    /// Task weight range (inclusive).
    pub weight: (f64, f64),
    /// Arc volume range (inclusive).
    pub volume: (f64, f64),
}

impl Default for RandomSpec {
    fn default() -> Self {
        RandomSpec {
            layers: 6,
            width: 8,
            edge_prob: 0.35,
            weight: (5.0, 50.0),
            volume: (1.0, 20.0),
        }
    }
}

/// A seeded random layered DAG. Every non-entry task is guaranteed at
/// least one predecessor in the previous layer, so the depth equals
/// `spec.layers`.
pub fn random_layered<R: Rng>(rng: &mut R, spec: &RandomSpec) -> TaskGraph {
    assert!(spec.layers >= 1 && spec.width >= 1);
    let mut g = TaskGraph::new(format!("random-{}x{}", spec.layers, spec.width));
    let mut prev: Vec<TaskId> = Vec::new();
    for l in 0..spec.layers {
        let cur: Vec<TaskId> = (0..spec.width)
            .map(|i| {
                let w = rng.gen_range(spec.weight.0..=spec.weight.1);
                g.add_task(format!("r{l}_{i}"), w)
            })
            .collect();
        if l > 0 {
            for (i, &t) in cur.iter().enumerate() {
                let mut any = false;
                for (j, &p) in prev.iter().enumerate() {
                    if rng.gen_bool(spec.edge_prob) {
                        let v = rng.gen_range(spec.volume.0..=spec.volume.1);
                        g.add_edge(p, t, v, format!("e{l}_{j}_{i}")).unwrap();
                        any = true;
                    }
                }
                if !any {
                    let j = rng.gen_range(0..prev.len());
                    let v = rng.gen_range(spec.volume.0..=spec.volume.1);
                    g.add_edge(prev[j], t, v, format!("e{l}_{j}_{i}")).unwrap();
                }
            }
        }
        prev = cur;
    }
    g
}

/// A seeded random layered DAG with **bounded in-degree**, built in
/// `O(n · deg)` — the scale companion to [`random_layered`], whose
/// coin-flip-per-pair construction is `O(layers · width²)` and
/// impractical at the 10k–100k tasks the scheduler benchmarks need.
///
/// Every task in layer `l > 0` receives exactly `min(deg, width)`
/// predecessors sampled (with replacement, distinct labels) from layer
/// `l - 1`, so depth equals `layers` and the edge count is
/// `≈ n · deg`. Weights and volumes are drawn from the inclusive ranges.
/// Deterministic for a given `(seed, layers, width, deg)` — benchmark and
/// CI graphs are repeatable by construction.
pub fn layered_random(
    seed: u64,
    layers: usize,
    width: usize,
    deg: usize,
    weight: (f64, f64),
    volume: (f64, f64),
) -> TaskGraph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    assert!(layers >= 1 && width >= 1 && deg >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::new(format!("layered-{layers}x{width}d{deg}"));
    let mut prev: Vec<TaskId> = Vec::new();
    for l in 0..layers {
        let cur: Vec<TaskId> = (0..width)
            .map(|i| {
                let w = rng.gen_range(weight.0..=weight.1);
                g.add_task(format!("r{l}_{i}"), w)
            })
            .collect();
        if l > 0 {
            let fan = deg.min(prev.len());
            for (i, &t) in cur.iter().enumerate() {
                for k in 0..fan {
                    let j = rng.gen_range(0..prev.len());
                    let v = rng.gen_range(volume.0..=volume.1);
                    g.add_edge(prev[j], t, v, format!("e{l}_{i}_{k}")).unwrap();
                }
            }
        }
        prev = cur;
    }
    g
}

/// The right-looking **tiled LU** task graph over a `tiles × tiles` tile
/// grid — the dense-linear-algebra DAG that optimizer-expanded designs
/// hand the scheduler at scale (`≈ tiles³/3` tasks; `tiles = 67` is just
/// over 100k). Per elimination step `k`:
///
/// * `getrf{k}` factors the diagonal tile;
/// * `trsm{k}_r{j}` / `trsm{k}_c{i}` solve the remaining row/column
///   panels (`j, i > k`), each depending on `getrf{k}`;
/// * `gemm{k}_{i}_{j}` updates trailing tile `(i, j)`, depending on
///   `trsm{k}_c{i}` and `trsm{k}_r{j}`.
///
/// Each step-`k` task on tile `(i, j)` also depends on the step-`k-1`
/// update of the same tile, giving the classic shrinking-wavefront
/// structure. Weights model the per-tile kernel costs (`getrf` heaviest),
/// scaled by `unit_w`; every message carries one tile (`unit_v`).
pub fn tiled_lu(tiles: usize, unit_w: f64, unit_v: f64) -> TaskGraph {
    assert!(tiles >= 2, "tiled LU needs at least a 2x2 tile grid");
    let mut g = TaskGraph::new(format!("tiled-lu-{tiles}"));
    // prev[i][j] = the step-(k-1) task that last wrote tile (i, j),
    // indexed relative to the trailing submatrix.
    let mut prev: Vec<Vec<Option<TaskId>>> = vec![vec![None; tiles]; tiles];
    for k in 0..tiles {
        let getrf = g.add_task(format!("getrf{k}"), 3.0 * unit_w);
        if let Some(p) = prev[k][k] {
            g.add_edge(p, getrf, unit_v, format!("a{k}_{k}_{k}"))
                .unwrap();
        }
        prev[k][k] = Some(getrf);
        // Row and column panels. (`prev` is indexed both `[k][j]` and
        // `[j][k]` here, so the iterator form clippy suggests can't apply.)
        #[allow(clippy::needless_range_loop)]
        for j in k + 1..tiles {
            let r = g.add_task(format!("trsm{k}_r{j}"), 2.0 * unit_w);
            g.add_edge(getrf, r, unit_v, format!("u{k}_r{j}")).unwrap();
            if let Some(p) = prev[k][j] {
                g.add_edge(p, r, unit_v, format!("a{k}_{k}_{j}")).unwrap();
            }
            prev[k][j] = Some(r);

            let c = g.add_task(format!("trsm{k}_c{j}"), 2.0 * unit_w);
            g.add_edge(getrf, c, unit_v, format!("l{k}_c{j}")).unwrap();
            if let Some(p) = prev[j][k] {
                g.add_edge(p, c, unit_v, format!("a{k}_{j}_{k}")).unwrap();
            }
            prev[j][k] = Some(c);
        }
        // Trailing updates.
        for i in k + 1..tiles {
            for j in k + 1..tiles {
                let u = g.add_task(format!("gemm{k}_{i}_{j}"), unit_w);
                let col = prev[i][k].expect("column panel placed above");
                let row = prev[k][j].expect("row panel placed above");
                g.add_edge(col, u, unit_v, format!("l{k}_{i}_{j}")).unwrap();
                g.add_edge(row, u, unit_v, format!("u{k}_{i}_{j}")).unwrap();
                if let Some(p) = prev[i][j] {
                    g.add_edge(p, u, unit_v, format!("a{k}_{i}_{j}")).unwrap();
                }
                prev[i][j] = Some(u);
            }
        }
    }
    g
}

/// A time-stepped 1-D three-point **stencil** sweep: task `(t, i)` at time
/// step `t` depends on `(t-1, i-1)`, `(t-1, i)` and `(t-1, i+1)` (clamped
/// at the boundaries). `steps × points` tasks, `≈ 3 n` edges, constant
/// width `points` — the iterative-solver shape whose ready set stays wide
/// for the whole run, the worst case for linear ready-set scans.
pub fn stencil(steps: usize, points: usize, w: f64, v: f64) -> TaskGraph {
    assert!(steps >= 1 && points >= 1);
    let mut g = TaskGraph::new(format!("stencil-{steps}x{points}"));
    let mut prev: Vec<TaskId> = Vec::new();
    for t in 0..steps {
        let cur: Vec<TaskId> = (0..points)
            .map(|i| g.add_task(format!("s{t}_{i}"), w))
            .collect();
        if t > 0 {
            for (i, &task) in cur.iter().enumerate() {
                let lo = i.saturating_sub(1);
                let hi = (i + 1).min(points - 1);
                for (k, j) in (lo..=hi).enumerate() {
                    g.add_edge(prev[j], task, v, format!("n{t}_{i}_{k}"))
                        .unwrap();
                }
            }
        }
        prev = cur;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_shape() {
        let g = chain(5, 2.0, 1.0);
        assert_eq!(g.task_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(analysis::width(&g), 1);
        assert_eq!(analysis::depth(&g), 5);
        assert_eq!(g.critical_path_length(), 10.0);
    }

    #[test]
    fn independent_shape() {
        let g = independent(7, 3.0);
        assert_eq!(g.task_count(), 7);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(analysis::width(&g), 7);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(4, 1.0, 10.0, 1.0, 5.0);
        assert_eq!(g.task_count(), 6);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(analysis::width(&g), 4);
        assert_eq!(g.critical_path_length(), 12.0);
    }

    #[test]
    fn intree_shape() {
        let g = intree(3, 2, 1.0, 1.0);
        // 8 leaves + 4 + 2 + 1 = 15 nodes, 14 edges
        assert_eq!(g.task_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert_eq!(g.exit_tasks().len(), 1);
        assert_eq!(g.entry_tasks().len(), 8);
        assert!(g.is_dag());
    }

    #[test]
    fn outtree_shape() {
        let g = outtree(2, 3, 1.0, 1.0);
        // 1 + 3 + 9 = 13 nodes
        assert_eq!(g.task_count(), 13);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.entry_tasks().len(), 1);
        assert_eq!(g.exit_tasks().len(), 9);
    }

    #[test]
    fn lattice_shape() {
        let g = lattice(3, 4, 1.0, 1.0);
        assert_eq!(g.task_count(), 12);
        // vertical: 2*4 = 8; horizontal: 3*3 = 9
        assert_eq!(g.edge_count(), 17);
        assert_eq!(analysis::depth(&g), 6); // 3+4-1 anti-diagonals
        assert!(g.is_dag());
    }

    #[test]
    fn fft_shape() {
        let g = fft(8, 1.0, 1.0);
        // 4 ranks of 8
        assert_eq!(g.task_count(), 32);
        assert_eq!(g.edge_count(), 48);
        assert_eq!(analysis::width(&g), 8);
        assert_eq!(analysis::depth(&g), 4);
        assert!(g.is_dag());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        fft(6, 1.0, 1.0);
    }

    #[test]
    fn gauss_shape() {
        let g = gauss_elimination(4, 1.0, 1.0);
        // k=0: fan + 3 upd; k=1: fan + 2; k=2: fan + 1 => 9 tasks
        assert_eq!(g.task_count(), 9);
        assert!(g.is_dag());
        assert_eq!(g.entry_tasks().len(), 1);
        // weights shrink with k
        let f1 = g.find_task("fan1").unwrap();
        let f3 = g.find_task("fan3").unwrap();
        assert!(g.task(f1).weight > g.task(f3).weight);
    }

    #[test]
    fn gauss_dependencies() {
        let g = gauss_elimination(3, 1.0, 1.0);
        let fan2 = g.find_task("fan2").unwrap();
        let u12 = g.find_task("u1_2").unwrap();
        // fan2 must wait for the first update of column 2.
        assert!(g.predecessors(fan2).any(|p| p == u12));
    }

    #[test]
    fn lu_hierarchical_flattens_to_dag() {
        for n in 2..=5 {
            let h = lu_hierarchical(n);
            assert_eq!(h.depth(), 2, "two-level design per Figure 1");
            let f = h.flatten().unwrap();
            assert!(f.graph.is_dag());
            // Factor tasks: sum_{k=1}^{n-1} (n-k) + (n-1) fans; Solve: 2n.
            let expected = (n - 1) + (n - 1) * n / 2 + 2 * n;
            assert_eq!(f.graph.task_count(), expected, "n={n}");
            // External ports are A, b (inputs) and x (output).
            let mut in_vars: Vec<&str> = f.inputs.iter().map(|p| p.var.as_str()).collect();
            in_vars.sort_unstable();
            assert_eq!(in_vars, vec!["A", "b"]);
            assert_eq!(f.outputs.len(), 1);
            assert_eq!(f.outputs[0].var, "x");
        }
    }

    #[test]
    fn lu_figure1_names_present() {
        let f = lu_hierarchical(3).flatten().unwrap();
        for name in [
            "Factor.fan1",
            "Factor.fl21",
            "Factor.fl31",
            "Factor.fan2",
            "Factor.fl32",
            "Solve.fwd1",
            "Solve.bck3",
        ] {
            assert!(f.graph.find_task(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn lu_programs_attached() {
        let f = lu_hierarchical(3).flatten().unwrap();
        for (_, t) in f.graph.tasks() {
            assert!(t.program.is_some(), "task {} lacks a program", t.name);
        }
    }

    #[test]
    fn cholesky_shape() {
        let g = cholesky(4, 1.0, 1.0);
        // factors: 4; updates: 3 + 2 + 1 = 6
        assert_eq!(g.task_count(), 10);
        assert!(g.is_dag());
        // column j's factor waits for j earlier updates
        let c3 = g.find_task("chol3").unwrap();
        assert_eq!(g.in_degree(c3), 2);
        let c4 = g.find_task("chol4").unwrap();
        assert_eq!(g.in_degree(c4), 3);
        // denser than gauss of the same size
        let gauss = gauss_elimination(4, 1.0, 1.0);
        assert!(g.ccr() >= gauss.ccr() * 0.5);
    }

    #[test]
    fn divide_conquer_shape() {
        let g = divide_conquer(3, 1.0, 8.0, 2.0, 3.0);
        // 2^(3+2) - 2 = 30: 15 divides + 8 solves + 7 merges
        assert_eq!(g.task_count(), 30);
        assert_eq!(g.entry_tasks().len(), 1);
        assert_eq!(g.exit_tasks().len(), 1);
        assert_eq!(analysis::width(&g), 8, "8 parallel solves");
        assert!(g.is_dag());
        // depth = 3 divides + solve + 3 merges + root = 8 levels
        assert_eq!(analysis::depth(&g), 8);
    }

    #[test]
    fn divide_conquer_depth_zero() {
        let g = divide_conquer(0, 1.0, 8.0, 2.0, 3.0);
        // one divide, one solve, no merges
        assert_eq!(g.task_count(), 2);
    }

    #[test]
    fn random_layered_deterministic_and_valid() {
        let spec = RandomSpec::default();
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let g1 = random_layered(&mut r1, &spec);
        let g2 = random_layered(&mut r2, &spec);
        assert_eq!(g1, g2, "same seed must give the same graph");
        assert!(g1.is_dag());
        assert_eq!(g1.task_count(), spec.layers * spec.width);
        assert_eq!(analysis::depth(&g1), spec.layers);
        // every non-entry task has a predecessor
        for t in g1.task_ids() {
            if t.index() >= spec.width {
                assert!(g1.in_degree(t) >= 1);
            }
        }
    }

    #[test]
    fn random_layered_different_seeds_differ() {
        let spec = RandomSpec::default();
        let g1 = random_layered(&mut StdRng::seed_from_u64(1), &spec);
        let g2 = random_layered(&mut StdRng::seed_from_u64(2), &spec);
        assert_ne!(g1, g2);
    }

    #[test]
    fn layered_random_bounded_degree() {
        let g = layered_random(7, 20, 50, 3, (1.0, 10.0), (1.0, 5.0));
        assert_eq!(g.task_count(), 1000);
        assert!(g.is_dag());
        assert_eq!(analysis::depth(&g), 20);
        // Exactly 3 in-edges per non-entry task (labels distinct, sources
        // may repeat), so edge count is linear in n — not width².
        assert_eq!(g.edge_count(), 19 * 50 * 3);
        for t in g.task_ids().skip(50) {
            assert_eq!(g.in_degree(t), 3);
        }
        // Deterministic per seed.
        assert_eq!(g, layered_random(7, 20, 50, 3, (1.0, 10.0), (1.0, 5.0)));
        assert_ne!(g, layered_random(8, 20, 50, 3, (1.0, 10.0), (1.0, 5.0)));
    }

    #[test]
    fn tiled_lu_shape() {
        let g = tiled_lu(4, 1.0, 1.0);
        // Per step k over T=4: 1 getrf + 2(T-1-k) trsm + (T-1-k)² gemm.
        let expect: usize = (0..4).map(|k| 1 + 2 * (3 - k) + (3 - k) * (3 - k)).sum();
        assert_eq!(g.task_count(), expect);
        assert!(g.is_dag());
        // Single entry (getrf0), single exit (getrf at the last step).
        assert_eq!(g.entry_tasks().len(), 1);
        assert_eq!(g.exit_tasks().len(), 1);
        // The final getrf depends on the step-(T-2) gemm of its own tile.
        let last = g.find_task("getrf3").unwrap();
        let gemm = g.find_task("gemm2_3_3").unwrap();
        assert!(g.predecessors(last).any(|p| p == gemm));
        // getrf dominates trsm dominates gemm in weight.
        let w = |name: &str| g.task(g.find_task(name).unwrap()).weight;
        assert!(w("getrf0") > w("trsm0_r1"));
        assert!(w("trsm0_r1") > w("gemm0_1_1"));
    }

    #[test]
    fn stencil_shape() {
        let g = stencil(5, 8, 2.0, 1.0);
        assert_eq!(g.task_count(), 40);
        assert!(g.is_dag());
        assert_eq!(analysis::depth(&g), 5);
        assert_eq!(analysis::width(&g), 8);
        // Interior tasks have 3 predecessors, boundary tasks 2.
        let mid = g.find_task("s3_4").unwrap();
        assert_eq!(g.in_degree(mid), 3);
        let edge = g.find_task("s3_0").unwrap();
        assert_eq!(g.in_degree(edge), 2);
        // 4 transitions × (2 boundary·2 + 6 interior·3) = 4 × 22 edges.
        assert_eq!(g.edge_count(), 4 * 22);
    }
}
