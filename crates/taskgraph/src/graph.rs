//! The flat weighted task DAG consumed by the scheduler.
//!
//! A [`TaskGraph`] is the result of flattening a hierarchical PITL design:
//! every node is a primitive sequential task with a computational *weight*
//! (abstract operation count; the machine model converts it to seconds),
//! and every arc carries a data *volume* (abstract data units) plus the
//! variable label shown on the arc in Banger's graph editor.

use crate::error::GraphError;
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a task in a [`TaskGraph`]; a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The task's position in the graph's dense node array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of an edge in a [`TaskGraph`]; a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge's position in the graph's dense edge array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A primitive sequential task (a PITS node after flattening).
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Human-readable name, e.g. `fan1` or `fl21` in the paper's Figure 1.
    pub name: String,
    /// Computational weight in abstract operations. The target machine's
    /// processor speed converts this to elapsed time.
    pub weight: f64,
    /// Optional name of the PITS program attached to this node; the
    /// executor looks task bodies up by this key.
    pub program: Option<String>,
}

/// A dataflow arc between two tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Producer task.
    pub src: TaskId,
    /// Consumer task.
    pub dst: TaskId,
    /// Data volume in abstract units (words); the machine model converts it
    /// to transmission time.
    pub volume: f64,
    /// Variable label drawn on the arc, e.g. `l21` or `u23`.
    pub label: String,
}

/// A flat, weighted, directed acyclic dataflow graph.
///
/// Nodes and edges are stored densely; adjacency is kept as per-node edge
/// lists so scheduling inner loops never allocate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    /// `succ[i]` lists edge ids whose `src` is task `i`.
    succ: Vec<Vec<EdgeId>>,
    /// `pred[i]` lists edge ids whose `dst` is task `i`.
    pred: Vec<Vec<EdgeId>>,
}

impl TaskGraph {
    /// Creates an empty graph with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraph {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task with the given name and weight, returning its id.
    ///
    /// Weights must be finite and non-negative; this is checked by
    /// [`TaskGraph::try_add_task`], which this method unwraps for the common
    /// case of literal weights.
    pub fn add_task(&mut self, name: impl Into<String>, weight: f64) -> TaskId {
        self.try_add_task(name, weight)
            .expect("task weight must be finite and non-negative")
    }

    /// Fallible variant of [`TaskGraph::add_task`].
    pub fn try_add_task(
        &mut self,
        name: impl Into<String>,
        weight: f64,
    ) -> Result<TaskId, GraphError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::BadWeight(weight));
        }
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task {
            name: name.into(),
            weight,
            program: None,
        });
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        Ok(id)
    }

    /// Attaches the name of a PITS program to a task.
    pub fn set_program(&mut self, t: TaskId, program: impl Into<String>) -> Result<(), GraphError> {
        let task = self
            .tasks
            .get_mut(t.index())
            .ok_or(GraphError::UnknownNode(t.0))?;
        task.program = Some(program.into());
        Ok(())
    }

    /// Adds a dataflow arc `src -> dst` carrying `volume` units of the
    /// variable `label`.
    pub fn add_edge(
        &mut self,
        src: TaskId,
        dst: TaskId,
        volume: f64,
        label: impl Into<String>,
    ) -> Result<EdgeId, GraphError> {
        if src.index() >= self.tasks.len() {
            return Err(GraphError::UnknownNode(src.0));
        }
        if dst.index() >= self.tasks.len() {
            return Err(GraphError::UnknownNode(dst.0));
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src.0));
        }
        if !volume.is_finite() || volume < 0.0 {
            return Err(GraphError::BadWeight(volume));
        }
        let label = label.into();
        if self.succ[src.index()]
            .iter()
            .any(|&e| self.edges[e.index()].dst == dst && self.edges[e.index()].label == label)
        {
            return Err(GraphError::DuplicateEdge {
                src: src.0,
                dst: dst.0,
                label,
            });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            src,
            dst,
            volume,
            label,
        });
        self.succ[src.index()].push(id);
        self.pred[dst.index()].push(id);
        Ok(id)
    }

    /// Returns the task record for `t`.
    #[inline]
    pub fn task(&self, t: TaskId) -> &Task {
        &self.tasks[t.index()]
    }

    /// Mutable access to the task record for `t`.
    #[inline]
    pub fn task_mut(&mut self, t: TaskId) -> &mut Task {
        &mut self.tasks[t.index()]
    }

    /// Returns the edge record for `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Iterates over all task ids in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates over all tasks with their ids.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// Iterates over all edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Edge ids leaving `t`.
    #[inline]
    pub fn out_edges(&self, t: TaskId) -> &[EdgeId] {
        &self.succ[t.index()]
    }

    /// Edge ids entering `t`.
    #[inline]
    pub fn in_edges(&self, t: TaskId) -> &[EdgeId] {
        &self.pred[t.index()]
    }

    /// Successor task ids of `t` (may repeat if parallel arcs exist).
    pub fn successors(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.succ[t.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].dst)
    }

    /// Predecessor task ids of `t` (may repeat if parallel arcs exist).
    pub fn predecessors(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.pred[t.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].src)
    }

    /// In-degree of `t`.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> usize {
        self.pred[t.index()].len()
    }

    /// Out-degree of `t`.
    #[inline]
    pub fn out_degree(&self, t: TaskId) -> usize {
        self.succ[t.index()].len()
    }

    /// Tasks with no predecessors (graph entries).
    pub fn entry_tasks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.in_degree(t) == 0)
            .collect()
    }

    /// Tasks with no successors (graph exits).
    pub fn exit_tasks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.out_degree(t) == 0)
            .collect()
    }

    /// Total computational weight of all tasks.
    pub fn total_weight(&self) -> f64 {
        self.tasks.iter().map(|t| t.weight).sum()
    }

    /// Total communication volume over all arcs.
    pub fn total_volume(&self) -> f64 {
        self.edges.iter().map(|e| e.volume).sum()
    }

    /// Communication-to-computation ratio (total volume / total weight).
    /// Returns 0 for an empty graph.
    pub fn ccr(&self) -> f64 {
        let w = self.total_weight();
        if w == 0.0 {
            0.0
        } else {
            self.total_volume() / w
        }
    }

    /// Kahn topological sort. Returns `Err(GraphError::Cycle)` when the
    /// graph is cyclic; the error names one node on a cycle.
    pub fn topo_order(&self) -> Result<Vec<TaskId>, GraphError> {
        let n = self.tasks.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.pred[i].len()).collect();
        let mut queue: VecDeque<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = queue.pop_front() {
            order.push(t);
            for &e in &self.succ[t.index()] {
                let d = self.edges[e.index()].dst;
                indeg[d.index()] -= 1;
                if indeg[d.index()] == 0 {
                    queue.push_back(d);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            let culprit = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
            Err(GraphError::Cycle(culprit as u32))
        }
    }

    /// True when the graph is acyclic.
    pub fn is_dag(&self) -> bool {
        self.topo_order().is_ok()
    }

    /// Length of the computation-only critical path (ignoring communication),
    /// i.e. the heaviest weight sum along any directed path. This is the
    /// absolute lower bound on parallel completion time on infinitely many
    /// unit-speed processors with free communication.
    pub fn critical_path_length(&self) -> f64 {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return f64::INFINITY,
        };
        let mut finish = vec![0.0f64; self.tasks.len()];
        let mut best = 0.0f64;
        for t in order {
            let start = self.pred[t.index()]
                .iter()
                .map(|&e| finish[self.edges[e.index()].src.index()])
                .fold(0.0f64, f64::max);
            finish[t.index()] = start + self.tasks[t.index()].weight;
            best = best.max(finish[t.index()]);
        }
        best
    }

    /// Returns one heaviest (computation-only) path through the graph as a
    /// task sequence from an entry to an exit. Empty for an empty graph.
    pub fn critical_path(&self) -> Vec<TaskId> {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return Vec::new(),
        };
        if order.is_empty() {
            return Vec::new();
        }
        let n = self.tasks.len();
        let mut finish = vec![0.0f64; n];
        let mut from: Vec<Option<TaskId>> = vec![None; n];
        for &t in &order {
            let mut start = 0.0f64;
            let mut via = None;
            for &e in &self.pred[t.index()] {
                let p = self.edges[e.index()].src;
                if finish[p.index()] > start {
                    start = finish[p.index()];
                    via = Some(p);
                }
            }
            from[t.index()] = via;
            finish[t.index()] = start + self.tasks[t.index()].weight;
        }
        let mut cur = self
            .task_ids()
            .max_by(|a, b| finish[a.index()].total_cmp(&finish[b.index()]))
            .unwrap();
        let mut path = vec![cur];
        while let Some(p) = from[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Scales every task weight by `f` (e.g. to model grain-size sweeps).
    pub fn scale_weights(&mut self, f: f64) {
        for t in &mut self.tasks {
            t.weight *= f;
        }
    }

    /// Scales every edge volume by `f` (e.g. to sweep the CCR).
    pub fn scale_volumes(&mut self, f: f64) {
        for e in &mut self.edges {
            e.volume *= f;
        }
    }

    /// Finds a task id by name (first match).
    pub fn find_task(&self, name: &str) -> Option<TaskId> {
        self.tasks
            .iter()
            .position(|t| t.name == name)
            .map(|i| TaskId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new("diamond");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 2.0);
        let c = g.add_task("c", 3.0);
        let d = g.add_task("d", 4.0);
        g.add_edge(a, b, 1.0, "x").unwrap();
        g.add_edge(a, c, 1.0, "y").unwrap();
        g.add_edge(b, d, 1.0, "u").unwrap();
        g.add_edge(c, d, 1.0, "v").unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.entry_tasks(), vec![a]);
        assert_eq!(g.exit_tasks(), vec![d]);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.out_degree(a), 2);
        let succ: Vec<_> = g.successors(a).collect();
        assert_eq!(succ, vec![b, c]);
        assert_eq!(g.task(c).name, "c");
        assert_eq!(g.find_task("b"), Some(b));
        assert_eq!(g.find_task("zzz"), None);
    }

    #[test]
    fn totals_and_ccr() {
        let (g, _) = diamond();
        assert_eq!(g.total_weight(), 10.0);
        assert_eq!(g.total_volume(), 4.0);
        assert!((g.ccr() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, _) = diamond();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = g
            .task_ids()
            .map(|t| order.iter().position(|&x| x == t).unwrap())
            .collect();
        for (_, e) in g.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new("cyc");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_edge(a, b, 0.0, "x").unwrap();
        g.add_edge(b, a, 0.0, "y").unwrap();
        assert!(matches!(g.topo_order(), Err(GraphError::Cycle(_))));
        assert!(!g.is_dag());
        assert!(g.critical_path_length().is_infinite());
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = TaskGraph::new("s");
        let a = g.add_task("a", 1.0);
        assert_eq!(g.add_edge(a, a, 0.0, "x"), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn duplicate_edge_rejected_but_distinct_labels_ok() {
        let mut g = TaskGraph::new("d");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_edge(a, b, 1.0, "x").unwrap();
        assert!(matches!(
            g.add_edge(a, b, 2.0, "x"),
            Err(GraphError::DuplicateEdge { .. })
        ));
        // Two different variables may flow between the same pair of tasks.
        g.add_edge(a, b, 2.0, "y").unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn bad_weights_rejected() {
        let mut g = TaskGraph::new("w");
        assert!(g.try_add_task("a", -1.0).is_err());
        assert!(g.try_add_task("a", f64::NAN).is_err());
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        assert!(g.add_edge(a, b, f64::INFINITY, "x").is_err());
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = TaskGraph::new("u");
        let a = g.add_task("a", 1.0);
        assert_eq!(
            g.add_edge(a, TaskId(9), 1.0, "x"),
            Err(GraphError::UnknownNode(9))
        );
        assert_eq!(
            g.add_edge(TaskId(9), a, 1.0, "x"),
            Err(GraphError::UnknownNode(9))
        );
    }

    #[test]
    fn critical_path_of_diamond() {
        let (g, [a, _, c, d]) = diamond();
        // a -> c -> d = 1 + 3 + 4 = 8
        assert_eq!(g.critical_path_length(), 8.0);
        assert_eq!(g.critical_path(), vec![a, c, d]);
    }

    #[test]
    fn critical_path_single_node() {
        let mut g = TaskGraph::new("one");
        let a = g.add_task("only", 7.0);
        assert_eq!(g.critical_path_length(), 7.0);
        assert_eq!(g.critical_path(), vec![a]);
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new("empty");
        assert!(g.is_empty());
        assert_eq!(g.topo_order().unwrap(), vec![]);
        assert_eq!(g.critical_path_length(), 0.0);
        assert!(g.critical_path().is_empty());
        assert_eq!(g.ccr(), 0.0);
    }

    #[test]
    fn scaling() {
        let (mut g, _) = diamond();
        g.scale_weights(2.0);
        g.scale_volumes(0.5);
        assert_eq!(g.total_weight(), 20.0);
        assert_eq!(g.total_volume(), 2.0);
    }

    #[test]
    fn program_attachment() {
        let (mut g, [a, ..]) = diamond();
        g.set_program(a, "sqrt_prog").unwrap();
        assert_eq!(g.task(a).program.as_deref(), Some("sqrt_prog"));
        assert!(g.set_program(TaskId(99), "x").is_err());
    }
}
