//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! `Mutex` / `Condvar` subset the executor uses, with parking_lot's API shape
//! (infallible `lock()`, `Condvar::wait(&mut guard)`, `into_inner()` returning
//! the value directly) implemented on top of `std::sync`. Poisoned std locks
//! are transparently recovered — parking_lot has no poisoning, and the
//! executor relies on that.

use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar::default()
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_handoff() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*state;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
