//! Priority-keyed ready queue shared by the task-first heuristics.
//!
//! Every list scheduler in this crate repeatedly asks the same question:
//! *which ready task has the highest static priority, ties toward the
//! lower task id?* The original implementations answered it with a linear
//! scan over a `Vec` of ready tasks plus a `position()`/`swap_remove`
//! deletion — `O(|ready|)` per step, `O(n^2)` per run on wide graphs. This
//! module replaces that with a binary heap so selection is `O(log n)`,
//! while producing **bit-identical** selection order:
//!
//! * priorities are static (computed once from the graph analysis before
//!   the run, never updated), so heap invariants never go stale;
//! * every task enters the queue exactly once (when its last predecessor
//!   completes) and leaves exactly once, so no lazy deletion is needed;
//! * the heap order `(priority, lower-id-wins)` is a *strict* total order
//!   because task ids are unique — the popped maximum is exactly the
//!   element the old `max_by(total_cmp.then(lower id))` scan returned.

use banger_taskgraph::{TaskGraph, TaskId};
use std::collections::BinaryHeap;

/// One heap entry: a ready task and its (static) selection priority.
#[derive(Debug, Clone, Copy)]
struct Entry {
    pri: f64,
    task: TaskId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: greatest priority first; among equal priorities the
        // *lower* task id must win, so the id comparison is reversed.
        self.pri
            .total_cmp(&other.pri)
            .then_with(|| other.task.cmp(&self.task))
    }
}

/// Readiness tracking plus `O(log n)` highest-priority selection.
///
/// `pop` returns the next task to place; after committing it, call
/// [`ReadyQueue::complete`] to promote successors whose last dependency it
/// was. The queue is exhausted exactly when every task has been popped
/// once (on a DAG).
pub(crate) struct ReadyQueue<'a> {
    priority: &'a [f64],
    remaining_preds: Vec<usize>,
    heap: BinaryHeap<Entry>,
}

impl<'a> ReadyQueue<'a> {
    /// Builds the queue over `g` with one static `priority` per task
    /// (greater = selected earlier; ties toward lower task id).
    pub fn new(g: &TaskGraph, priority: &'a [f64]) -> Self {
        let remaining_preds: Vec<usize> = g.task_ids().map(|t| g.in_degree(t)).collect();
        let mut heap = BinaryHeap::with_capacity(g.task_count());
        for t in g.task_ids() {
            if remaining_preds[t.index()] == 0 {
                heap.push(Entry {
                    pri: priority[t.index()],
                    task: t,
                });
            }
        }
        ReadyQueue {
            priority,
            remaining_preds,
            heap,
        }
    }

    /// Removes and returns the highest-priority ready task.
    pub fn pop(&mut self) -> Option<TaskId> {
        self.heap.pop().map(|e| e.task)
    }

    /// Marks `t` complete, promoting any successors whose last dependency
    /// it was.
    pub fn complete(&mut self, g: &TaskGraph, t: TaskId) {
        for s in g.successors(t) {
            let r = &mut self.remaining_preds[s.index()];
            *r -= 1;
            if *r == 0 {
                self.heap.push(Entry {
                    pri: self.priority[s.index()],
                    task: s,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_taskgraph::generators;

    /// The heap must reproduce the legacy linear-scan selection exactly:
    /// max priority, ties toward the lower task id.
    #[test]
    fn heap_matches_linear_scan_order() {
        let g = generators::gauss_elimination(6, 2.0, 1.0);
        // Adversarial priorities with lots of ties.
        let priority: Vec<f64> = g.task_ids().map(|t| (t.index() % 3) as f64).collect();

        // Legacy reference: Vec ready-set with max_by scan.
        let mut remaining: Vec<usize> = g.task_ids().map(|t| g.in_degree(t)).collect();
        let mut ready: Vec<TaskId> = g
            .task_ids()
            .filter(|&t| remaining[t.index()] == 0)
            .collect();
        let mut want = Vec::new();
        while !ready.is_empty() {
            let pos = (0..ready.len())
                .max_by(|&a, &b| {
                    priority[ready[a].index()]
                        .total_cmp(&priority[ready[b].index()])
                        .then(ready[b].0.cmp(&ready[a].0))
                })
                .unwrap();
            let t = ready.swap_remove(pos);
            want.push(t);
            for s in g.successors(t) {
                let r = &mut remaining[s.index()];
                *r -= 1;
                if *r == 0 {
                    ready.push(s);
                }
            }
        }

        let mut q = ReadyQueue::new(&g, &priority);
        let mut got = Vec::new();
        while let Some(t) = q.pop() {
            got.push(t);
            q.complete(&g, t);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn nan_priorities_still_total_order() {
        // total_cmp puts NaN above +inf; the queue must not panic or loop.
        let g = generators::independent(4, 1.0);
        let priority = [f64::NAN, 1.0, f64::INFINITY, f64::NAN];
        let mut q = ReadyQueue::new(&g, &priority);
        let mut got = Vec::new();
        while let Some(t) = q.pop() {
            got.push(t.index());
            q.complete(&g, t);
        }
        // NaN (positive) > inf > 1.0; equal NaNs tie toward lower id.
        assert_eq!(got, vec![0, 3, 2, 1]);
    }
}
