//! Text serialisation for schedules, so a computed schedule can be saved
//! next to its `.bang` project and replayed later (simulation, pinned
//! execution, code generation) without re-running the heuristic.
//!
//! Format:
//!
//! ```text
//! schedule <heuristic> tasks <n>
//! place <task-id> <proc-id> <start> <finish> primary|copy
//! ```

use crate::schedule::Schedule;
use banger_machine::ProcId;
use banger_taskgraph::TaskId;
use std::fmt::Write as _;

/// Serialises a schedule.
pub fn to_text(s: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schedule {} tasks {}", s.heuristic(), s.task_count());
    for p in s.placements() {
        let _ = writeln!(
            out,
            "place {} {} {} {} {}",
            p.task.0,
            p.proc.0,
            p.start,
            p.finish,
            if p.primary { "primary" } else { "copy" }
        );
    }
    out
}

/// Parses a schedule back. Errors are strings (one per offending line).
pub fn from_text(text: &str) -> Result<Schedule, String> {
    let mut schedule: Option<Schedule> = None;
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let ctx = |m: &str| format!("line {}: {m}", no + 1);
        match parts.next().unwrap() {
            "schedule" => {
                let heuristic = parts.next().ok_or_else(|| ctx("missing heuristic"))?;
                let kw = parts.next();
                if kw != Some("tasks") {
                    return Err(ctx("expected `tasks <n>`"));
                }
                let n: usize = parts
                    .next()
                    .ok_or_else(|| ctx("missing task count"))?
                    .parse()
                    .map_err(|_| ctx("bad task count"))?;
                schedule = Some(Schedule::new(heuristic.to_string(), n));
            }
            "place" => {
                let s = schedule
                    .as_mut()
                    .ok_or_else(|| ctx("place before header"))?;
                let mut num = |what: &str| -> Result<f64, String> {
                    parts
                        .next()
                        .ok_or_else(|| ctx(&format!("missing {what}")))?
                        .parse()
                        .map_err(|_| ctx(&format!("bad {what}")))
                };
                let task = num("task id")? as u32;
                let proc = num("proc id")? as u32;
                let start = num("start")?;
                let finish = num("finish")?;
                let primary = match parts.next() {
                    Some("primary") => true,
                    Some("copy") => false,
                    _ => return Err(ctx("expected `primary` or `copy`")),
                };
                s.place(TaskId(task), ProcId(proc), start, finish, primary);
            }
            other => return Err(ctx(&format!("unknown directive {other:?}"))),
        }
    }
    schedule.ok_or_else(|| "empty schedule document".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{Machine, MachineParams, Topology};
    use banger_taskgraph::generators;

    #[test]
    fn round_trip_all_heuristics() {
        let g = generators::gauss_elimination(5, 2.0, 1.0);
        let m = Machine::new(
            Topology::hypercube(2),
            MachineParams {
                msg_startup: 0.5,
                ..MachineParams::default()
            },
        );
        for h in crate::HEURISTIC_NAMES.iter().chain(["DSH"].iter()) {
            let s = crate::run_heuristic(h, &g, &m).unwrap();
            let text = to_text(&s);
            let back = from_text(&text).unwrap();
            assert_eq!(s, back, "{h}");
            back.validate(&g, &m).unwrap();
        }
    }

    #[test]
    fn duplicates_round_trip() {
        let g = generators::fork_join(4, 2.0, 10.0, 2.0, 15.0);
        let m = Machine::new(
            Topology::fully_connected(4),
            MachineParams {
                msg_startup: 1.0,
                ..MachineParams::default()
            },
        );
        let s = crate::dsh::dsh(&g, &m);
        let text = to_text(&s);
        assert!(text.contains("copy"), "DSH produces duplicates here");
        let back = from_text(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn parse_errors() {
        assert!(from_text("").is_err());
        assert!(from_text("place 0 0 0 1 primary").is_err(), "header first");
        assert!(from_text("schedule X tasks nope").is_err());
        assert!(from_text("schedule X tasks 1\nplace 0 0 0 1 maybe").is_err());
        assert!(from_text("schedule X tasks 1\nbogus").is_err());
        let err = from_text("schedule X tasks 1\nplace 0 0 zero 1 primary").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn comments_ignored() {
        let s = from_text("# saved by banger\nschedule ETF tasks 1\nplace 0 0 0 2.5 primary\n")
            .unwrap();
        assert_eq!(s.heuristic(), "ETF");
        assert_eq!(s.makespan(), 2.5);
    }
}
