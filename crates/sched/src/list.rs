//! Classic list-scheduling heuristics: HLFET, MCP, ETF and DLS.
//!
//! All four share the [`Engine`]'s analytic communication model and
//! insertion-based slot search; they differ only in how the next
//! `(task, processor)` decision is made:
//!
//! * **HLFET** (Highest Level First with Estimated Times, Adam/Chandy/
//!   Dickson 1974): pick the ready task with the greatest *static level*
//!   (computation-only bottom level), then the processor giving it the
//!   earliest start.
//! * **MCP** (Modified Critical Path, Wu & Gajski 1990): pick the ready
//!   task with the smallest ALAP time, then the earliest-start processor.
//! * **ETF** (Earliest Task First, Hwang et al. 1989): scan every ready
//!   `(task, processor)` pair and commit the pair with the earliest start;
//!   ties go to the greater static level.
//! * **DLS** (Dynamic Level Scheduling, Sih & Lee 1993): commit the pair
//!   maximising the *dynamic level* `static_level - earliest_start`.

use crate::engine::{CommModel, Engine};
use crate::schedule::Schedule;
use banger_machine::Machine;
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::{TaskGraph, TaskId};

/// Tracks readiness (all predecessors placed) during a list-scheduling run.
struct ReadyTracker {
    remaining_preds: Vec<usize>,
    ready: Vec<TaskId>,
}

impl ReadyTracker {
    fn new(g: &TaskGraph) -> Self {
        let remaining_preds: Vec<usize> = g.task_ids().map(|t| g.in_degree(t)).collect();
        let ready = g
            .task_ids()
            .filter(|&t| remaining_preds[t.index()] == 0)
            .collect();
        ReadyTracker {
            remaining_preds,
            ready,
        }
    }

    /// Removes `t` from the ready set and promotes any successors whose
    /// last dependency it was.
    fn complete(&mut self, g: &TaskGraph, t: TaskId) {
        let pos = self
            .ready
            .iter()
            .position(|&x| x == t)
            .expect("completed task must be ready");
        self.ready.swap_remove(pos);
        for s in g.successors(t) {
            let r = &mut self.remaining_preds[s.index()];
            *r -= 1;
            if *r == 0 {
                self.ready.push(s);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.ready.is_empty()
    }
}

/// Task-first list scheduling: repeatedly take the ready task with the
/// highest `priority` (greater = earlier; ties toward lower task id), then
/// commit it to the processor giving the earliest start.
fn task_first(name: &str, g: &TaskGraph, m: &Machine, priority: &[f64]) -> Schedule {
    let mut eng = Engine::new(name, g, m, CommModel::Analytic);
    let mut tracker = ReadyTracker::new(g);
    while !tracker.is_done() {
        let &t = tracker
            .ready
            .iter()
            .max_by(|a, b| {
                priority[a.index()]
                    .total_cmp(&priority[b.index()])
                    .then(b.0.cmp(&a.0))
            })
            .unwrap();
        let p = eng.best_processor(t);
        eng.commit(t, p);
        tracker.complete(g, t);
    }
    eng.finish()
}

/// HLFET: static-level priority, earliest-start processor.
pub fn hlfet(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    hlfet_with(g, m, &a)
}

/// [`hlfet`] with a precomputed [`GraphAnalysis`], so sweeps over many
/// machines pay for the (machine-independent) level computation once.
pub fn hlfet_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    task_first("HLFET", g, m, &a.static_level)
}

/// MCP: smallest-ALAP priority (implemented as `-alap`), earliest-start
/// processor.
pub fn mcp(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    mcp_with(g, m, &a)
}

/// [`mcp`] with a precomputed [`GraphAnalysis`].
pub fn mcp_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let neg_alap: Vec<f64> = a.alap.iter().map(|&x| -x).collect();
    task_first("MCP", g, m, &neg_alap)
}

/// ETF: commit the ready `(task, processor)` pair with the earliest start;
/// break ties by greater static level, then lower ids.
pub fn etf(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    etf_with(g, m, &a)
}

/// [`etf`] with a precomputed [`GraphAnalysis`].
pub fn etf_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("ETF", g, m, CommModel::Analytic);
    let mut tracker = ReadyTracker::new(g);
    while !tracker.is_done() {
        // Key: (start, -static_level, task id, proc id), lexicographic min.
        let mut best: Option<(f64, f64, TaskId, banger_machine::ProcId)> = None;
        for &t in &tracker.ready {
            for p in m.proc_ids() {
                let s = eng.earliest_start(t, p);
                let cand = (s, -a.static_level[t.index()], t, p);
                let better = match &best {
                    None => true,
                    Some(b) => cand
                        .0
                        .total_cmp(&b.0)
                        .then(cand.1.total_cmp(&b.1))
                        .then(cand.2.cmp(&b.2))
                        .then(cand.3.cmp(&b.3))
                        .is_lt(),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        let (_, _, t, p) = best.unwrap();
        eng.commit(t, p);
        tracker.complete(g, t);
    }
    eng.finish()
}

/// DLS: commit the ready pair maximising `static_level - earliest_start`.
pub fn dls(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    dls_with(g, m, &a)
}

/// [`dls`] with a precomputed [`GraphAnalysis`].
pub fn dls_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("DLS", g, m, CommModel::Analytic);
    let mut tracker = ReadyTracker::new(g);
    while !tracker.is_done() {
        // Key: (-dynamic_level, task id, proc id), lexicographic min.
        let mut best: Option<(f64, TaskId, banger_machine::ProcId)> = None;
        for &t in &tracker.ready {
            for p in m.proc_ids() {
                let dl = a.static_level[t.index()] - eng.earliest_start(t, p);
                let cand = (-dl, t, p);
                let better = match &best {
                    None => true,
                    Some(b) => cand
                        .0
                        .total_cmp(&b.0)
                        .then(cand.1.cmp(&b.1))
                        .then(cand.2.cmp(&b.2))
                        .is_lt(),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        let (_, t, p) = best.unwrap();
        eng.commit(t, p);
        tracker.complete(g, t);
    }
    eng.finish()
}

/// A naive baseline that ignores communication entirely when choosing
/// processors (it balances load by earliest-finishing processor). Used by
/// the A1 ablation to quantify the value of communication awareness.
pub fn naive_no_comm(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    naive_no_comm_with(g, m, &a)
}

/// [`naive_no_comm`] with a precomputed [`GraphAnalysis`].
pub fn naive_no_comm_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("naive-no-comm", g, m, CommModel::Analytic);
    let mut tracker = ReadyTracker::new(g);
    while !tracker.is_done() {
        let &t = tracker
            .ready
            .iter()
            .max_by(|x, y| {
                a.static_level[x.index()]
                    .total_cmp(&a.static_level[y.index()])
                    .then(y.0.cmp(&x.0))
            })
            .unwrap();
        // Pick the processor that is free soonest, blind to where the
        // task's inputs live.
        let p = m
            .proc_ids()
            .min_by(|x, y| {
                eng.timelines[x.index()]
                    .last_finish()
                    .total_cmp(&eng.timelines[y.index()].last_finish())
                    .then(x.0.cmp(&y.0))
            })
            .unwrap();
        eng.commit(t, p);
        tracker.complete(g, t);
    }
    eng.finish()
}

/// Serial baseline: every task on processor 0 in topological order.
pub fn serial(g: &TaskGraph, m: &Machine) -> Schedule {
    let mut eng = Engine::new("serial", g, m, CommModel::Analytic);
    for t in g.topo_order().expect("scheduling requires a DAG") {
        eng.commit(t, banger_machine::ProcId(0));
    }
    eng.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{MachineParams, Topology};
    use banger_taskgraph::generators;

    fn machine(n: usize) -> Machine {
        Machine::new(Topology::fully_connected(n), MachineParams::default())
    }

    type Heuristic = fn(&TaskGraph, &Machine) -> Schedule;

    fn all_heuristics() -> Vec<(&'static str, Heuristic)> {
        vec![
            ("HLFET", hlfet as Heuristic),
            ("MCP", mcp),
            ("ETF", etf),
            ("DLS", dls),
            ("naive", naive_no_comm),
            ("serial", serial),
        ]
    }

    #[test]
    fn all_valid_on_gauss() {
        let g = generators::gauss_elimination(5, 2.0, 1.0);
        let m = machine(4);
        for (name, h) in all_heuristics() {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(s.makespan() > 0.0);
        }
    }

    #[test]
    fn independent_tasks_spread_across_processors() {
        let g = generators::independent(8, 10.0);
        let m = machine(4);
        for (name, h) in [
            ("HLFET", hlfet as fn(&TaskGraph, &Machine) -> Schedule),
            ("ETF", etf),
            ("DLS", dls),
        ] {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap();
            assert_eq!(s.makespan(), 20.0, "{name} should perfectly balance");
            assert_eq!(s.processors_used(), 4, "{name}");
        }
    }

    #[test]
    fn chain_stays_on_one_processor() {
        let g = generators::chain(6, 5.0, 10.0);
        let m = machine(4);
        for (name, h) in [
            ("HLFET", hlfet as fn(&TaskGraph, &Machine) -> Schedule),
            ("ETF", etf),
            ("MCP", mcp),
        ] {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap();
            assert_eq!(s.makespan(), 30.0, "{name}: a chain cannot go faster");
            assert_eq!(s.processors_used(), 1, "{name}: moving would pay comm");
        }
    }

    #[test]
    fn serial_baseline_uses_one_processor() {
        let g = generators::fork_join(4, 1.0, 5.0, 1.0, 2.0);
        let m = machine(4);
        let s = serial(&g, &m);
        s.validate(&g, &m).unwrap();
        assert_eq!(s.processors_used(), 1);
        assert_eq!(s.makespan(), g.total_weight());
    }

    #[test]
    fn parallel_heuristics_beat_serial_when_comm_cheap() {
        let g = generators::fork_join(8, 1.0, 20.0, 1.0, 0.5);
        let m = machine(4);
        let base = serial(&g, &m).makespan();
        for (name, h) in [
            ("HLFET", hlfet as fn(&TaskGraph, &Machine) -> Schedule),
            ("MCP", mcp),
            ("ETF", etf),
            ("DLS", dls),
        ] {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap();
            assert!(s.makespan() < base, "{name}: {} !< {base}", s.makespan());
        }
    }

    #[test]
    fn heuristics_respect_expensive_comm() {
        // With enormous communication volumes, good heuristics serialise
        // rather than paying the messages.
        let mut g = generators::fork_join(4, 1.0, 2.0, 1.0, 1.0);
        g.scale_volumes(1000.0);
        let m = machine(4);
        for (name, h) in [
            ("ETF", etf as fn(&TaskGraph, &Machine) -> Schedule),
            ("DLS", dls),
        ] {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap();
            assert_eq!(
                s.processors_used(),
                1,
                "{name} should avoid 1000-unit messages"
            );
        }
    }

    #[test]
    fn naive_worse_or_equal_when_comm_matters() {
        let mut g = generators::fork_join(4, 1.0, 2.0, 1.0, 1.0);
        g.scale_volumes(100.0);
        let m = machine(4);
        let naive = naive_no_comm(&g, &m);
        naive.validate(&g, &m).unwrap();
        let smart = etf(&g, &m);
        assert!(smart.makespan() <= naive.makespan());
        // The gap should be dramatic here: naive pays four 200-unit routes.
        assert!(naive.makespan() > 2.0 * smart.makespan());
    }

    #[test]
    fn works_on_machine_with_topology() {
        let g = generators::gauss_elimination(4, 3.0, 2.0);
        let m = Machine::new(
            Topology::hypercube(2),
            MachineParams {
                msg_startup: 0.5,
                ..MachineParams::default()
            },
        );
        for (name, h) in all_heuristics() {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn single_processor_machine_degenerates_to_serial() {
        let g = generators::gauss_elimination(4, 3.0, 2.0);
        let m = Machine::new(Topology::single(), MachineParams::default());
        let s = etf(&g, &m);
        s.validate(&g, &m).unwrap();
        assert_eq!(s.makespan(), g.total_weight());
    }

    #[test]
    fn deterministic() {
        let g = generators::gauss_elimination(6, 2.0, 1.5);
        let m = machine(4);
        for (_, h) in all_heuristics() {
            let s1 = h(&g, &m);
            let s2 = h(&g, &m);
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn empty_graph_gives_empty_schedule() {
        let g = TaskGraph::new("empty");
        let m = machine(2);
        let s = etf(&g, &m);
        assert_eq!(s.makespan(), 0.0);
        s.validate(&g, &m).unwrap();
    }
}
