//! Classic list-scheduling heuristics: HLFET, MCP, ETF and DLS.
//!
//! All four share the [`Engine`]'s analytic communication model and
//! insertion-based slot search; they differ only in how the next
//! `(task, processor)` decision is made:
//!
//! * **HLFET** (Highest Level First with Estimated Times, Adam/Chandy/
//!   Dickson 1974): pick the ready task with the greatest *static level*
//!   (computation-only bottom level), then the processor giving it the
//!   earliest start.
//! * **MCP** (Modified Critical Path, Wu & Gajski 1990): pick the ready
//!   task with the smallest ALAP time, then the earliest-start processor.
//! * **ETF** (Earliest Task First, Hwang et al. 1989): scan every ready
//!   `(task, processor)` pair and commit the pair with the earliest start;
//!   ties go to the greater static level.
//! * **DLS** (Dynamic Level Scheduling, Sih & Lee 1993): commit the pair
//!   maximising the *dynamic level* `static_level - earliest_start`.

use crate::engine::{CommModel, Engine};
use crate::ready::ReadyQueue;
use crate::schedule::Schedule;
use banger_machine::{Machine, ProcId};
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::{TaskGraph, TaskId};

/// Task-first list scheduling: repeatedly take the ready task with the
/// highest `priority` (greater = earlier; ties toward lower task id) via
/// the [`ReadyQueue`] heap, then commit it to the processor giving the
/// earliest start. Selection is `O(log n)` per step; the legacy linear
/// scan lives on in [`crate::reference`] as the differential oracle.
fn task_first(name: &str, g: &TaskGraph, m: &Machine, priority: &[f64]) -> Schedule {
    let mut eng = Engine::new(name, g, m, CommModel::Analytic);
    let mut queue = ReadyQueue::new(g, priority);
    while let Some(t) = queue.pop() {
        let p = eng.best_processor(t);
        eng.commit(t, p);
        queue.complete(g, t);
    }
    eng.finish()
}

/// Per-`(task, processor)` earliest-start cache for the pair-scan
/// heuristics (ETF/DLS), with epoch-based selective invalidation.
///
/// The legacy pair scan recomputed `ready_time(t, p)` — a walk over every
/// in-edge — for every ready×processor pair at every step, i.e.
/// `O(steps · |ready| · P · in_degree)` arrival probes. Two facts make
/// that work cacheable without changing a single selected pair:
///
/// * Under [`CommModel::Analytic`] with no duplication, `ready_time(t, p)`
///   is **immutable once `t` is ready**: every predecessor has exactly one
///   committed copy and the closed-form `comm_time` never changes. So it
///   is computed exactly once per pair, when `t` is promoted — `O(E · P)`
///   arrival probes for the whole run.
/// * The earliest start additionally depends only on processor `p`'s
///   timeline, which changes exactly when something commits on `p`. A
///   per-processor epoch counter is bumped on commit and each cache entry
///   remembers the epoch it was computed at; the selection scan lazily
///   recomputes just the stale entries (one slot search each).
///
/// Recomputing a stale entry runs the same `slot` search a fresh
/// evaluation would, so every candidate key in the scan is bit-identical
/// to the legacy full recomputation, and keys embed `(task, proc)` so the
/// strict total order makes scan order irrelevant.
struct PairCache {
    procs: usize,
    /// `ready_time[t * procs + p]`, filled once when `t` becomes ready.
    ready_time: Vec<f64>,
    /// Execution time of `t` on `p`, filled alongside `ready_time`.
    dur: Vec<f64>,
    /// Cached earliest start per pair (`ready_time` + slot search).
    est: Vec<f64>,
    /// Epoch at which `est` was computed; stale when != `proc_epoch[p]`.
    entry_epoch: Vec<u64>,
    /// Bumped on every commit to the processor. Starts at 1 so a zeroed
    /// `entry_epoch` always reads as stale.
    proc_epoch: Vec<u64>,
}

impl PairCache {
    fn new(tasks: usize, procs: usize) -> Self {
        PairCache {
            procs,
            ready_time: vec![0.0; tasks * procs],
            dur: vec![0.0; tasks * procs],
            est: vec![0.0; tasks * procs],
            entry_epoch: vec![0; tasks * procs],
            proc_epoch: vec![1; procs],
        }
    }

    /// Fills the ready-time/duration row of a newly ready task. Costs
    /// `in_degree(t)` arrival probes per processor, paid exactly once.
    fn promote(&mut self, eng: &Engine<'_>, t: TaskId) {
        let row = t.index() * self.procs;
        let weight = eng.g.task(t).weight;
        for p in eng.m.proc_ids() {
            self.ready_time[row + p.index()] = eng.ready_time(t, p);
            self.dur[row + p.index()] = eng.m.exec_time(weight, p);
        }
    }

    /// Earliest start of ready task `t` on `p`, recomputing the slot
    /// search only if `p`'s timeline changed since the entry was cached.
    fn earliest_start(&mut self, eng: &Engine<'_>, t: TaskId, p: ProcId) -> f64 {
        let i = t.index() * self.procs + p.index();
        let epoch = self.proc_epoch[p.index()];
        if self.entry_epoch[i] != epoch {
            self.est[i] = eng.slot(p, self.ready_time[i], self.dur[i]);
            self.entry_epoch[i] = epoch;
        }
        self.est[i]
    }

    /// Invalidates every entry on `p` (called after committing there).
    fn commit_to(&mut self, p: ProcId) {
        self.proc_epoch[p.index()] += 1;
    }
}

/// Ready-set bookkeeping for the pair-scan heuristics: a plain `Vec` ready
/// set (the scan visits every ready task anyway) plus [`PairCache`] rows
/// filled on promotion.
struct PairScan {
    remaining_preds: Vec<usize>,
    ready: Vec<TaskId>,
    cache: PairCache,
}

impl PairScan {
    fn new(eng: &Engine<'_>) -> Self {
        let g = eng.g;
        let remaining_preds: Vec<usize> = g.task_ids().map(|t| g.in_degree(t)).collect();
        let ready: Vec<TaskId> = g
            .task_ids()
            .filter(|&t| remaining_preds[t.index()] == 0)
            .collect();
        let mut cache = PairCache::new(g.task_count(), eng.m.processors());
        for &t in &ready {
            cache.promote(eng, t);
        }
        PairScan {
            remaining_preds,
            ready,
            cache,
        }
    }

    /// Commits the chosen pair (found at `pos` in the ready vec) and
    /// promotes any newly ready successors.
    fn commit(&mut self, eng: &mut Engine<'_>, pos: usize, p: ProcId) {
        let t = self.ready.swap_remove(pos);
        eng.commit(t, p);
        self.cache.commit_to(p);
        for s in eng.g.successors(t) {
            let r = &mut self.remaining_preds[s.index()];
            *r -= 1;
            if *r == 0 {
                self.cache.promote(eng, s);
                self.ready.push(s);
            }
        }
    }
}

/// HLFET: static-level priority, earliest-start processor.
pub fn hlfet(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    hlfet_with(g, m, &a)
}

/// [`hlfet`] with a precomputed [`GraphAnalysis`], so sweeps over many
/// machines pay for the (machine-independent) level computation once.
pub fn hlfet_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    task_first("HLFET", g, m, &a.static_level)
}

/// MCP: smallest-ALAP priority (implemented as `-alap`), earliest-start
/// processor.
pub fn mcp(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    mcp_with(g, m, &a)
}

/// [`mcp`] with a precomputed [`GraphAnalysis`].
pub fn mcp_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let neg_alap: Vec<f64> = a.alap.iter().map(|&x| -x).collect();
    task_first("MCP", g, m, &neg_alap)
}

/// ETF: commit the ready `(task, processor)` pair with the earliest start;
/// break ties by greater static level, then lower ids.
pub fn etf(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    etf_with(g, m, &a)
}

/// [`etf`] with a precomputed [`GraphAnalysis`].
pub fn etf_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("ETF", g, m, CommModel::Analytic);
    let mut scan = PairScan::new(&eng);
    while !scan.ready.is_empty() {
        // Key: (start, -static_level, task id, proc id), lexicographic min.
        let mut best: Option<(f64, f64, TaskId, ProcId, usize)> = None;
        for pos in 0..scan.ready.len() {
            let t = scan.ready[pos];
            for p in m.proc_ids() {
                let s = scan.cache.earliest_start(&eng, t, p);
                let cand = (s, -a.static_level[t.index()], t, p);
                let better = match &best {
                    None => true,
                    Some(b) => cand
                        .0
                        .total_cmp(&b.0)
                        .then(cand.1.total_cmp(&b.1))
                        .then(cand.2.cmp(&b.2))
                        .then(cand.3.cmp(&b.3))
                        .is_lt(),
                };
                if better {
                    best = Some((cand.0, cand.1, cand.2, cand.3, pos));
                }
            }
        }
        let (_, _, _, p, pos) = best.unwrap();
        scan.commit(&mut eng, pos, p);
    }
    eng.finish()
}

/// DLS: commit the ready pair maximising `static_level - earliest_start`.
pub fn dls(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    dls_with(g, m, &a)
}

/// [`dls`] with a precomputed [`GraphAnalysis`].
pub fn dls_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("DLS", g, m, CommModel::Analytic);
    let mut scan = PairScan::new(&eng);
    while !scan.ready.is_empty() {
        // Key: (-dynamic_level, task id, proc id), lexicographic min.
        let mut best: Option<(f64, TaskId, ProcId, usize)> = None;
        for pos in 0..scan.ready.len() {
            let t = scan.ready[pos];
            for p in m.proc_ids() {
                let dl = a.static_level[t.index()] - scan.cache.earliest_start(&eng, t, p);
                let cand = (-dl, t, p);
                let better = match &best {
                    None => true,
                    Some(b) => cand
                        .0
                        .total_cmp(&b.0)
                        .then(cand.1.cmp(&b.1))
                        .then(cand.2.cmp(&b.2))
                        .is_lt(),
                };
                if better {
                    best = Some((cand.0, cand.1, cand.2, pos));
                }
            }
        }
        let (_, _, p, pos) = best.unwrap();
        scan.commit(&mut eng, pos, p);
    }
    eng.finish()
}

/// A naive baseline that ignores communication entirely when choosing
/// processors (it balances load by earliest-finishing processor). Used by
/// the A1 ablation to quantify the value of communication awareness.
pub fn naive_no_comm(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    naive_no_comm_with(g, m, &a)
}

/// [`naive_no_comm`] with a precomputed [`GraphAnalysis`].
pub fn naive_no_comm_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("naive-no-comm", g, m, CommModel::Analytic);
    let mut queue = ReadyQueue::new(g, &a.static_level);
    while let Some(t) = queue.pop() {
        // Pick the processor that is free soonest, blind to where the
        // task's inputs live.
        let p = m
            .proc_ids()
            .min_by(|x, y| {
                eng.timelines[x.index()]
                    .last_finish()
                    .total_cmp(&eng.timelines[y.index()].last_finish())
                    .then(x.0.cmp(&y.0))
            })
            .unwrap();
        eng.commit(t, p);
        queue.complete(g, t);
    }
    eng.finish()
}

/// Serial baseline: every task on processor 0 in topological order.
pub fn serial(g: &TaskGraph, m: &Machine) -> Schedule {
    let mut eng = Engine::new("serial", g, m, CommModel::Analytic);
    for t in g.topo_order().expect("scheduling requires a DAG") {
        eng.commit(t, banger_machine::ProcId(0));
    }
    eng.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{MachineParams, Topology};
    use banger_taskgraph::generators;

    fn machine(n: usize) -> Machine {
        Machine::new(Topology::fully_connected(n), MachineParams::default())
    }

    type Heuristic = fn(&TaskGraph, &Machine) -> Schedule;

    fn all_heuristics() -> Vec<(&'static str, Heuristic)> {
        vec![
            ("HLFET", hlfet as Heuristic),
            ("MCP", mcp),
            ("ETF", etf),
            ("DLS", dls),
            ("naive", naive_no_comm),
            ("serial", serial),
        ]
    }

    #[test]
    fn all_valid_on_gauss() {
        let g = generators::gauss_elimination(5, 2.0, 1.0);
        let m = machine(4);
        for (name, h) in all_heuristics() {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(s.makespan() > 0.0);
        }
    }

    #[test]
    fn independent_tasks_spread_across_processors() {
        let g = generators::independent(8, 10.0);
        let m = machine(4);
        for (name, h) in [
            ("HLFET", hlfet as fn(&TaskGraph, &Machine) -> Schedule),
            ("ETF", etf),
            ("DLS", dls),
        ] {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap();
            assert_eq!(s.makespan(), 20.0, "{name} should perfectly balance");
            assert_eq!(s.processors_used(), 4, "{name}");
        }
    }

    #[test]
    fn chain_stays_on_one_processor() {
        let g = generators::chain(6, 5.0, 10.0);
        let m = machine(4);
        for (name, h) in [
            ("HLFET", hlfet as fn(&TaskGraph, &Machine) -> Schedule),
            ("ETF", etf),
            ("MCP", mcp),
        ] {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap();
            assert_eq!(s.makespan(), 30.0, "{name}: a chain cannot go faster");
            assert_eq!(s.processors_used(), 1, "{name}: moving would pay comm");
        }
    }

    #[test]
    fn serial_baseline_uses_one_processor() {
        let g = generators::fork_join(4, 1.0, 5.0, 1.0, 2.0);
        let m = machine(4);
        let s = serial(&g, &m);
        s.validate(&g, &m).unwrap();
        assert_eq!(s.processors_used(), 1);
        assert_eq!(s.makespan(), g.total_weight());
    }

    #[test]
    fn parallel_heuristics_beat_serial_when_comm_cheap() {
        let g = generators::fork_join(8, 1.0, 20.0, 1.0, 0.5);
        let m = machine(4);
        let base = serial(&g, &m).makespan();
        for (name, h) in [
            ("HLFET", hlfet as fn(&TaskGraph, &Machine) -> Schedule),
            ("MCP", mcp),
            ("ETF", etf),
            ("DLS", dls),
        ] {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap();
            assert!(s.makespan() < base, "{name}: {} !< {base}", s.makespan());
        }
    }

    #[test]
    fn heuristics_respect_expensive_comm() {
        // With enormous communication volumes, good heuristics serialise
        // rather than paying the messages.
        let mut g = generators::fork_join(4, 1.0, 2.0, 1.0, 1.0);
        g.scale_volumes(1000.0);
        let m = machine(4);
        for (name, h) in [
            ("ETF", etf as fn(&TaskGraph, &Machine) -> Schedule),
            ("DLS", dls),
        ] {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap();
            assert_eq!(
                s.processors_used(),
                1,
                "{name} should avoid 1000-unit messages"
            );
        }
    }

    #[test]
    fn naive_worse_or_equal_when_comm_matters() {
        let mut g = generators::fork_join(4, 1.0, 2.0, 1.0, 1.0);
        g.scale_volumes(100.0);
        let m = machine(4);
        let naive = naive_no_comm(&g, &m);
        naive.validate(&g, &m).unwrap();
        let smart = etf(&g, &m);
        assert!(smart.makespan() <= naive.makespan());
        // The gap should be dramatic here: naive pays four 200-unit routes.
        assert!(naive.makespan() > 2.0 * smart.makespan());
    }

    #[test]
    fn works_on_machine_with_topology() {
        let g = generators::gauss_elimination(4, 3.0, 2.0);
        let m = Machine::new(
            Topology::hypercube(2),
            MachineParams {
                msg_startup: 0.5,
                ..MachineParams::default()
            },
        );
        for (name, h) in all_heuristics() {
            let s = h(&g, &m);
            s.validate(&g, &m).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn single_processor_machine_degenerates_to_serial() {
        let g = generators::gauss_elimination(4, 3.0, 2.0);
        let m = Machine::new(Topology::single(), MachineParams::default());
        let s = etf(&g, &m);
        s.validate(&g, &m).unwrap();
        assert_eq!(s.makespan(), g.total_weight());
    }

    #[test]
    fn deterministic() {
        let g = generators::gauss_elimination(6, 2.0, 1.5);
        let m = machine(4);
        for (_, h) in all_heuristics() {
            let s1 = h(&g, &m);
            let s2 = h(&g, &m);
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn empty_graph_gives_empty_schedule() {
        let g = TaskGraph::new("empty");
        let m = machine(2);
        let s = etf(&g, &m);
        assert_eq!(s.makespan(), 0.0);
        s.validate(&g, &m).unwrap();
    }
}
