//! Retained naive reference implementations of every heuristic, kept
//! verbatim from before the scale rework so the differential suites can
//! pin the optimised schedulers to **bit-identical** output.
//!
//! These are the original `O(n^2)`-selection / full-rescan pair-scan
//! implementations: a `Vec`-backed ready set with a linear `max_by` scan
//! (`position()` + `swap_remove` deletion), and ETF/DLS recomputing
//! `ready_time` for every ready×processor pair at every step. They share
//! the [`Engine`] with the production schedulers, so any divergence in a
//! differential run points at the selection/caching rework, not at the
//! probe/commit machinery.
//!
//! Do **not** optimise this module. Its only job is to stay slow and
//! obviously correct. The complexity gap versus the production paths is
//! itself asserted by `tests/prop_sched_scale.rs` via the per-run
//! [`crate::SchedStats`] probe counters.

use crate::engine::{CommModel, Engine};
use crate::schedule::Schedule;
use banger_machine::{Machine, ProcId};
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::{TaskGraph, TaskId};

/// Tracks readiness with the legacy `Vec` ready set.
struct ReadyTracker {
    remaining_preds: Vec<usize>,
    ready: Vec<TaskId>,
}

impl ReadyTracker {
    fn new(g: &TaskGraph) -> Self {
        let remaining_preds: Vec<usize> = g.task_ids().map(|t| g.in_degree(t)).collect();
        let ready = g
            .task_ids()
            .filter(|&t| remaining_preds[t.index()] == 0)
            .collect();
        ReadyTracker {
            remaining_preds,
            ready,
        }
    }

    fn complete(&mut self, g: &TaskGraph, t: TaskId) {
        let pos = self
            .ready
            .iter()
            .position(|&x| x == t)
            .expect("completed task must be ready");
        self.ready.swap_remove(pos);
        for s in g.successors(t) {
            let r = &mut self.remaining_preds[s.index()];
            *r -= 1;
            if *r == 0 {
                self.ready.push(s);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.ready.is_empty()
    }
}

/// Legacy task-first list scheduling: linear max-scan selection.
fn task_first(name: &str, g: &TaskGraph, m: &Machine, priority: &[f64]) -> Schedule {
    let mut eng = Engine::new(name, g, m, CommModel::Analytic);
    let mut tracker = ReadyTracker::new(g);
    while !tracker.is_done() {
        let &t = tracker
            .ready
            .iter()
            .max_by(|a, b| {
                priority[a.index()]
                    .total_cmp(&priority[b.index()])
                    .then(b.0.cmp(&a.0))
            })
            .unwrap();
        let p = eng.best_processor(t);
        eng.commit(t, p);
        tracker.complete(g, t);
    }
    eng.finish()
}

/// Reference HLFET (linear selection scan).
pub fn hlfet_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    task_first("HLFET", g, m, &a.static_level)
}

/// Reference MCP (linear selection scan).
pub fn mcp_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let neg_alap: Vec<f64> = a.alap.iter().map(|&x| -x).collect();
    task_first("MCP", g, m, &neg_alap)
}

/// Reference ETF: recomputes every ready×processor earliest start from
/// scratch at every step.
pub fn etf_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("ETF", g, m, CommModel::Analytic);
    let mut tracker = ReadyTracker::new(g);
    while !tracker.is_done() {
        // Key: (start, -static_level, task id, proc id), lexicographic min.
        let mut best: Option<(f64, f64, TaskId, ProcId)> = None;
        for &t in &tracker.ready {
            for p in m.proc_ids() {
                let s = eng.earliest_start(t, p);
                let cand = (s, -a.static_level[t.index()], t, p);
                let better = match &best {
                    None => true,
                    Some(b) => cand
                        .0
                        .total_cmp(&b.0)
                        .then(cand.1.total_cmp(&b.1))
                        .then(cand.2.cmp(&b.2))
                        .then(cand.3.cmp(&b.3))
                        .is_lt(),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        let (_, _, t, p) = best.unwrap();
        eng.commit(t, p);
        tracker.complete(g, t);
    }
    eng.finish()
}

/// Reference DLS: full pair rescan per step.
pub fn dls_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("DLS", g, m, CommModel::Analytic);
    let mut tracker = ReadyTracker::new(g);
    while !tracker.is_done() {
        // Key: (-dynamic_level, task id, proc id), lexicographic min.
        let mut best: Option<(f64, TaskId, ProcId)> = None;
        for &t in &tracker.ready {
            for p in m.proc_ids() {
                let dl = a.static_level[t.index()] - eng.earliest_start(t, p);
                let cand = (-dl, t, p);
                let better = match &best {
                    None => true,
                    Some(b) => cand
                        .0
                        .total_cmp(&b.0)
                        .then(cand.1.cmp(&b.1))
                        .then(cand.2.cmp(&b.2))
                        .is_lt(),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        let (_, t, p) = best.unwrap();
        eng.commit(t, p);
        tracker.complete(g, t);
    }
    eng.finish()
}

/// Reference communication-blind baseline (linear selection scan).
pub fn naive_no_comm_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("naive-no-comm", g, m, CommModel::Analytic);
    let mut tracker = ReadyTracker::new(g);
    while !tracker.is_done() {
        let &t = tracker
            .ready
            .iter()
            .max_by(|x, y| {
                a.static_level[x.index()]
                    .total_cmp(&a.static_level[y.index()])
                    .then(y.0.cmp(&x.0))
            })
            .unwrap();
        let p = m
            .proc_ids()
            .min_by(|x, y| {
                eng.timelines[x.index()]
                    .last_finish()
                    .total_cmp(&eng.timelines[y.index()].last_finish())
                    .then(x.0.cmp(&y.0))
            })
            .unwrap();
        eng.commit(t, p);
        tracker.complete(g, t);
    }
    eng.finish()
}

/// Reference Mapping Heuristic (linear b-level selection scan).
pub fn mh_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("MH", g, m, CommModel::Contention);

    let mut remaining: Vec<usize> = g.task_ids().map(|t| g.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = g
        .task_ids()
        .filter(|&t| remaining[t.index()] == 0)
        .collect();

    while !ready.is_empty() {
        let (pos, &t) = ready
            .iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| {
                a.b_level[x.index()]
                    .total_cmp(&a.b_level[y.index()])
                    .then(y.0.cmp(&x.0))
            })
            .unwrap();
        ready.swap_remove(pos);

        let mut best = m.proc_ids().next().unwrap();
        let mut best_finish = f64::INFINITY;
        for p in m.proc_ids() {
            let r = eng.ready_time(t, p);
            let dur = m.exec_time(g.task(t).weight, p);
            let start = eng.slot(p, r, dur);
            let finish = start + dur;
            if finish + crate::schedule::TIME_EPS < best_finish {
                best_finish = finish;
                best = p;
            }
        }
        eng.commit(t, best);

        for s in g.successors(t) {
            let r = &mut remaining[s.index()];
            *r -= 1;
            if *r == 0 {
                ready.push(s);
            }
        }
    }
    eng.finish()
}

/// Reference DSH (linear static-level selection scan; the duplication
/// machinery itself is shared with production via [`crate::dsh`]).
pub fn dsh_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("DSH", g, m, CommModel::Analytic);

    let mut remaining: Vec<usize> = g.task_ids().map(|t| g.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = g
        .task_ids()
        .filter(|&t| remaining[t.index()] == 0)
        .collect();

    while !ready.is_empty() {
        let (pos, &t) = ready
            .iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| {
                a.static_level[x.index()]
                    .total_cmp(&a.static_level[y.index()])
                    .then(y.0.cmp(&x.0))
            })
            .unwrap();
        ready.swap_remove(pos);

        let mut best = ProcId(0);
        let mut best_finish = f64::INFINITY;
        for p in m.proc_ids() {
            let start = crate::dsh::estimate_start_with_duplication(&eng, t, p);
            let finish = start + m.exec_time(g.task(t).weight, p);
            if finish + crate::schedule::TIME_EPS < best_finish {
                best_finish = finish;
                best = p;
            }
        }

        crate::dsh::duplicate_binding_preds(&mut eng, t, best);
        eng.commit(t, best);

        for s in g.successors(t) {
            let r = &mut remaining[s.index()];
            *r -= 1;
            if *r == 0 {
                ready.push(s);
            }
        }
    }
    eng.finish()
}

/// Reference serial baseline (identical to production; included so the
/// differential dispatcher covers every name).
pub fn serial(g: &TaskGraph, m: &Machine) -> Schedule {
    let mut eng = Engine::new("serial", g, m, CommModel::Analytic);
    for t in g.topo_order().expect("scheduling requires a DAG") {
        eng.commit(t, ProcId(0));
    }
    eng.finish()
}

/// Runs a reference heuristic by name, mirroring
/// [`crate::run_heuristic_with`]. Returns `None` for unknown names.
pub fn run_reference_with(
    name: &str,
    g: &TaskGraph,
    m: &Machine,
    a: &GraphAnalysis,
) -> Option<Schedule> {
    Some(match name {
        "serial" => serial(g, m),
        "naive" => naive_no_comm_with(g, m, a),
        "HLFET" => hlfet_with(g, m, a),
        "MCP" => mcp_with(g, m, a),
        "ETF" => etf_with(g, m, a),
        "DLS" => dls_with(g, m, a),
        "MH" => mh_with(g, m, a),
        "DSH" => dsh_with(g, m, a),
        _ => return None,
    })
}
