//! Lower bounds on schedule length, used to report heuristic quality
//! (makespan / lower-bound ratios in the comparison tables).

use banger_machine::Machine;
use banger_taskgraph::TaskGraph;

/// The critical-path bound: the heaviest computation-only path, executed
/// on the fastest processor with free communication. No schedule on `m`
/// can finish sooner.
pub fn critical_path_bound(g: &TaskGraph, m: &Machine) -> f64 {
    let fastest = m
        .proc_ids()
        .map(|p| m.relative_speed(p))
        .fold(0.0f64, f64::max);
    let speed = m.params().processor_speed * fastest;
    let order = match g.topo_order() {
        Ok(o) => o,
        Err(_) => return f64::INFINITY,
    };
    let mut finish = vec![0.0f64; g.task_count()];
    let mut best = 0.0f64;
    for t in order {
        let start = g
            .predecessors(t)
            .map(|p| finish[p.index()])
            .fold(0.0f64, f64::max);
        finish[t.index()] = start + m.params().process_startup + g.task(t).weight / speed;
        best = best.max(finish[t.index()]);
    }
    best
}

/// The work bound: total computation divided by the machine's aggregate
/// speed. Even perfect load balance cannot beat it.
pub fn work_bound(g: &TaskGraph, m: &Machine) -> f64 {
    let aggregate: f64 = m
        .proc_ids()
        .map(|p| m.params().processor_speed * m.relative_speed(p))
        .sum();
    let startup_total = m.params().process_startup * g.task_count() as f64;
    (g.total_weight() + 0.0) / aggregate + startup_total / m.processors() as f64
}

/// The tighter of the two bounds.
pub fn lower_bound(g: &TaskGraph, m: &Machine) -> f64 {
    critical_path_bound(g, m).max(work_bound(g, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{etf, hlfet};
    use crate::mh::mh;
    use banger_machine::{MachineParams, ProcId, Topology};
    use banger_taskgraph::generators;

    #[test]
    fn cp_bound_on_chain() {
        let g = generators::chain(4, 5.0, 100.0);
        let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
        assert_eq!(critical_path_bound(&g, &m), 20.0);
    }

    #[test]
    fn work_bound_on_independent() {
        let g = generators::independent(8, 10.0);
        let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
        assert_eq!(work_bound(&g, &m), 20.0);
        assert_eq!(lower_bound(&g, &m), 20.0);
    }

    #[test]
    fn startup_counts_in_bounds() {
        let g = generators::independent(4, 10.0);
        let m = Machine::new(
            Topology::fully_connected(2),
            MachineParams {
                process_startup: 1.0,
                ..MachineParams::default()
            },
        );
        // work: 40/2 = 20, startups: 4*1/2 = 2 => 22; cp: 11.
        assert_eq!(work_bound(&g, &m), 22.0);
        assert_eq!(critical_path_bound(&g, &m), 11.0);
    }

    #[test]
    fn heterogeneous_speeds_in_bounds() {
        let g = generators::independent(2, 12.0);
        let mut m = Machine::new(Topology::fully_connected(2), MachineParams::default());
        m.set_relative_speed(ProcId(1), 2.0).unwrap();
        // aggregate speed 3 => 24/3 = 8; cp on fastest = 6.
        assert_eq!(work_bound(&g, &m), 8.0);
        assert_eq!(critical_path_bound(&g, &m), 6.0);
    }

    #[test]
    fn no_schedule_beats_the_bound() {
        let graphs = vec![
            generators::gauss_elimination(5, 2.0, 1.0),
            generators::lattice(3, 4, 3.0, 2.0),
            generators::fft(8, 2.0, 1.0),
            generators::fork_join(6, 1.0, 8.0, 1.0, 2.0),
        ];
        for g in &graphs {
            for topo in [Topology::hypercube(2), Topology::mesh(2, 2)] {
                let m = Machine::new(
                    topo,
                    MachineParams {
                        msg_startup: 0.5,
                        process_startup: 0.25,
                        ..MachineParams::default()
                    },
                );
                let lb = lower_bound(g, &m);
                for s in [hlfet(g, &m), etf(g, &m), mh(g, &m), crate::dsh::dsh(g, &m)] {
                    assert!(
                        s.makespan() + 1e-9 >= lb,
                        "{} on {}: makespan {} < bound {lb}",
                        s.heuristic(),
                        g.name(),
                        s.makespan()
                    );
                }
            }
        }
    }

    #[test]
    fn cyclic_graph_bound_is_infinite() {
        let mut g = banger_taskgraph::TaskGraph::new("cyc");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_edge(a, b, 0.0, "x").unwrap();
        g.add_edge(b, a, 0.0, "y").unwrap();
        let m = Machine::new(Topology::single(), MachineParams::default());
        assert!(critical_path_bound(&g, &m).is_infinite());
    }
}
