//! Grain packing — Kruatrachue & Lewis's answer to "how big should a task
//! be?" (IEEE Software 1988). Fine-grain designs drown in process startup
//! and message costs; grain packing merges tasks into clusters until the
//! estimated parallel time stops improving, then hands the coarsened graph
//! to any scheduler.
//!
//! The implementation follows Sarkar-style **edge zeroing**: walk the arcs
//! in decreasing volume order and merge the two endpoint clusters whenever
//! the merge does not increase the estimated parallel time on an unbounded
//! processor set (intra-cluster messages cost zero; each cluster is
//! sequential).

use banger_taskgraph::{GraphError, TaskGraph, TaskId};

/// The result of packing: a cluster id per original task plus the packed
/// (coarsened) graph whose tasks are the clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct Packing {
    /// `cluster_of[t]` = index of the packed task containing original `t`.
    pub cluster_of: Vec<usize>,
    /// The coarsened graph: one task per cluster, weights summed,
    /// inter-cluster arc volumes summed per (src, dst) pair.
    pub packed: TaskGraph,
    /// Estimated parallel time of the final clustering (unbounded
    /// processors, zero intra-cluster communication).
    pub estimated_pt: f64,
}

/// Estimates parallel time of a clustering on unboundedly many processors:
/// each cluster executes its tasks sequentially in topological order;
/// inter-cluster arcs cost their volume, intra-cluster arcs cost zero.
/// Cyclic graphs return `Err(GraphError::Cycle)` instead of panicking.
pub fn estimate_pt(g: &TaskGraph, cluster_of: &[usize]) -> Result<f64, GraphError> {
    let order = g.topo_order()?;
    Ok(estimate_pt_ordered(g, &order, cluster_of))
}

/// [`estimate_pt`] with a precomputed topological order, so packing's
/// inner loop (one estimate per candidate edge) never re-sorts the graph.
fn estimate_pt_ordered(g: &TaskGraph, order: &[TaskId], cluster_of: &[usize]) -> f64 {
    let nclusters = cluster_of.iter().copied().max().map_or(0, |m| m + 1);
    let mut cluster_free = vec![0.0f64; nclusters];
    let mut finish = vec![0.0f64; g.task_count()];
    let mut pt = 0.0f64;
    for &t in order {
        let c = cluster_of[t.index()];
        let mut ready = cluster_free[c];
        for &e in g.in_edges(t) {
            let edge = g.edge(e);
            let comm = if cluster_of[edge.src.index()] == c {
                0.0
            } else {
                edge.volume
            };
            ready = ready.max(finish[edge.src.index()] + comm);
        }
        let f = ready + g.task(t).weight;
        finish[t.index()] = f;
        cluster_free[c] = f;
        pt = pt.max(f);
    }
    pt
}

/// Packs `g` by iterative edge zeroing. Returns the clustering and the
/// coarsened graph. The packed graph is always a DAG (merges that would
/// create cycles are rejected).
///
/// ```
/// use banger_sched::grain;
/// use banger_taskgraph::generators;
/// // A chain with heavy messages collapses to one cluster.
/// let g = generators::chain(5, 1.0, 100.0);
/// let p = grain::pack(&g).unwrap();
/// assert_eq!(p.packed.task_count(), 1);
/// assert_eq!(p.estimated_pt, 5.0);
/// ```
pub fn pack(g: &TaskGraph) -> Result<Packing, GraphError> {
    let n = g.task_count();
    // One topological sort up front: it both rejects cyclic inputs with a
    // proper error and feeds every PT estimate below.
    let order = g.topo_order()?;
    let mut cluster_of: Vec<usize> = (0..n).collect();
    if n > 0 {
        let mut edge_ids: Vec<_> = g.edge_ids().collect();
        edge_ids.sort_by(|&a, &b| {
            g.edge(b)
                .volume
                .total_cmp(&g.edge(a).volume)
                .then(a.cmp(&b))
        });
        let mut current_pt = estimate_pt_ordered(g, &order, &cluster_of);
        for e in edge_ids {
            let edge = g.edge(e);
            let (cs, cd) = (cluster_of[edge.src.index()], cluster_of[edge.dst.index()]);
            if cs == cd {
                continue;
            }
            // Tentatively merge cd into cs.
            let trial: Vec<usize> = cluster_of
                .iter()
                .map(|&c| if c == cd { cs } else { c })
                .collect();
            if clustering_is_acyclic(g, &trial) {
                let pt = estimate_pt_ordered(g, &order, &trial);
                if pt <= current_pt {
                    cluster_of = trial;
                    current_pt = pt;
                }
            }
        }
    }

    // Renumber clusters densely in topological order of first appearance.
    let mut dense: Vec<Option<usize>> = vec![None; n];
    let mut next = 0usize;
    for &t in &order {
        let c = cluster_of[t.index()];
        if dense[c].is_none() {
            dense[c] = Some(next);
            next += 1;
        }
    }
    let cluster_of: Vec<usize> = cluster_of.iter().map(|&c| dense[c].unwrap()).collect();

    // Build the packed graph.
    let mut packed = TaskGraph::new(format!("{}-packed", g.name()));
    let mut members: Vec<Vec<TaskId>> = vec![Vec::new(); next];
    for &t in &order {
        members[cluster_of[t.index()]].push(t);
    }
    for (c, mem) in members.iter().enumerate() {
        let weight: f64 = mem.iter().map(|&t| g.task(t).weight).sum();
        let name = if mem.len() == 1 {
            g.task(mem[0]).name.clone()
        } else {
            format!("pack{c}[{}]", mem.len())
        };
        packed.try_add_task(name, weight)?;
    }
    // Sum inter-cluster volumes per ordered pair.
    let mut volumes: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    for (_, edge) in g.edges() {
        let (cs, cd) = (cluster_of[edge.src.index()], cluster_of[edge.dst.index()]);
        if cs != cd {
            *volumes.entry((cs, cd)).or_insert(0.0) += edge.volume;
        }
    }
    for ((cs, cd), vol) in volumes {
        packed.add_edge(
            TaskId(cs as u32),
            TaskId(cd as u32),
            vol,
            format!("pk{cs}_{cd}"),
        )?;
    }
    let estimated_pt = estimate_pt_ordered(g, &order, &cluster_of);
    Ok(Packing {
        cluster_of,
        packed,
        estimated_pt,
    })
}

/// The result of linear clustering: a cluster id per task. Unlike
/// [`Packing`], no contracted graph is built — contracting a *path*
/// cluster of a DAG can create cycles (think of one branch of a diamond),
/// so linear clusters are used as a **processor assignment**, via
/// [`schedule_clusters`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinearClusters {
    /// `cluster_of[t]` = cluster index of task `t` (dense, in discovery
    /// order — cluster 0 is the heaviest path).
    pub cluster_of: Vec<usize>,
    /// Number of clusters.
    pub count: usize,
    /// Estimated parallel time of the clustering (unbounded processors).
    pub estimated_pt: f64,
}

/// Linear clustering (Kim & Browne 1988): repeatedly take the heaviest
/// remaining computation+communication path among unclustered tasks and
/// make it one linear cluster, until every task is clustered.
pub fn linear_cluster(g: &TaskGraph) -> Result<LinearClusters, GraphError> {
    let n = g.task_count();
    let order = g.topo_order()?;
    let mut cluster_of: Vec<Option<usize>> = vec![None; n];
    let mut next_cluster = 0usize;

    // Repeat: find the heaviest path through *unclustered* tasks (comm
    // counts between consecutive unclustered tasks), make it a cluster.
    loop {
        let mut best_finish = f64::NEG_INFINITY;
        let mut best_end: Option<TaskId> = None;
        let mut finish = vec![f64::NEG_INFINITY; n];
        let mut from: Vec<Option<TaskId>> = vec![None; n];
        for &t in &order {
            if cluster_of[t.index()].is_some() {
                continue;
            }
            let mut start = 0.0f64;
            let mut via = None;
            for &e in g.in_edges(t) {
                let edge = g.edge(e);
                if cluster_of[edge.src.index()].is_some() {
                    continue;
                }
                let cand = finish[edge.src.index()] + edge.volume;
                if cand > start {
                    start = cand;
                    via = Some(edge.src);
                }
            }
            finish[t.index()] = start + g.task(t).weight;
            from[t.index()] = via;
            if finish[t.index()] > best_finish {
                best_finish = finish[t.index()];
                best_end = Some(t);
            }
        }
        let Some(mut cur) = best_end else { break };
        let c = next_cluster;
        next_cluster += 1;
        loop {
            cluster_of[cur.index()] = Some(c);
            match from[cur.index()] {
                Some(p) => cur = p,
                None => break,
            }
        }
    }

    let cluster_of: Vec<usize> = cluster_of.into_iter().map(|c| c.unwrap_or(0)).collect();
    let estimated_pt = estimate_pt_ordered(g, &order, &cluster_of);
    Ok(LinearClusters {
        count: next_cluster.max(usize::from(n > 0)),
        cluster_of,
        estimated_pt,
    })
}

/// Schedules `g` on `m` with a **fixed processor assignment**: cluster `c`
/// lives on processor `c % P` (wrap mapping), and tasks run in b-level
/// list order at the earliest feasible slot on their assigned processor.
/// This is the cluster-then-map pipeline linear clustering was designed
/// for.
pub fn schedule_clusters(
    g: &TaskGraph,
    m: &banger_machine::Machine,
    clusters: &LinearClusters,
) -> crate::schedule::Schedule {
    use crate::engine::{CommModel, Engine};
    let a = banger_taskgraph::analysis::GraphAnalysis::analyze(g);
    let nprocs = m.processors();
    let mut eng = Engine::new("linear-cluster", g, m, CommModel::Analytic);
    let mut remaining: Vec<usize> = g.task_ids().map(|t| g.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = g
        .task_ids()
        .filter(|&t| remaining[t.index()] == 0)
        .collect();
    while !ready.is_empty() {
        let (pos, &t) = ready
            .iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| {
                a.b_level[x.index()]
                    .total_cmp(&a.b_level[y.index()])
                    .then(y.0.cmp(&x.0))
            })
            .unwrap();
        ready.swap_remove(pos);
        let proc = banger_machine::ProcId((clusters.cluster_of[t.index()] % nprocs) as u32);
        eng.commit(t, proc);
        for s in g.successors(t) {
            let r = &mut remaining[s.index()];
            *r -= 1;
            if *r == 0 {
                ready.push(s);
            }
        }
    }
    eng.finish()
}

/// True when contracting each cluster to one node leaves a DAG.
fn clustering_is_acyclic(g: &TaskGraph, cluster_of: &[usize]) -> bool {
    // Kahn over the contracted multigraph.
    let nclusters = cluster_of.iter().copied().max().map_or(0, |m| m + 1);
    let mut indeg = vec![0usize; nclusters];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nclusters];
    for (_, e) in g.edges() {
        let (a, b) = (cluster_of[e.src.index()], cluster_of[e.dst.index()]);
        if a != b {
            succ[a].push(b);
            indeg[b] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..nclusters).filter(|&c| indeg[c] == 0).collect();
    let mut seen = 0usize;
    while let Some(c) = queue.pop() {
        seen += 1;
        for &d in &succ[c] {
            indeg[d] -= 1;
            if indeg[d] == 0 {
                queue.push(d);
            }
        }
    }
    seen == nclusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_taskgraph::generators;

    #[test]
    fn estimate_pt_unclustered_includes_comm() {
        let g = generators::chain(3, 2.0, 5.0);
        let each_own: Vec<usize> = (0..3).collect();
        // 2 + 5 + 2 + 5 + 2 = 16
        assert_eq!(estimate_pt(&g, &each_own).unwrap(), 16.0);
        let all_one = vec![0usize; 3];
        assert_eq!(estimate_pt(&g, &all_one).unwrap(), 6.0);
    }

    #[test]
    fn cyclic_graph_is_an_error_not_a_panic() {
        let mut g = TaskGraph::new("cyc");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_edge(a, b, 1.0, "x").unwrap();
        g.add_edge(b, a, 1.0, "y").unwrap();
        assert!(matches!(
            estimate_pt(&g, &[0, 1]),
            Err(GraphError::Cycle(_))
        ));
        assert!(matches!(pack(&g), Err(GraphError::Cycle(_))));
        assert!(matches!(linear_cluster(&g), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn chain_packs_to_single_cluster() {
        let g = generators::chain(6, 2.0, 5.0);
        let p = pack(&g).unwrap();
        assert_eq!(p.packed.task_count(), 1);
        assert_eq!(p.packed.total_weight(), 12.0);
        assert_eq!(p.estimated_pt, 12.0);
        assert!(p.cluster_of.iter().all(|&c| c == 0));
    }

    #[test]
    fn independent_tasks_stay_separate() {
        let g = generators::independent(5, 4.0);
        let p = pack(&g).unwrap();
        assert_eq!(p.packed.task_count(), 5);
        assert_eq!(p.estimated_pt, 4.0);
    }

    #[test]
    fn fork_join_with_heavy_comm_collapses() {
        // Communication dwarfs computation: everything should merge.
        let g = generators::fork_join(3, 1.0, 1.0, 1.0, 100.0);
        let p = pack(&g).unwrap();
        assert_eq!(p.packed.task_count(), 1, "{:?}", p.cluster_of);
    }

    #[test]
    fn fork_join_with_cheap_comm_stays_parallel() {
        let g = generators::fork_join(4, 1.0, 50.0, 1.0, 0.5);
        let p = pack(&g).unwrap();
        assert!(
            p.packed.task_count() >= 4,
            "parallel middles must not merge: {:?}",
            p.cluster_of
        );
        // PT never increases relative to the unclustered estimate.
        let trivial: Vec<usize> = (0..g.task_count()).collect();
        assert!(p.estimated_pt <= estimate_pt(&g, &trivial).unwrap());
    }

    #[test]
    fn packing_never_increases_estimated_pt() {
        for g in [
            generators::gauss_elimination(5, 1.0, 3.0),
            generators::lattice(3, 3, 2.0, 6.0),
            generators::fft(8, 1.0, 4.0),
            generators::outtree(3, 2, 1.0, 9.0),
        ] {
            let trivial: Vec<usize> = (0..g.task_count()).collect();
            let before = estimate_pt(&g, &trivial).unwrap();
            let p = pack(&g).unwrap();
            assert!(
                p.estimated_pt <= before + 1e-9,
                "{}: {} > {before}",
                g.name(),
                p.estimated_pt
            );
            assert!(p.packed.is_dag(), "{}", g.name());
            // weight is conserved
            assert!((p.packed.total_weight() - g.total_weight()).abs() < 1e-9);
        }
    }

    #[test]
    fn packed_graph_volume_never_exceeds_original() {
        let g = generators::gauss_elimination(5, 1.0, 3.0);
        let p = pack(&g).unwrap();
        assert!(p.packed.total_volume() <= g.total_volume() + 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new("empty");
        let p = pack(&g).unwrap();
        assert_eq!(p.packed.task_count(), 0);
        assert_eq!(p.estimated_pt, 0.0);
        let lc = linear_cluster(&g).unwrap();
        assert_eq!(lc.count, 0);
        assert!(lc.cluster_of.is_empty());
    }

    #[test]
    fn linear_clusters_are_paths() {
        use std::collections::BTreeMap;
        for g in [
            generators::gauss_elimination(5, 2.0, 3.0),
            generators::lattice(4, 4, 1.0, 4.0),
            generators::fft(8, 2.0, 3.0),
        ] {
            let lc = linear_cluster(&g).unwrap();
            assert_eq!(lc.cluster_of.len(), g.task_count());
            // Every cluster must be a path: within the cluster, at most one
            // predecessor and one successor per task stay in-cluster.
            let mut in_deg: BTreeMap<(usize, u32), usize> = BTreeMap::new();
            let mut out_deg: BTreeMap<(usize, u32), usize> = BTreeMap::new();
            for (_, e) in g.edges() {
                let (cs, cd) = (lc.cluster_of[e.src.index()], lc.cluster_of[e.dst.index()]);
                if cs == cd {
                    *out_deg.entry((cs, e.src.0)).or_default() += 1;
                    *in_deg.entry((cd, e.dst.0)).or_default() += 1;
                }
            }
            for (&k, &d) in &in_deg {
                assert!(d <= 1, "{}: task {k:?} has {d} in-cluster preds", g.name());
            }
            for (&k, &d) in &out_deg {
                assert!(d <= 1, "{}: task {k:?} has {d} in-cluster succs", g.name());
            }
        }
    }

    #[test]
    fn cluster_zero_is_the_critical_path() {
        let g = generators::chain(5, 3.0, 2.0);
        let lc = linear_cluster(&g).unwrap();
        assert_eq!(lc.count, 1, "a chain is one path");
        assert!(lc.cluster_of.iter().all(|&c| c == 0));
        assert_eq!(lc.estimated_pt, 15.0);
    }

    #[test]
    fn schedule_clusters_is_valid_and_respects_assignment() {
        use banger_machine::{Machine, MachineParams, Topology};
        let g = generators::lattice(4, 4, 2.0, 5.0);
        let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
        let lc = linear_cluster(&g).unwrap();
        let s = schedule_clusters(&g, &m, &lc);
        s.validate(&g, &m).unwrap();
        for p in s.placements() {
            assert_eq!(
                p.proc.index(),
                lc.cluster_of[p.task.index()] % m.processors(),
                "task {} must sit on its cluster's processor",
                p.task
            );
        }
        // The diamond-contraction case that breaks graph contraction must
        // still schedule fine under assignment-based clustering.
        let mut d = TaskGraph::new("diamond");
        let a = d.add_task("a", 1.0);
        let b = d.add_task("b", 5.0);
        let c = d.add_task("c", 1.0);
        let e = d.add_task("d", 1.0);
        d.add_edge(a, b, 10.0, "x").unwrap();
        d.add_edge(a, c, 1.0, "y").unwrap();
        d.add_edge(b, e, 10.0, "u").unwrap();
        d.add_edge(c, e, 1.0, "v").unwrap();
        let lcd = linear_cluster(&d).unwrap();
        let sd = schedule_clusters(&d, &m, &lcd);
        sd.validate(&d, &m).unwrap();
    }

    #[test]
    fn linear_clustering_wins_when_compute_dominates() {
        use banger_machine::{Machine, MachineParams, Topology};
        // Compute-heavy lattice: keeping each heavy path local while
        // spreading independent paths beats serial comfortably. (On
        // communication-dominated graphs wrap mapping can lose to serial —
        // that is the known cost of fixed cluster assignment.)
        let g = generators::lattice(5, 5, 8.0, 1.0);
        let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
        let lc = linear_cluster(&g).unwrap();
        let s = schedule_clusters(&g, &m, &lc);
        let serial = crate::list::serial(&g, &m);
        assert!(
            s.makespan() < 0.8 * serial.makespan(),
            "clustered {} vs serial {}",
            s.makespan(),
            serial.makespan()
        );
    }
}
