//! Deterministic parallel sweeps over independent scheduling runs.
//!
//! The environment's interactive tools — speedup prediction, heuristic
//! comparison, machine advice — all share one shape: schedule the *same*
//! task graph many times against different machines or with different
//! heuristics, then tabulate. Every run is independent, so the sweep is
//! embarrassingly parallel; what must NOT change is the answer. This
//! module provides [`parallel_map`], a work-claiming fan-out whose output
//! is **bit-identical to the sequential loop**: results are collected by
//! input index, never by completion order, and each run is a pure function
//! of its input.
//!
//! Worker count comes from [`std::thread::available_parallelism`], capped
//! by the number of items; a single item (or a single hardware thread)
//! short-circuits to the plain sequential loop so tiny sweeps pay no
//! thread-spawn tax.

use crate::schedule::Schedule;
use banger_machine::Machine;
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::TaskGraph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Applies `f` to every item and returns the results **in input order**.
///
/// Items are claimed by worker threads from a shared atomic cursor, so a
/// slow item does not leave later items stranded behind it; each result is
/// sent home tagged with its index. Because `f` receives only the item (and
/// its index) and the collection is by index, the output `Vec` is exactly
/// what the sequential `items.iter().map(..)` loop would produce, whatever
/// the thread interleaving.
///
/// Panics in `f` propagate: the scope joins all workers, and a worker that
/// panicked poisons the join, re-raising on the caller's thread.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_stats(items, f).0
}

/// Worker accounting for one [`parallel_map_stats`] sweep, so benchmark
/// entries can report the parallelism that was actually *engaged*, not
/// just planned. `engaged_workers` counts threads that claimed at least
/// one item — with more workers than items (or a very fast `f`) some
/// threads can lose every claim race and contribute nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Workers the sweep planned to use ([`planned_workers`]).
    pub planned_workers: usize,
    /// Workers that processed at least one item (1 for the sequential
    /// short-circuit path).
    pub engaged_workers: usize,
}

/// [`parallel_map`] plus per-sweep [`SweepStats`]. The result `Vec` is
/// identical to [`parallel_map`]'s — stats are observational only.
pub fn parallel_map_stats<T, R, F>(items: &[T], f: F) -> (Vec<R>, SweepStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = planned_workers(items.len());
    if workers <= 1 {
        let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        return (
            out,
            SweepStats {
                planned_workers: workers.max(usize::from(!items.is_empty())),
                engaged_workers: usize::from(!items.is_empty()),
            },
        );
    }

    let cursor = AtomicUsize::new(0);
    let engaged = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let engaged = &engaged;
            let f = &f;
            s.spawn(move || {
                let mut claimed_any = false;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if !claimed_any {
                        claimed_any = true;
                        engaged.fetch_add(1, Ordering::Relaxed);
                    }
                    // The receiver outlives the scope; send only fails if
                    // the caller's thread already panicked, in which case
                    // the result is moot.
                    let _ = tx.send((i, f(i, &items[i])));
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            out[i] = Some(r);
        }
    });

    let out = out
        .into_iter()
        .map(|r| r.expect("worker claimed every index"))
        .collect();
    (
        out,
        SweepStats {
            planned_workers: workers,
            engaged_workers: engaged.load(Ordering::Relaxed),
        },
    )
}

/// The worker-thread count [`parallel_map`] will use for a sweep of
/// `items` items: `available_parallelism` capped by the item count,
/// where `<= 1` means the sweep runs as a plain sequential loop.
/// Benchmarks use this to report the parallelism they actually measured
/// instead of assuming the machine's core count was engaged.
///
/// The `BANGER_SWEEP_WORKERS` environment variable overrides the
/// detected parallelism (still capped by the item count): containers
/// that expose a single CPU to `available_parallelism` can set it to
/// exercise — and benchmark — the multi-worker path. Unparseable or
/// zero values are ignored.
pub fn planned_workers(items: usize) -> usize {
    let detected = std::env::var("BANGER_SWEEP_WORKERS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    detected.min(items)
}

/// Schedules `g` on every machine in `machines` with the named heuristic,
/// in parallel, sharing one [`GraphAnalysis`] across all runs. Results are
/// in `machines` order. Returns `None` if `name` is unknown.
pub fn sweep_machines(name: &str, g: &TaskGraph, machines: &[Machine]) -> Option<Vec<Schedule>> {
    sweep_machines_stats(name, g, machines).map(|(out, _)| out)
}

/// [`sweep_machines`] plus the sweep's [`SweepStats`] (planned and engaged
/// worker counts), for benchmark honesty reporting.
pub fn sweep_machines_stats(
    name: &str,
    g: &TaskGraph,
    machines: &[Machine],
) -> Option<(Vec<Schedule>, SweepStats)> {
    // Validate the name once, up front, so the fan-out can unwrap.
    if name != "serial" && name != "DSH" && !crate::HEURISTIC_NAMES.contains(&name) {
        return None;
    }
    let a = GraphAnalysis::analyze(g);
    Some(parallel_map_stats(machines, |_, m| {
        crate::run_heuristic_with(name, g, m, &a).expect("name pre-validated")
    }))
}

/// Schedules `g` on `m` with every named heuristic, in parallel, sharing
/// one [`GraphAnalysis`]. Results are in `names` order; unknown names
/// yield `None` in their slot.
pub fn sweep_heuristics(names: &[&str], g: &TaskGraph, m: &Machine) -> Vec<Option<Schedule>> {
    let a = GraphAnalysis::analyze(g);
    parallel_map(names, |_, name| crate::run_heuristic_with(name, g, m, &a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{MachineParams, Topology};
    use banger_taskgraph::generators;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn worker_override_respected_and_capped() {
        // Sweep results are worker-count-independent (collected by input
        // index), so mutating the env var here cannot affect other tests'
        // answers even if they race on it — only thread counts change.
        std::env::set_var("BANGER_SWEEP_WORKERS", "3");
        assert_eq!(planned_workers(100), 3);
        assert_eq!(planned_workers(2), 2, "item count still caps");
        std::env::set_var("BANGER_SWEEP_WORKERS", "0");
        assert!(planned_workers(100) >= 1, "zero is ignored");
        std::env::set_var("BANGER_SWEEP_WORKERS", "nope");
        assert!(planned_workers(100) >= 1, "garbage is ignored");
        std::env::remove_var("BANGER_SWEEP_WORKERS");

        // And the parallel path still matches sequential under override,
        // with honest worker accounting.
        std::env::set_var("BANGER_SWEEP_WORKERS", "4");
        let items: Vec<usize> = (0..64).collect();
        let (out, stats) = parallel_map_stats(&items, |_, &x| x * 2);
        std::env::remove_var("BANGER_SWEEP_WORKERS");
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert_eq!(stats.planned_workers, 4);
        assert!(
            (1..=4).contains(&stats.engaged_workers),
            "engaged {} of 4 planned",
            stats.engaged_workers
        );
    }

    #[test]
    fn sweep_stats_sequential_path() {
        // A single item short-circuits to the caller's thread: one worker
        // planned, one engaged. An empty sweep engages nobody.
        let (out, s1) = parallel_map_stats(&[7u32], |_, &x| x + 1);
        assert_eq!(out, vec![8]);
        assert_eq!(
            s1,
            SweepStats {
                planned_workers: 1,
                engaged_workers: 1
            }
        );
        let none: Vec<u32> = vec![];
        let (_, s0) = parallel_map_stats(&none, |_, &x| x);
        assert_eq!(s0.engaged_workers, 0);
    }

    #[test]
    fn sweep_machines_matches_sequential() {
        let g = generators::gauss_elimination(5, 2.0, 3.0);
        let machines: Vec<Machine> = (0..=4)
            .map(|dim| {
                Machine::new(
                    Topology::hypercube(dim),
                    MachineParams {
                        msg_startup: 0.5,
                        ..MachineParams::default()
                    },
                )
            })
            .collect();
        let par = sweep_machines("MH", &g, &machines).unwrap();
        for (m, s) in machines.iter().zip(&par) {
            let seq = crate::mh::mh(&g, m);
            assert_eq!(*s, seq, "{}", m.topology().name());
        }
    }

    #[test]
    fn sweep_machines_rejects_unknown_heuristic() {
        let g = generators::fork_join(2, 1.0, 1.0, 1.0, 1.0);
        let machines = [Machine::new(Topology::single(), MachineParams::default())];
        assert!(sweep_machines("bogus", &g, &machines).is_none());
    }

    #[test]
    fn sweep_heuristics_matches_sequential() {
        let g = generators::lattice(4, 4, 3.0, 2.0);
        let m = Machine::new(Topology::mesh(2, 2), MachineParams::default());
        let mut names: Vec<&str> = crate::HEURISTIC_NAMES.to_vec();
        names.push("DSH");
        names.push("bogus");
        let par = sweep_heuristics(&names, &g, &m);
        for (name, s) in names.iter().zip(&par) {
            let seq = crate::run_heuristic(name, &g, &m);
            assert_eq!(*s, seq, "{name}");
        }
        assert!(par.last().unwrap().is_none());
    }
}
