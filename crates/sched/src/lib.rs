#![warn(missing_docs)]

//! # banger-sched — PPSE scheduling heuristics
//!
//! The paper's second principle: *machine-independent parallel programming
//! can be made efficient by optimal scheduling heuristics which find the
//! shortest elapsed execution time schedule for a specific parallel
//! program, given a specific target machine.* Banger inherited its
//! schedulers from PPSE; this crate re-implements that family:
//!
//! * [`list`] — classic analytic list schedulers (HLFET, MCP, ETF, DLS)
//!   plus the `serial` and communication-blind `naive_no_comm` baselines;
//! * [`mh`] — the El-Rewini & Lewis **Mapping Heuristic** with hop-accurate
//!   routing and link contention (the PPSE flagship);
//! * [`dsh`] — Kruatrachue's **Duplication Scheduling Heuristic**;
//! * [`grain`] — grain packing (edge-zeroing clustering) to coarsen
//!   fine-grain designs before scheduling;
//! * [`schedule`] — the validated [`Schedule`] representation shared by
//!   all of the above;
//! * [`bounds`] — lower bounds for reporting heuristic quality;
//! * [`reference`] — the retained naive implementations pinning the
//!   optimised selection/caching paths to bit-identical output
//!   (see DESIGN.md §14 for the complexity contract).
//!
//! ## Example
//!
//! ```
//! use banger_machine::{Machine, MachineParams, Topology};
//! use banger_sched::{list, mh};
//! use banger_taskgraph::generators;
//!
//! let g = generators::gauss_elimination(4, 2.0, 1.0);
//! let m = Machine::new(Topology::hypercube(2), MachineParams::default());
//! let schedule = mh::mh(&g, &m);
//! schedule.validate(&g, &m).unwrap();
//! assert!(schedule.makespan() <= list::serial(&g, &m).makespan());
//! ```

pub mod bounds;
pub mod dsh;
pub mod engine;
pub mod grain;
pub mod list;
pub mod mh;
mod ready;
pub mod reference;
pub mod schedule;
pub mod sweep;
pub mod textfmt;

pub use schedule::{Placement, SchedStats, Schedule, ScheduleError, ScheduleSummary};

use banger_machine::Machine;
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::TaskGraph;

/// Every heuristic in the crate, by name — the comparison tables and
/// benches iterate over this list.
pub const HEURISTIC_NAMES: [&str; 7] = ["serial", "naive", "HLFET", "MCP", "ETF", "DLS", "MH"];

/// Runs a heuristic by name (see [`HEURISTIC_NAMES`]; `"DSH"` is also
/// accepted). Returns `None` for unknown names.
pub fn run_heuristic(name: &str, g: &TaskGraph, m: &Machine) -> Option<Schedule> {
    if name == "serial" {
        return Some(list::serial(g, m));
    }
    let a = GraphAnalysis::analyze(g);
    run_heuristic_with(name, g, m, &a)
}

/// [`run_heuristic`] with a precomputed [`GraphAnalysis`], so sweeps over
/// many heuristics or machines compute the machine-independent levels once.
pub fn run_heuristic_with(
    name: &str,
    g: &TaskGraph,
    m: &Machine,
    a: &GraphAnalysis,
) -> Option<Schedule> {
    Some(match name {
        "serial" => list::serial(g, m),
        "naive" => list::naive_no_comm_with(g, m, a),
        "HLFET" => list::hlfet_with(g, m, a),
        "MCP" => list::mcp_with(g, m, a),
        "ETF" => list::etf_with(g, m, a),
        "DLS" => list::dls_with(g, m, a),
        "MH" => mh::mh_with(g, m, a),
        "DSH" => dsh::dsh_with(g, m, a),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{MachineParams, Topology};
    use banger_taskgraph::generators;

    #[test]
    fn run_heuristic_dispatch() {
        let g = generators::gauss_elimination(4, 2.0, 1.0);
        let m = Machine::new(Topology::hypercube(2), MachineParams::default());
        for name in HEURISTIC_NAMES.iter().chain(["DSH"].iter()) {
            let s = run_heuristic(name, &g, &m).unwrap_or_else(|| panic!("{name} missing"));
            s.validate(&g, &m).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                s.heuristic(),
                if *name == "naive" {
                    "naive-no-comm"
                } else {
                    *name
                }
            );
        }
        assert!(run_heuristic("bogus", &g, &m).is_none());
    }
}
