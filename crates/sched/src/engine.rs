//! Shared list-scheduling machinery: processor timelines with
//! insertion-based slot search, data-arrival computation (analytic and
//! link-contention models), and the mutable engine state every heuristic
//! drives.

use crate::schedule::{SchedStats, Schedule};
use banger_machine::{LinkId, Machine, ProcId, SwitchingMode};
use banger_taskgraph::{TaskGraph, TaskId};

/// Busy intervals of one processor, kept sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct ProcTimeline {
    /// `(start, finish)` of committed placements, sorted by start.
    busy: Vec<(f64, f64)>,
}

impl ProcTimeline {
    /// Earliest start `>= ready` of a free slot of length `dur`, using
    /// insertion between existing placements (the classic insertion-based
    /// variant; an append-only policy falls out when gaps never fit).
    ///
    /// A binary search skips the prefix of intervals that can neither host
    /// the job (they end at or before `ready` and leave no usable gap) nor
    /// push the candidate start forward, so repeated probes on long
    /// timelines stop rescanning from the front. The skip predicate is the
    /// conjunction of two monotone conditions over the sorted, disjoint
    /// intervals, and skipped intervals provably leave the scan state
    /// unchanged — results are bit-identical to the full scan.
    pub fn earliest_slot(&self, ready: f64, dur: f64) -> f64 {
        let skip = self
            .busy
            .partition_point(|&(s, f)| f <= ready && s + crate::schedule::TIME_EPS < ready + dur);
        let mut candidate = ready;
        for &(s, f) in &self.busy[skip..] {
            if candidate + dur <= s + crate::schedule::TIME_EPS {
                return candidate;
            }
            if f > candidate {
                candidate = f;
            }
        }
        candidate
    }

    /// Commits an interval. Panics in debug builds if it overlaps.
    pub fn reserve(&mut self, start: f64, dur: f64) {
        let finish = start + dur;
        let idx = self.busy.partition_point(|&(s, _)| s < start);
        debug_assert!(
            idx == 0 || self.busy[idx - 1].1 <= start + crate::schedule::TIME_EPS,
            "overlapping reservation"
        );
        debug_assert!(
            idx == self.busy.len() || finish <= self.busy[idx].0 + crate::schedule::TIME_EPS,
            "overlapping reservation"
        );
        self.busy.insert(idx, (start, finish));
    }

    /// Finish time of the last committed interval (0 when idle forever).
    pub fn last_finish(&self) -> f64 {
        self.busy.last().map(|&(_, f)| f).unwrap_or(0.0)
    }
}

/// Busy intervals per directed link, for contention-aware estimates.
/// Timelines are held in a dense table indexed by [`LinkId`], sized for one
/// machine by [`LinkState::for_machine`].
#[derive(Debug, Clone)]
pub struct LinkState {
    links: Vec<Vec<(f64, f64)>>,
}

/// A tentative link reservation produced while costing a message route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkReservation {
    /// The directed link's dense index.
    pub link: LinkId,
    /// Occupancy start.
    pub start: f64,
    /// Occupancy end.
    pub end: f64,
}

impl LinkState {
    /// An empty occupancy table covering every directed link of `m`.
    pub fn for_machine(m: &Machine) -> Self {
        LinkState {
            links: vec![Vec::new(); m.routing().directed_links()],
        }
    }

    /// Earliest start `>= ready` at which the link is free for `dur`.
    fn earliest(&self, link: LinkId, ready: f64, dur: f64) -> f64 {
        let mut candidate = ready;
        for &(s, f) in &self.links[link.index()] {
            if candidate + dur <= s + crate::schedule::TIME_EPS {
                return candidate;
            }
            if f > candidate {
                candidate = f;
            }
        }
        candidate
    }

    /// Commits a reservation.
    pub fn reserve(&mut self, r: LinkReservation) {
        let busy = &mut self.links[r.link.index()];
        let idx = busy.partition_point(|&(s, _)| s < r.start);
        busy.insert(idx, (r.start, r.end));
    }

    /// Arrival time of a message of `volume` units departing at `depart`
    /// along the precomputed link `route` (see
    /// [`banger_machine::RoutingTable::link_slice`]) under store-and-forward
    /// link occupancy. Pure probe: allocates nothing and reserves nothing.
    /// An empty route means a local transfer and returns `depart` unchanged.
    ///
    /// The message startup cost is paid once at injection. Under
    /// [`SwitchingMode::CutThrough`] the per-hop transmission collapses to
    /// the hop latency plus a single transfer charged on every link
    /// simultaneously; we conservatively occupy each link for the full
    /// transfer time.
    pub fn route_arrival(&self, m: &Machine, route: &[LinkId], depart: f64, volume: f64) -> f64 {
        if route.is_empty() {
            return depart;
        }
        let transfer = m.link_transfer_time(volume);
        let hop_extra = match m.params().switching {
            SwitchingMode::StoreAndForward => 0.0,
            SwitchingMode::CutThrough { hop_latency } => hop_latency,
        };
        let mut t = depart + m.params().msg_startup;
        for &link in route {
            let start = self.earliest(link, t, transfer);
            t = start + transfer + hop_extra;
        }
        t
    }

    /// Like [`LinkState::route_arrival`], but also appends the per-hop
    /// reservations the transfer would make onto `out` (the caller's
    /// reusable scratch buffer), so a commit can reserve them.
    pub fn route_message(
        &self,
        m: &Machine,
        route: &[LinkId],
        depart: f64,
        volume: f64,
        out: &mut Vec<LinkReservation>,
    ) -> f64 {
        if route.is_empty() {
            return depart;
        }
        let transfer = m.link_transfer_time(volume);
        let hop_extra = match m.params().switching {
            SwitchingMode::StoreAndForward => 0.0,
            SwitchingMode::CutThrough { hop_latency } => hop_latency,
        };
        let mut t = depart + m.params().msg_startup;
        for &link in route {
            let start = self.earliest(link, t, transfer);
            let end = start + transfer;
            out.push(LinkReservation { link, start, end });
            t = end + hop_extra;
        }
        t
    }
}

/// How data-arrival times are estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommModel {
    /// The closed-form machine formula ([`Machine::comm_time`]); links are
    /// assumed contention-free.
    Analytic,
    /// Link-level store-and-forward occupancy tracked in a [`LinkState`]
    /// (the Mapping Heuristic's model).
    Contention,
}

/// One committed copy of a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Copy {
    /// The processor holding the copy.
    pub proc: ProcId,
    /// When the copy finishes.
    pub finish: f64,
}

/// Mutable state of a scheduling run.
pub struct Engine<'a> {
    /// The design being scheduled.
    pub g: &'a TaskGraph,
    /// The target machine.
    pub m: &'a Machine,
    /// One timeline per processor.
    pub timelines: Vec<ProcTimeline>,
    /// Committed copies per task (first = primary).
    pub copies: Vec<Vec<Copy>>,
    /// Link occupancy (only consulted under [`CommModel::Contention`]).
    pub links: LinkState,
    /// The communication model in force.
    pub comm: CommModel,
    schedule: Schedule,
    /// Reusable buffer for commit-path link reservations, so probing and
    /// committing allocate nothing per `(task, proc)` evaluation.
    scratch: Vec<LinkReservation>,
    /// Per-run probe counters, embedded into the schedule by
    /// [`Engine::finish`] as [`SchedStats`]. Strictly per-run: concurrent
    /// sweep workers never share a counter, so every schedule reports
    /// exactly the probes its own run performed.
    arrival_probes: std::cell::Cell<u64>,
    slot_searches: std::cell::Cell<u64>,
}

impl<'a> Engine<'a> {
    /// Creates an engine for one heuristic run.
    pub fn new(name: &str, g: &'a TaskGraph, m: &'a Machine, comm: CommModel) -> Self {
        Engine {
            g,
            m,
            timelines: vec![ProcTimeline::default(); m.processors()],
            copies: vec![Vec::new(); g.task_count()],
            links: LinkState::for_machine(m),
            comm,
            schedule: Schedule::new(name, g.task_count()),
            scratch: Vec::new(),
            arrival_probes: std::cell::Cell::new(0),
            slot_searches: std::cell::Cell::new(0),
        }
    }

    /// Arrival time of one copy's message at `p`, probe only.
    #[inline]
    fn copy_arrival(&self, c: &Copy, volume: f64, p: ProcId) -> f64 {
        if c.proc == p {
            return c.finish;
        }
        match self.comm {
            CommModel::Analytic => c.finish + self.m.comm_time(c.proc, p, volume),
            CommModel::Contention => {
                let route = self.m.routing().link_slice(c.proc, p);
                if route.is_empty() {
                    // Distinct processors with no route: unreachable.
                    f64::INFINITY
                } else {
                    self.links.route_arrival(self.m, route, c.finish, volume)
                }
            }
        }
    }

    /// Earliest time the data of edge `pred -> t` can be present on `p`,
    /// taking the cheapest committed copy of the predecessor. Pure probe:
    /// allocates nothing. [`Engine::commit`] re-derives the winning route's
    /// reservations when it actually places a task.
    pub fn edge_arrival(&self, pred: TaskId, volume: f64, p: ProcId) -> f64 {
        self.arrival_probes.set(self.arrival_probes.get() + 1);
        let mut best = f64::INFINITY;
        for c in &self.copies[pred.index()] {
            let arrival = self.copy_arrival(c, volume, p);
            if arrival < best {
                best = arrival;
            }
        }
        best
    }

    /// Like [`Engine::edge_arrival`], but appends the winning route's link
    /// reservations onto `out` (used by the commit path). The winning copy
    /// matches the probe exactly: first copy with the strictly smallest
    /// arrival.
    fn edge_arrival_with_reservations(
        &self,
        pred: TaskId,
        volume: f64,
        p: ProcId,
        out: &mut Vec<LinkReservation>,
    ) -> f64 {
        let mut best = f64::INFINITY;
        let mut best_copy: Option<&Copy> = None;
        for c in &self.copies[pred.index()] {
            let arrival = self.copy_arrival(c, volume, p);
            if arrival < best {
                best = arrival;
                best_copy = Some(c);
            }
        }
        if self.comm == CommModel::Contention {
            if let Some(c) = best_copy {
                if c.proc != p {
                    let route = self.m.routing().link_slice(c.proc, p);
                    self.links
                        .route_message(self.m, route, c.finish, volume, out);
                }
            }
        }
        best
    }

    /// Ready time of task `t` on processor `p`: the latest arrival over all
    /// inputs. Pure probe: allocates nothing. Panics if a predecessor has
    /// not been placed yet — heuristics must respect topological readiness.
    pub fn ready_time(&self, t: TaskId, p: ProcId) -> f64 {
        let mut ready = 0.0f64;
        for &e in self.g.in_edges(t) {
            let edge = self.g.edge(e);
            assert!(
                !self.copies[edge.src.index()].is_empty(),
                "predecessor {} of {} not yet placed",
                edge.src,
                t
            );
            ready = ready.max(self.edge_arrival(edge.src, edge.volume, p));
        }
        ready
    }

    /// Ready time plus every input's link reservations, appended onto `out`
    /// (the commit path's reusable scratch buffer).
    fn ready_time_with_reservations(
        &self,
        t: TaskId,
        p: ProcId,
        out: &mut Vec<LinkReservation>,
    ) -> f64 {
        let mut ready = 0.0f64;
        for &e in self.g.in_edges(t) {
            let edge = self.g.edge(e);
            assert!(
                !self.copies[edge.src.index()].is_empty(),
                "predecessor {} of {} not yet placed",
                edge.src,
                t
            );
            ready = ready.max(self.edge_arrival_with_reservations(edge.src, edge.volume, p, out));
        }
        ready
    }

    /// Timeline slot search on `p`, counted toward the probe totals — the
    /// entry point heuristics use instead of poking `timelines` directly.
    #[inline]
    pub fn slot(&self, p: ProcId, ready: f64, dur: f64) -> f64 {
        self.slot_searches.set(self.slot_searches.get() + 1);
        self.timelines[p.index()].earliest_slot(ready, dur)
    }

    /// Earliest start of `t` on `p` given current state: ready time plus
    /// insertion slot search.
    pub fn earliest_start(&self, t: TaskId, p: ProcId) -> f64 {
        let ready = self.ready_time(t, p);
        let dur = self.m.exec_time(self.g.task(t).weight, p);
        self.slot(p, ready, dur)
    }

    /// Commits task `t` on processor `p` at the earliest feasible time,
    /// reserving links under the contention model. Returns the placement's
    /// `(start, finish)`. The first commit of a task is its primary copy.
    pub fn commit(&mut self, t: TaskId, p: ProcId) -> (f64, f64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let ready = self.ready_time_with_reservations(t, p, &mut scratch);
        let dur = self.m.exec_time(self.g.task(t).weight, p);
        let start = self.slot(p, ready, dur);
        let finish = start + dur;
        self.timelines[p.index()].reserve(start, dur);
        for &r in &scratch {
            self.links.reserve(r);
        }
        scratch.clear();
        self.scratch = scratch;
        let primary = self.copies[t.index()].is_empty();
        self.copies[t.index()].push(Copy { proc: p, finish });
        self.schedule.place(t, p, start, finish, primary);
        (start, finish)
    }

    /// True once the task has at least one committed copy.
    pub fn placed(&self, t: TaskId) -> bool {
        !self.copies[t.index()].is_empty()
    }

    /// Consumes the engine, returning the accumulated schedule with this
    /// run's probe counters embedded as [`SchedStats`].
    pub fn finish(self) -> Schedule {
        let mut schedule = self.schedule;
        schedule.set_stats(SchedStats {
            arrival_probes: self.arrival_probes.get(),
            slot_searches: self.slot_searches.get(),
        });
        schedule
    }

    /// Selects the processor minimising the earliest start of `t`
    /// (ties broken toward lower processor ids), the proc-selection rule
    /// shared by HLFET and MCP.
    pub fn best_processor(&self, t: TaskId) -> ProcId {
        let mut best = ProcId(0);
        let mut best_start = f64::INFINITY;
        for p in self.m.proc_ids() {
            let s = self.earliest_start(t, p);
            if s < best_start - crate::schedule::TIME_EPS {
                best_start = s;
                best = p;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{MachineParams, Topology};

    #[test]
    fn timeline_appends_and_inserts() {
        let mut tl = ProcTimeline::default();
        assert_eq!(tl.earliest_slot(0.0, 5.0), 0.0);
        tl.reserve(0.0, 5.0);
        assert_eq!(tl.earliest_slot(0.0, 5.0), 5.0);
        tl.reserve(10.0, 5.0);
        // gap [5, 10) fits a 4-unit job
        assert_eq!(tl.earliest_slot(0.0, 4.0), 5.0);
        // but not a 6-unit job
        assert_eq!(tl.earliest_slot(0.0, 6.0), 15.0);
        // ready time inside the gap
        assert_eq!(tl.earliest_slot(6.0, 3.0), 6.0);
        assert_eq!(tl.last_finish(), 15.0);
    }

    #[test]
    fn earliest_slot_matches_full_scan() {
        // The partition_point prefix skip must be bit-identical to the
        // original front-to-back scan, including degenerate probes whose
        // duration is below TIME_EPS.
        fn reference(busy: &[(f64, f64)], ready: f64, dur: f64) -> f64 {
            let mut candidate = ready;
            for &(s, f) in busy {
                if candidate + dur <= s + crate::schedule::TIME_EPS {
                    return candidate;
                }
                if f > candidate {
                    candidate = f;
                }
            }
            candidate
        }
        let mut tl = ProcTimeline::default();
        for (s, d) in [(0.0, 2.0), (3.0, 1.0), (6.0, 0.5), (10.0, 4.0), (20.0, 1.0)] {
            tl.reserve(s, d);
        }
        for ready in [0.0, 1.0, 2.0, 2.5, 4.0, 6.4, 9.9, 10.0, 14.0, 30.0] {
            for dur in [0.0, 1e-9, 0.5, 1.0, 2.0, 3.0, 7.0] {
                let got = tl.earliest_slot(ready, dur);
                let want = reference(&tl.busy, ready, dur);
                assert!(
                    got == want,
                    "ready={ready} dur={dur}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn timeline_insertion_keeps_order() {
        let mut tl = ProcTimeline::default();
        tl.reserve(10.0, 2.0);
        tl.reserve(0.0, 2.0);
        tl.reserve(5.0, 2.0);
        assert_eq!(tl.busy, vec![(0.0, 2.0), (5.0, 7.0), (10.0, 12.0)]);
    }

    #[test]
    fn link_routing_charges_per_hop() {
        let m = Machine::new(
            Topology::linear(3),
            MachineParams {
                msg_startup: 1.0,
                transmission_rate: 2.0,
                ..MachineParams::default()
            },
        );
        let links = LinkState::for_machine(&m);
        let route = m.routing().link_slice(ProcId(0), ProcId(2));
        // 4 units at rate 2 = 2 per link; 2 hops; startup 1.
        let mut res = Vec::new();
        let arrival = links.route_message(&m, route, 0.0, 4.0, &mut res);
        assert!((arrival - 5.0).abs() < 1e-12);
        assert_eq!(links.route_arrival(&m, route, 0.0, 4.0), arrival);
        assert_eq!(res.len(), 2);
        assert_eq!(
            m.routing().link_endpoints(res[0].link),
            (ProcId(0), ProcId(1))
        );
        assert!((res[0].start - 1.0).abs() < 1e-12);
        assert!((res[1].start - 3.0).abs() < 1e-12);
    }

    #[test]
    fn link_contention_delays_second_message() {
        let m = Machine::new(Topology::linear(2), MachineParams::default());
        let mut links = LinkState::for_machine(&m);
        let route = m.routing().link_slice(ProcId(0), ProcId(1));
        let mut r1 = Vec::new();
        let a1 = links.route_message(&m, route, 0.0, 10.0, &mut r1);
        assert_eq!(a1, 10.0);
        for r in r1 {
            links.reserve(r);
        }
        // Second message must queue behind the first on the only link.
        let a2 = links.route_arrival(&m, route, 0.0, 10.0);
        assert_eq!(a2, 20.0);
    }

    #[test]
    fn local_message_is_free() {
        let m = Machine::new(Topology::linear(2), MachineParams::default());
        let links = LinkState::for_machine(&m);
        let route = m.routing().link_slice(ProcId(1), ProcId(1));
        let mut res = Vec::new();
        let a = links.route_message(&m, route, 3.0, 100.0, &mut res);
        assert_eq!(a, 3.0);
        assert!(res.is_empty());
    }

    #[test]
    fn engine_commit_and_est() {
        let mut g = TaskGraph::new("p");
        let a = g.add_task("a", 4.0);
        let b = g.add_task("b", 4.0);
        g.add_edge(a, b, 6.0, "x").unwrap();
        let m = Machine::new(Topology::fully_connected(2), MachineParams::default());
        let mut eng = Engine::new("test", &g, &m, CommModel::Analytic);
        assert!(!eng.placed(a));
        eng.commit(a, ProcId(0));
        assert!(eng.placed(a));
        // same proc: start at 4; other proc: 4 + 6 comm = 10
        assert_eq!(eng.earliest_start(b, ProcId(0)), 4.0);
        assert_eq!(eng.earliest_start(b, ProcId(1)), 10.0);
        assert_eq!(eng.best_processor(b), ProcId(0));
        eng.commit(b, ProcId(0));
        let s = eng.finish();
        s.validate(&g, &m).unwrap();
        assert_eq!(s.makespan(), 8.0);
    }

    #[test]
    fn engine_duplicate_copy_reduces_arrival() {
        let mut g = TaskGraph::new("p");
        let a = g.add_task("a", 4.0);
        let b = g.add_task("b", 4.0);
        g.add_edge(a, b, 6.0, "x").unwrap();
        let m = Machine::new(Topology::fully_connected(2), MachineParams::default());
        let mut eng = Engine::new("test", &g, &m, CommModel::Analytic);
        eng.commit(a, ProcId(0));
        eng.commit(a, ProcId(1)); // duplicate
                                  // now b on P1 sees the local copy
        assert_eq!(eng.earliest_start(b, ProcId(1)), 4.0);
        eng.commit(b, ProcId(1));
        let s = eng.finish();
        s.validate(&g, &m).unwrap();
        // first copy is primary
        assert_eq!(s.primary(a).unwrap().proc, ProcId(0));
    }

    #[test]
    #[should_panic(expected = "not yet placed")]
    fn unplaced_pred_panics() {
        let mut g = TaskGraph::new("p");
        let a = g.add_task("a", 4.0);
        let b = g.add_task("b", 4.0);
        g.add_edge(a, b, 6.0, "x").unwrap();
        let m = Machine::new(Topology::fully_connected(2), MachineParams::default());
        let eng = Engine::new("test", &g, &m, CommModel::Analytic);
        let _ = eng.ready_time(b, ProcId(0));
    }
}
