//! Shared list-scheduling machinery: processor timelines with
//! insertion-based slot search, data-arrival computation (analytic and
//! link-contention models), and the mutable engine state every heuristic
//! drives.

use crate::schedule::Schedule;
use banger_machine::{Machine, ProcId, SwitchingMode};
use banger_taskgraph::{TaskGraph, TaskId};
use std::collections::HashMap;

/// Busy intervals of one processor, kept sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct ProcTimeline {
    /// `(start, finish)` of committed placements, sorted by start.
    busy: Vec<(f64, f64)>,
}

impl ProcTimeline {
    /// Earliest start `>= ready` of a free slot of length `dur`, using
    /// insertion between existing placements (the classic insertion-based
    /// variant; an append-only policy falls out when gaps never fit).
    pub fn earliest_slot(&self, ready: f64, dur: f64) -> f64 {
        let mut candidate = ready;
        for &(s, f) in &self.busy {
            if candidate + dur <= s + crate::schedule::TIME_EPS {
                return candidate;
            }
            if f > candidate {
                candidate = f;
            }
        }
        candidate
    }

    /// Commits an interval. Panics in debug builds if it overlaps.
    pub fn reserve(&mut self, start: f64, dur: f64) {
        let finish = start + dur;
        let idx = self
            .busy
            .partition_point(|&(s, _)| s < start);
        debug_assert!(
            idx == 0 || self.busy[idx - 1].1 <= start + crate::schedule::TIME_EPS,
            "overlapping reservation"
        );
        debug_assert!(
            idx == self.busy.len() || finish <= self.busy[idx].0 + crate::schedule::TIME_EPS,
            "overlapping reservation"
        );
        self.busy.insert(idx, (start, finish));
    }

    /// Finish time of the last committed interval (0 when idle forever).
    pub fn last_finish(&self) -> f64 {
        self.busy.last().map(|&(_, f)| f).unwrap_or(0.0)
    }
}

/// Busy intervals per directed link, for contention-aware estimates.
#[derive(Debug, Clone, Default)]
pub struct LinkState {
    links: HashMap<(ProcId, ProcId), Vec<(f64, f64)>>,
}

/// A tentative link reservation produced while costing a message route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkReservation {
    /// The directed link.
    pub link: (ProcId, ProcId),
    /// Occupancy start.
    pub start: f64,
    /// Occupancy end.
    pub end: f64,
}

impl LinkState {
    /// Earliest start `>= ready` at which the link is free for `dur`.
    fn earliest(&self, link: (ProcId, ProcId), ready: f64, dur: f64) -> f64 {
        let mut candidate = ready;
        if let Some(busy) = self.links.get(&link) {
            for &(s, f) in busy {
                if candidate + dur <= s + crate::schedule::TIME_EPS {
                    return candidate;
                }
                if f > candidate {
                    candidate = f;
                }
            }
        }
        candidate
    }

    /// Commits a reservation.
    pub fn reserve(&mut self, r: LinkReservation) {
        let busy = self.links.entry(r.link).or_default();
        let idx = busy.partition_point(|&(s, _)| s < r.start);
        busy.insert(idx, (r.start, r.end));
    }

    /// Routes a message of `volume` units from `src` (available at time
    /// `depart`) to `dst` under store-and-forward link occupancy, returning
    /// the arrival time and the link reservations the transfer would make.
    ///
    /// The message startup cost is paid once at injection. Under
    /// [`SwitchingMode::CutThrough`] the per-hop transmission collapses to
    /// the hop latency plus a single transfer charged on every link
    /// simultaneously; we conservatively occupy each link for the full
    /// transfer time.
    pub fn route_message(
        &self,
        m: &Machine,
        src: ProcId,
        dst: ProcId,
        depart: f64,
        volume: f64,
    ) -> (f64, Vec<LinkReservation>) {
        if src == dst {
            return (depart, Vec::new());
        }
        let links = m.routing().links(src, dst);
        if links.is_empty() {
            return (f64::INFINITY, Vec::new());
        }
        let transfer = m.link_transfer_time(volume);
        let hop_extra = match m.params().switching {
            SwitchingMode::StoreAndForward => 0.0,
            SwitchingMode::CutThrough { hop_latency } => hop_latency,
        };
        let mut t = depart + m.params().msg_startup;
        let mut reservations = Vec::with_capacity(links.len());
        for link in links {
            let start = self.earliest(link, t, transfer);
            let end = start + transfer;
            reservations.push(LinkReservation { link, start, end });
            t = end + hop_extra;
        }
        (t, reservations)
    }
}

/// How data-arrival times are estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommModel {
    /// The closed-form machine formula ([`Machine::comm_time`]); links are
    /// assumed contention-free.
    Analytic,
    /// Link-level store-and-forward occupancy tracked in a [`LinkState`]
    /// (the Mapping Heuristic's model).
    Contention,
}

/// One committed copy of a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Copy {
    /// The processor holding the copy.
    pub proc: ProcId,
    /// When the copy finishes.
    pub finish: f64,
}

/// Mutable state of a scheduling run.
pub struct Engine<'a> {
    /// The design being scheduled.
    pub g: &'a TaskGraph,
    /// The target machine.
    pub m: &'a Machine,
    /// One timeline per processor.
    pub timelines: Vec<ProcTimeline>,
    /// Committed copies per task (first = primary).
    pub copies: Vec<Vec<Copy>>,
    /// Link occupancy (only consulted under [`CommModel::Contention`]).
    pub links: LinkState,
    /// The communication model in force.
    pub comm: CommModel,
    schedule: Schedule,
}

impl<'a> Engine<'a> {
    /// Creates an engine for one heuristic run.
    pub fn new(name: &str, g: &'a TaskGraph, m: &'a Machine, comm: CommModel) -> Self {
        Engine {
            g,
            m,
            timelines: vec![ProcTimeline::default(); m.processors()],
            copies: vec![Vec::new(); g.task_count()],
            links: LinkState::default(),
            comm,
            schedule: Schedule::new(name, g.task_count()),
        }
    }

    /// Earliest time the data of edge `pred -> t` can be present on `p`,
    /// taking the cheapest committed copy of the predecessor. Under the
    /// contention model, also returns the link reservations of the winning
    /// route so a commit can reserve them.
    pub fn edge_arrival(
        &self,
        pred: TaskId,
        volume: f64,
        p: ProcId,
    ) -> (f64, Vec<LinkReservation>) {
        let mut best = (f64::INFINITY, Vec::new());
        for c in &self.copies[pred.index()] {
            let (arrival, res) = match self.comm {
                CommModel::Analytic => {
                    (c.finish + self.m.comm_time(c.proc, p, volume), Vec::new())
                }
                CommModel::Contention => {
                    self.links.route_message(self.m, c.proc, p, c.finish, volume)
                }
            };
            if arrival < best.0 {
                best = (arrival, res);
            }
        }
        best
    }

    /// Ready time of task `t` on processor `p`: the latest arrival over all
    /// inputs. Also returns every input's reservations (for committing).
    /// Panics if a predecessor has not been placed yet — heuristics must
    /// respect topological readiness.
    pub fn ready_time(&self, t: TaskId, p: ProcId) -> (f64, Vec<LinkReservation>) {
        let mut ready = 0.0f64;
        let mut all_res = Vec::new();
        for &e in self.g.in_edges(t) {
            let edge = self.g.edge(e);
            assert!(
                !self.copies[edge.src.index()].is_empty(),
                "predecessor {} of {} not yet placed",
                edge.src,
                t
            );
            let (arrival, res) = self.edge_arrival(edge.src, edge.volume, p);
            ready = ready.max(arrival);
            all_res.extend(res);
        }
        (ready, all_res)
    }

    /// Earliest start of `t` on `p` given current state: ready time plus
    /// insertion slot search.
    pub fn earliest_start(&self, t: TaskId, p: ProcId) -> f64 {
        let (ready, _) = self.ready_time(t, p);
        let dur = self.m.exec_time(self.g.task(t).weight, p);
        self.timelines[p.index()].earliest_slot(ready, dur)
    }

    /// Commits task `t` on processor `p` at the earliest feasible time,
    /// reserving links under the contention model. Returns the placement's
    /// `(start, finish)`. The first commit of a task is its primary copy.
    pub fn commit(&mut self, t: TaskId, p: ProcId) -> (f64, f64) {
        let (ready, reservations) = self.ready_time(t, p);
        let dur = self.m.exec_time(self.g.task(t).weight, p);
        let start = self.timelines[p.index()].earliest_slot(ready, dur);
        let finish = start + dur;
        self.timelines[p.index()].reserve(start, dur);
        for r in reservations {
            self.links.reserve(r);
        }
        let primary = self.copies[t.index()].is_empty();
        self.copies[t.index()].push(Copy { proc: p, finish });
        self.schedule.place(t, p, start, finish, primary);
        (start, finish)
    }

    /// True once the task has at least one committed copy.
    pub fn placed(&self, t: TaskId) -> bool {
        !self.copies[t.index()].is_empty()
    }

    /// Consumes the engine, returning the accumulated schedule.
    pub fn finish(self) -> Schedule {
        self.schedule
    }

    /// Selects the processor minimising the earliest start of `t`
    /// (ties broken toward lower processor ids), the proc-selection rule
    /// shared by HLFET and MCP.
    pub fn best_processor(&self, t: TaskId) -> ProcId {
        let mut best = ProcId(0);
        let mut best_start = f64::INFINITY;
        for p in self.m.proc_ids() {
            let s = self.earliest_start(t, p);
            if s < best_start - crate::schedule::TIME_EPS {
                best_start = s;
                best = p;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{MachineParams, Topology};

    #[test]
    fn timeline_appends_and_inserts() {
        let mut tl = ProcTimeline::default();
        assert_eq!(tl.earliest_slot(0.0, 5.0), 0.0);
        tl.reserve(0.0, 5.0);
        assert_eq!(tl.earliest_slot(0.0, 5.0), 5.0);
        tl.reserve(10.0, 5.0);
        // gap [5, 10) fits a 4-unit job
        assert_eq!(tl.earliest_slot(0.0, 4.0), 5.0);
        // but not a 6-unit job
        assert_eq!(tl.earliest_slot(0.0, 6.0), 15.0);
        // ready time inside the gap
        assert_eq!(tl.earliest_slot(6.0, 3.0), 6.0);
        assert_eq!(tl.last_finish(), 15.0);
    }

    #[test]
    fn timeline_insertion_keeps_order() {
        let mut tl = ProcTimeline::default();
        tl.reserve(10.0, 2.0);
        tl.reserve(0.0, 2.0);
        tl.reserve(5.0, 2.0);
        assert_eq!(tl.busy, vec![(0.0, 2.0), (5.0, 7.0), (10.0, 12.0)]);
    }

    #[test]
    fn link_routing_charges_per_hop() {
        let m = Machine::new(
            Topology::linear(3),
            MachineParams {
                msg_startup: 1.0,
                transmission_rate: 2.0,
                ..MachineParams::default()
            },
        );
        let links = LinkState::default();
        // 4 units at rate 2 = 2 per link; 2 hops; startup 1.
        let (arrival, res) = links.route_message(&m, ProcId(0), ProcId(2), 0.0, 4.0);
        assert!((arrival - 5.0).abs() < 1e-12);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].link, (ProcId(0), ProcId(1)));
        assert!((res[0].start - 1.0).abs() < 1e-12);
        assert!((res[1].start - 3.0).abs() < 1e-12);
    }

    #[test]
    fn link_contention_delays_second_message() {
        let m = Machine::new(Topology::linear(2), MachineParams::default());
        let mut links = LinkState::default();
        let (a1, r1) = links.route_message(&m, ProcId(0), ProcId(1), 0.0, 10.0);
        assert_eq!(a1, 10.0);
        for r in r1 {
            links.reserve(r);
        }
        // Second message must queue behind the first on the only link.
        let (a2, _) = links.route_message(&m, ProcId(0), ProcId(1), 0.0, 10.0);
        assert_eq!(a2, 20.0);
    }

    #[test]
    fn local_message_is_free() {
        let m = Machine::new(Topology::linear(2), MachineParams::default());
        let links = LinkState::default();
        let (a, res) = links.route_message(&m, ProcId(1), ProcId(1), 3.0, 100.0);
        assert_eq!(a, 3.0);
        assert!(res.is_empty());
    }

    #[test]
    fn engine_commit_and_est() {
        let mut g = TaskGraph::new("p");
        let a = g.add_task("a", 4.0);
        let b = g.add_task("b", 4.0);
        g.add_edge(a, b, 6.0, "x").unwrap();
        let m = Machine::new(Topology::fully_connected(2), MachineParams::default());
        let mut eng = Engine::new("test", &g, &m, CommModel::Analytic);
        assert!(!eng.placed(a));
        eng.commit(a, ProcId(0));
        assert!(eng.placed(a));
        // same proc: start at 4; other proc: 4 + 6 comm = 10
        assert_eq!(eng.earliest_start(b, ProcId(0)), 4.0);
        assert_eq!(eng.earliest_start(b, ProcId(1)), 10.0);
        assert_eq!(eng.best_processor(b), ProcId(0));
        eng.commit(b, ProcId(0));
        let s = eng.finish();
        s.validate(&g, &m).unwrap();
        assert_eq!(s.makespan(), 8.0);
    }

    #[test]
    fn engine_duplicate_copy_reduces_arrival() {
        let mut g = TaskGraph::new("p");
        let a = g.add_task("a", 4.0);
        let b = g.add_task("b", 4.0);
        g.add_edge(a, b, 6.0, "x").unwrap();
        let m = Machine::new(Topology::fully_connected(2), MachineParams::default());
        let mut eng = Engine::new("test", &g, &m, CommModel::Analytic);
        eng.commit(a, ProcId(0));
        eng.commit(a, ProcId(1)); // duplicate
        // now b on P1 sees the local copy
        assert_eq!(eng.earliest_start(b, ProcId(1)), 4.0);
        eng.commit(b, ProcId(1));
        let s = eng.finish();
        s.validate(&g, &m).unwrap();
        // first copy is primary
        assert_eq!(s.primary(a).unwrap().proc, ProcId(0));
    }

    #[test]
    #[should_panic(expected = "not yet placed")]
    fn unplaced_pred_panics() {
        let mut g = TaskGraph::new("p");
        let a = g.add_task("a", 4.0);
        let b = g.add_task("b", 4.0);
        g.add_edge(a, b, 6.0, "x").unwrap();
        let m = Machine::new(Topology::fully_connected(2), MachineParams::default());
        let eng = Engine::new("test", &g, &m, CommModel::Analytic);
        let _ = eng.ready_time(b, ProcId(0));
    }
}
