//! MH — the El-Rewini & Lewis *Mapping Heuristic* (JPDC 1990), the
//! scheduler Banger inherited from PPSE.
//!
//! MH is a list scheduler that prices communication with the **actual
//! interconnection network**: messages traverse the routing table's
//! shortest paths hop by hop, each hop occupying a link with
//! store-and-forward timing, and later messages queue behind earlier ones
//! on busy links. The ready task with the greatest communication-inclusive
//! bottom level (b-level) is committed to the processor where it can
//! *finish* earliest under that link-accurate model.
//!
//! Compared with the analytic heuristics in [`crate::list`], MH sees both
//! hop distance and link contention, which is exactly the paper's argument
//! for machine-aware scheduling of machine-independent designs.

use crate::engine::{CommModel, Engine};
use crate::ready::ReadyQueue;
use crate::schedule::Schedule;
use banger_machine::Machine;
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::TaskGraph;

/// Runs the Mapping Heuristic. See module docs.
pub fn mh(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    mh_with(g, m, &a)
}

/// [`mh`] with a precomputed [`GraphAnalysis`], so sweeps over many machines
/// pay for the (machine-independent) level computation once.
pub fn mh_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("MH", g, m, CommModel::Contention);
    // Highest b-level first; ties toward lower task id. Note MH's per-proc
    // finish loop below probes each (task, proc) pair exactly once per
    // selected task, so only the *selection* needed the heap — there is no
    // repeated pair rescan to cache away (unlike ETF/DLS).
    let mut queue = ReadyQueue::new(g, &a.b_level);

    while let Some(t) = queue.pop() {
        // Choose the processor with the earliest finish under link-accurate
        // arrival times; ties toward lower processor id.
        let mut best = m.proc_ids().next().unwrap();
        let mut best_finish = f64::INFINITY;
        for p in m.proc_ids() {
            let r = eng.ready_time(t, p);
            let dur = m.exec_time(g.task(t).weight, p);
            let start = eng.slot(p, r, dur);
            let finish = start + dur;
            if finish + crate::schedule::TIME_EPS < best_finish {
                best_finish = finish;
                best = p;
            }
        }
        eng.commit(t, best);
        queue.complete(g, t);
    }
    eng.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{MachineParams, Topology};
    use banger_taskgraph::generators;

    #[test]
    fn valid_on_hypercubes() {
        let g = generators::gauss_elimination(5, 3.0, 2.0);
        for dim in 0..=3 {
            let m = Machine::new(
                Topology::hypercube(dim),
                MachineParams {
                    msg_startup: 0.5,
                    ..MachineParams::default()
                },
            );
            let s = mh(&g, &m);
            s.validate(&g, &m)
                .unwrap_or_else(|e| panic!("dim {dim}: {e}"));
        }
    }

    #[test]
    fn hop_awareness_prefers_near_processors() {
        // Source on P0 fans out to two tasks. On a linear array of 4, MH
        // should put work on processors near P0, not at the far end.
        let g = generators::fork_join(2, 1.0, 20.0, 1.0, 8.0);
        let m = Machine::new(Topology::linear(4), MachineParams::default());
        let s = mh(&g, &m);
        s.validate(&g, &m).unwrap();
        for p in s.placements() {
            assert!(
                p.proc.index() <= 1,
                "task {} placed on distant {}",
                p.task,
                p.proc
            );
        }
    }

    #[test]
    fn mh_equal_or_better_than_serial() {
        let g = generators::gauss_elimination(6, 4.0, 1.0);
        let m = Machine::new(Topology::hypercube(3), MachineParams::default());
        let s = mh(&g, &m);
        s.validate(&g, &m).unwrap();
        let serial = crate::list::serial(&g, &m);
        assert!(s.makespan() <= serial.makespan() + crate::schedule::TIME_EPS);
    }

    #[test]
    fn contention_on_star_hub_is_modelled() {
        // Many independent producer->consumer pairs crossing the star hub:
        // MH's link model must queue them rather than assume parallelism.
        let mut g = TaskGraph::new("cross");
        for i in 0..4 {
            let a = g.add_task(format!("src{i}"), 1.0);
            let b = g.add_task(format!("dst{i}"), 1.0);
            g.add_edge(a, b, 20.0, format!("m{i}")).unwrap();
        }
        let m = Machine::new(Topology::star(5), MachineParams::default());
        let s = mh(&g, &m);
        s.validate(&g, &m).unwrap();
        // The best answer is to keep each pair local, which costs 2 time
        // units per processor pair; if MH shipped the messages the star hub
        // would serialise 40-unit transfers.
        assert!(s.makespan() <= 4.0, "makespan {}", s.makespan());
    }

    #[test]
    fn deterministic() {
        let g = generators::lattice(4, 4, 3.0, 2.0);
        let m = Machine::new(Topology::mesh(2, 2), MachineParams::default());
        assert_eq!(mh(&g, &m), mh(&g, &m));
    }

    #[test]
    fn lu_design_on_growing_hypercubes_improves() {
        // The paper's Figure 3 story: mapping the LU design onto 2-, 4-,
        // 8-processor hypercubes yields decreasing makespans.
        let f = generators::lu_hierarchical(4).flatten().unwrap();
        let params = MachineParams {
            msg_startup: 0.2,
            transmission_rate: 8.0,
            ..MachineParams::default()
        };
        let mut prev = f64::INFINITY;
        for dim in 0..=3 {
            let m = Machine::new(Topology::hypercube(dim), params);
            let s = mh(&f.graph, &m);
            s.validate(&f.graph, &m).unwrap();
            assert!(
                s.makespan() <= prev + crate::schedule::TIME_EPS,
                "dim {dim}: {} > {prev}",
                s.makespan()
            );
            prev = s.makespan();
        }
    }
}
