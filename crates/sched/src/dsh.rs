//! DSH — Kruatrachue's *Duplication Scheduling Heuristic* (OSU PhD thesis,
//! 1987; summarised in Kruatrachue & Lewis, IEEE Software 1988).
//!
//! DSH extends list scheduling with **task duplication**: when a task's
//! start on its chosen processor is delayed waiting for a message, the
//! heuristic tries to copy the offending predecessor into the processor's
//! idle time instead, eliminating the message. Duplication attacks exactly
//! the startup/transmission costs the paper's machine model exposes, and
//! is the reason Banger's schedules stay efficient on high-latency
//! machines.
//!
//! The implementation places tasks in decreasing static-level order. For
//! each task it picks the earliest-finish processor, then repeatedly:
//!
//! 1. finds the predecessor message that currently determines the ready
//!    time,
//! 2. tentatively inserts a copy of that predecessor into idle time on the
//!    same processor (its own inputs priced with the analytic model over
//!    existing copies),
//! 3. keeps the copy only if the task's ready time strictly improves.
//!
//! Because a committed copy becomes visible to [`Engine::edge_arrival`],
//! duplication cascades naturally: after copying `p`, the next binding
//! message may be `p`'s own input, which the loop then attacks in turn.

use crate::engine::{CommModel, Engine};
use crate::ready::ReadyQueue;
use crate::schedule::Schedule;
use banger_machine::{Machine, ProcId};
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::{TaskGraph, TaskId};

/// Maximum duplication attempts per task placement, a safety valve against
/// adversarial graphs (each attempt commits at most one extra copy).
const MAX_DUPES_PER_TASK: usize = 64;

/// Runs the Duplication Scheduling Heuristic. See module docs.
pub fn dsh(g: &TaskGraph, m: &Machine) -> Schedule {
    let a = GraphAnalysis::analyze(g);
    dsh_with(g, m, &a)
}

/// [`dsh`] with a precomputed [`GraphAnalysis`], so sweeps over many
/// machines pay for the (machine-independent) level computation once.
pub fn dsh_with(g: &TaskGraph, m: &Machine, a: &GraphAnalysis) -> Schedule {
    let mut eng = Engine::new("DSH", g, m, CommModel::Analytic);
    let mut queue = ReadyQueue::new(g, &a.static_level);

    while let Some(t) = queue.pop() {
        // Earliest-finish processor, where each candidate's finish time is
        // evaluated *with duplication applied* (Kruatrachue's DSH computes
        // the duplication-improved start during processor selection, not
        // after it — otherwise the no-communication processor always wins
        // and nothing is ever copied).
        let mut best = ProcId(0);
        let mut best_finish = f64::INFINITY;
        for p in m.proc_ids() {
            let start = estimate_start_with_duplication(&eng, t, p);
            let finish = start + m.exec_time(g.task(t).weight, p);
            if finish + crate::schedule::TIME_EPS < best_finish {
                best_finish = finish;
                best = p;
            }
        }

        duplicate_binding_preds(&mut eng, t, best);
        eng.commit(t, best);
        queue.complete(g, t);
    }
    eng.finish()
}

/// Estimates `t`'s start on `p` assuming the same one-level duplication
/// that [`duplicate_binding_preds`] would commit: for every input whose
/// message arrival exceeds the predecessor's locally-recomputed finish, use
/// the duplicated finish instead. A cheap upper-fidelity mirror of the
/// commit path — it does not mutate engine state.
pub(crate) fn estimate_start_with_duplication(eng: &Engine<'_>, t: TaskId, p: ProcId) -> f64 {
    let mut ready = 0.0f64;
    // Track the local occupancy consumed by hypothetical copies so two
    // copies do not claim the same idle slot.
    let mut local_extra = 0.0f64;
    for &e in eng.g.in_edges(t) {
        let edge = eng.g.edge(e);
        let msg_arrival = eng.edge_arrival(edge.src, edge.volume, p);
        let already_local = eng.copies[edge.src.index()].iter().any(|c| c.proc == p);
        let arrival = if already_local {
            msg_arrival
        } else {
            // Hypothetical copy of the predecessor on p.
            let pred_ready = eng.ready_time(edge.src, p);
            let dur = eng.m.exec_time(eng.g.task(edge.src).weight, p);
            let slot = eng.slot(p, pred_ready.max(local_extra), dur);
            let dup_finish = slot + dur;
            if dup_finish < msg_arrival {
                local_extra = dup_finish;
                dup_finish
            } else {
                msg_arrival
            }
        };
        ready = ready.max(arrival);
    }
    let dur = eng.m.exec_time(eng.g.task(t).weight, p);
    eng.slot(p, ready.max(local_extra), dur)
}

/// Repeatedly copies the predecessor whose message currently bounds `t`'s
/// ready time onto `p`, while each copy strictly reduces that ready time.
pub(crate) fn duplicate_binding_preds(eng: &mut Engine<'_>, t: TaskId, p: ProcId) {
    for _ in 0..MAX_DUPES_PER_TASK {
        let ready = eng.ready_time(t, p);
        if ready <= crate::schedule::TIME_EPS {
            return; // already starts at time zero
        }
        // Find the binding predecessor: the input with the latest arrival
        // that is NOT already satisfied by a local copy.
        let mut binding: Option<(TaskId, f64)> = None;
        for &e in eng.g.in_edges(t) {
            let edge = eng.g.edge(e);
            let arrival = eng.edge_arrival(edge.src, edge.volume, p);
            if (arrival - ready).abs() <= crate::schedule::TIME_EPS {
                let already_local = eng.copies[edge.src.index()].iter().any(|c| c.proc == p);
                if !already_local {
                    binding = Some((edge.src, arrival));
                }
            }
        }
        let Some((pred, old_arrival)) = binding else {
            return; // bound by local work or by an unimprovable input
        };

        // Would a local copy of `pred` help? Its own inputs arrive from
        // existing copies; it needs an idle slot ending before old_arrival.
        let pred_ready = eng.ready_time(pred, p);
        let dur = eng.m.exec_time(eng.g.task(pred).weight, p);
        let start = eng.slot(p, pred_ready, dur);
        let local_finish = start + dur;
        if local_finish + crate::schedule::TIME_EPS < old_arrival {
            eng.commit(pred, p); // duplicate copy (not primary)
        } else {
            return; // copying does not pay; stop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::etf;
    use banger_machine::{MachineParams, Topology};
    use banger_taskgraph::generators;

    fn full(n: usize, msg_startup: f64) -> Machine {
        Machine::new(
            Topology::fully_connected(n),
            MachineParams {
                msg_startup,
                ..MachineParams::default()
            },
        )
    }

    #[test]
    fn valid_and_duplicates_on_heavy_fork() {
        // A cheap fork task feeding expensive children over heavy messages:
        // the textbook duplication win.
        let g = generators::fork_join(4, 2.0, 10.0, 2.0, 15.0);
        let m = full(4, 1.0);
        let s = dsh(&g, &m);
        s.validate(&g, &m).unwrap();
        let fork = g.find_task("fork").unwrap();
        assert!(
            s.placements_of(fork).len() > 1,
            "DSH should duplicate the fork task"
        );
    }

    #[test]
    fn dsh_beats_etf_on_communication_heavy_fork() {
        let g = generators::fork_join(4, 2.0, 10.0, 2.0, 15.0);
        let m = full(4, 1.0);
        let d = dsh(&g, &m);
        let e = etf(&g, &m);
        d.validate(&g, &m).unwrap();
        e.validate(&g, &m).unwrap();
        assert!(
            d.makespan() < e.makespan(),
            "DSH {} should beat ETF {}",
            d.makespan(),
            e.makespan()
        );
    }

    #[test]
    fn no_duplication_when_comm_free() {
        let g = generators::fork_join(4, 2.0, 10.0, 2.0, 0.0);
        let m = full(4, 0.0);
        let s = dsh(&g, &m);
        s.validate(&g, &m).unwrap();
        // With free communication there is nothing to save.
        for t in g.task_ids() {
            assert_eq!(
                s.placements_of(t).len(),
                1,
                "task {t} duplicated needlessly"
            );
        }
    }

    #[test]
    fn cascading_duplication_on_outtree() {
        // Each level of a broadcast tree repeats the win; DSH should
        // produce a valid schedule with copies at multiple levels.
        let g = generators::outtree(3, 2, 3.0, 12.0);
        let m = full(8, 1.0);
        let s = dsh(&g, &m);
        s.validate(&g, &m).unwrap();
        let copies: usize = g.task_ids().map(|t| s.placements_of(t).len()).sum();
        assert!(copies > g.task_count(), "expected some duplication");
        let e = etf(&g, &m);
        assert!(s.makespan() <= e.makespan() + crate::schedule::TIME_EPS);
    }

    #[test]
    fn valid_on_gauss_and_random_topologies() {
        let g = generators::gauss_elimination(5, 2.0, 4.0);
        for topo in [
            Topology::hypercube(2),
            Topology::mesh(2, 2),
            Topology::star(4),
            Topology::ring(4),
        ] {
            let m = Machine::new(
                topo,
                MachineParams {
                    msg_startup: 0.5,
                    ..MachineParams::default()
                },
            );
            let s = dsh(&g, &m);
            s.validate(&g, &m)
                .unwrap_or_else(|e| panic!("{}: {e}", m.topology().name()));
        }
    }

    #[test]
    fn deterministic() {
        let g = generators::fork_join(6, 2.0, 8.0, 2.0, 10.0);
        let m = full(4, 1.0);
        assert_eq!(dsh(&g, &m), dsh(&g, &m));
    }

    #[test]
    fn single_processor_no_duplication() {
        let g = generators::fork_join(4, 2.0, 10.0, 2.0, 15.0);
        let m = Machine::new(Topology::single(), MachineParams::default());
        let s = dsh(&g, &m);
        s.validate(&g, &m).unwrap();
        for t in g.task_ids() {
            assert_eq!(s.placements_of(t).len(), 1);
        }
    }
}
