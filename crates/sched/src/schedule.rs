//! Schedules: the output of every heuristic, the input of the Gantt-chart
//! renderer and of the discrete-event simulator.
//!
//! A [`Schedule`] is a set of [`Placement`]s — `(task, processor, start,
//! finish)` tuples. Duplication heuristics may place the *same* task on
//! several processors, so a task can own more than one placement; exactly
//! one per task is its **primary** copy (the one whose result the design's
//! consumers are wired to by default).
//!
//! [`Schedule::validate`] checks the three schedule invariants against a
//! graph and machine:
//!
//! 1. every task has at least one placement, and durations equal the
//!    machine's predicted execution time;
//! 2. placements on one processor never overlap;
//! 3. every placement starts no earlier than, for each predecessor arc,
//!    the finish of *some* copy of the predecessor plus the machine's
//!    communication time from that copy's processor.

use banger_machine::{Machine, ProcId};
use banger_taskgraph::{TaskGraph, TaskId};
use std::fmt;

/// One task copy on one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// The task being executed.
    pub task: TaskId,
    /// The processor it runs on.
    pub proc: ProcId,
    /// Start time.
    pub start: f64,
    /// Finish time (start + machine execution time).
    pub finish: f64,
    /// True for the designated primary copy of the task.
    pub primary: bool,
}

/// Why a schedule failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A task has no placement at all.
    Unplaced(TaskId),
    /// A task has no primary placement (or more than one).
    BadPrimary(TaskId),
    /// Two placements overlap on the same processor.
    Overlap {
        /// The processor where the overlap occurs.
        proc: ProcId,
        /// First of the two overlapping tasks.
        a: TaskId,
        /// Second of the two overlapping tasks.
        b: TaskId,
    },
    /// A placement's duration disagrees with the machine's execution time.
    WrongDuration {
        /// The offending task.
        task: TaskId,
        /// The duration implied by the placement.
        got: f64,
        /// The duration the machine model predicts.
        want: f64,
    },
    /// A placement starts before its inputs can arrive.
    PrecedenceViolated {
        /// The consuming task.
        task: TaskId,
        /// The predecessor whose data arrives too late.
        pred: TaskId,
        /// The placement's start time.
        start: f64,
        /// The earliest possible arrival over all copies of `pred`.
        earliest_arrival: f64,
    },
    /// A placement references a processor outside the machine.
    UnknownProcessor(ProcId),
    /// A placement has a negative start or non-finite bounds.
    BadTimes(TaskId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unplaced(t) => write!(f, "task {t} was never placed"),
            ScheduleError::BadPrimary(t) => {
                write!(f, "task {t} must have exactly one primary placement")
            }
            ScheduleError::Overlap { proc, a, b } => {
                write!(f, "tasks {a} and {b} overlap on processor {proc}")
            }
            ScheduleError::WrongDuration { task, got, want } => write!(
                f,
                "task {task} has duration {got}, machine model predicts {want}"
            ),
            ScheduleError::PrecedenceViolated {
                task,
                pred,
                start,
                earliest_arrival,
            } => write!(
                f,
                "task {task} starts at {start} but data from {pred} cannot arrive before {earliest_arrival}"
            ),
            ScheduleError::UnknownProcessor(p) => write!(f, "unknown processor {p}"),
            ScheduleError::BadTimes(t) => write!(f, "task {t} has invalid start/finish times"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Tolerance used when comparing times during validation.
pub const TIME_EPS: f64 = 1e-6;

/// Per-run engine work counters, produced by one scheduling run and
/// attached to its [`Schedule`]. These replace the old process-global
/// atomics: concurrent `sweep::parallel_map` runs each get their own
/// counts instead of interleaving into one shared total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Number of [`crate::engine::Engine::edge_arrival`] probes issued.
    pub arrival_probes: u64,
    /// Number of timeline slot searches issued via
    /// [`crate::engine::Engine::slot`].
    pub slot_searches: u64,
}

/// A complete schedule produced by one heuristic.
#[derive(Debug, Clone)]
pub struct Schedule {
    heuristic: String,
    n_tasks: usize,
    placements: Vec<Placement>,
    stats: SchedStats,
}

/// Equality deliberately ignores [`Schedule::stats`]: the differential
/// suites compare optimized heuristics against their retained naive
/// references, whose *schedules* must be bit-identical while their probe
/// counts legitimately differ (fewer probes is the whole point).
impl PartialEq for Schedule {
    fn eq(&self, other: &Self) -> bool {
        self.heuristic == other.heuristic
            && self.n_tasks == other.n_tasks
            && self.placements == other.placements
    }
}

impl Schedule {
    /// Creates a schedule for a graph of `n_tasks` tasks.
    pub fn new(heuristic: impl Into<String>, n_tasks: usize) -> Self {
        Schedule {
            heuristic: heuristic.into(),
            n_tasks,
            placements: Vec::with_capacity(n_tasks),
            stats: SchedStats::default(),
        }
    }

    /// Name of the heuristic that produced this schedule.
    pub fn heuristic(&self) -> &str {
        &self.heuristic
    }

    /// Engine work counters of the run that produced this schedule
    /// (zero for schedules built by hand or replayed from a simulator).
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Attaches the producing run's counters ([`crate::engine::Engine::finish`]).
    pub(crate) fn set_stats(&mut self, stats: SchedStats) {
        self.stats = stats;
    }

    /// Number of tasks the schedule covers.
    pub fn task_count(&self) -> usize {
        self.n_tasks
    }

    /// Adds a placement.
    pub fn place(&mut self, task: TaskId, proc: ProcId, start: f64, finish: f64, primary: bool) {
        self.placements.push(Placement {
            task,
            proc,
            start,
            finish,
            primary,
        });
    }

    /// All placements, in insertion order.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// All placements of one task (primary first if present).
    pub fn placements_of(&self, task: TaskId) -> Vec<&Placement> {
        let mut v: Vec<&Placement> = self.placements.iter().filter(|p| p.task == task).collect();
        v.sort_by_key(|p| !p.primary);
        v
    }

    /// The primary placement of a task, if any.
    pub fn primary(&self, task: TaskId) -> Option<&Placement> {
        self.placements.iter().find(|p| p.task == task && p.primary)
    }

    /// Placements on a given processor, sorted by start time.
    pub fn on_processor(&self, proc: ProcId) -> Vec<&Placement> {
        let mut v: Vec<&Placement> = self.placements.iter().filter(|p| p.proc == proc).collect();
        v.sort_by(|a, b| a.start.total_cmp(&b.start));
        v
    }

    /// The schedule length: the latest finish over all placements.
    pub fn makespan(&self) -> f64 {
        self.placements
            .iter()
            .map(|p| p.finish)
            .fold(0.0f64, f64::max)
    }

    /// Number of distinct processors actually used.
    pub fn processors_used(&self) -> usize {
        let mut procs: Vec<ProcId> = self.placements.iter().map(|p| p.proc).collect();
        procs.sort_unstable();
        procs.dedup();
        procs.len()
    }

    /// Sum of busy time per processor, for load-balance reporting.
    pub fn busy_time(&self, proc: ProcId) -> f64 {
        self.placements
            .iter()
            .filter(|p| p.proc == proc)
            .map(|p| p.finish - p.start)
            .sum()
    }

    /// The time the whole design would take on the single fastest
    /// processor of `m` — the baseline for speedup.
    pub fn sequential_time(g: &TaskGraph, m: &Machine) -> f64 {
        let best = m
            .proc_ids()
            .max_by(|a, b| m.relative_speed(*a).total_cmp(&m.relative_speed(*b)))
            .expect("machine has at least one processor");
        g.tasks().map(|(_, t)| m.exec_time(t.weight, best)).sum()
    }

    /// Predicted speedup over the sequential baseline.
    pub fn speedup(&self, g: &TaskGraph, m: &Machine) -> f64 {
        let seq = Schedule::sequential_time(g, m);
        let ms = self.makespan();
        if ms == 0.0 {
            0.0
        } else {
            seq / ms
        }
    }

    /// Efficiency: speedup divided by the processor count of `m`.
    pub fn efficiency(&self, g: &TaskGraph, m: &Machine) -> f64 {
        self.speedup(g, m) / m.processors() as f64
    }

    /// Validates the schedule against the graph and machine (see module
    /// docs for the invariants). `check_duration` may be disabled for
    /// schedules replayed from a simulator, whose durations include
    /// queueing.
    pub fn validate(&self, g: &TaskGraph, m: &Machine) -> Result<(), ScheduleError> {
        self.validate_opts(g, m, true)
    }

    /// [`Schedule::validate`] with control over the duration check.
    ///
    /// Runs in `O(P + |placements| log |placements| + Σ_edges copies(src))`
    /// — one shared per-task index is built up front instead of rescanning
    /// the placement list per task ([`Schedule::placements_of`] is `O(n)`
    /// per call, which made the old validator quadratic and unusable on
    /// the 100k-task graphs the scale generators produce).
    pub fn validate_opts(
        &self,
        g: &TaskGraph,
        m: &Machine,
        check_duration: bool,
    ) -> Result<(), ScheduleError> {
        // Basic sanity per placement, plus the per-task index used by the
        // coverage and precedence passes below.
        let mut by_task: Vec<Vec<usize>> = vec![Vec::new(); g.task_count()];
        for (i, p) in self.placements.iter().enumerate() {
            if p.proc.index() >= m.processors() {
                return Err(ScheduleError::UnknownProcessor(p.proc));
            }
            if !(p.start.is_finite() && p.finish.is_finite())
                || p.start < -TIME_EPS
                || p.finish + TIME_EPS < p.start
            {
                return Err(ScheduleError::BadTimes(p.task));
            }
            if check_duration {
                let want = m.exec_time(g.task(p.task).weight, p.proc);
                let got = p.finish - p.start;
                if (got - want).abs() > TIME_EPS {
                    return Err(ScheduleError::WrongDuration {
                        task: p.task,
                        got,
                        want,
                    });
                }
            }
            if p.task.index() < by_task.len() {
                by_task[p.task.index()].push(i);
            }
        }

        // Coverage and primary uniqueness.
        for t in g.task_ids() {
            let copies = &by_task[t.index()];
            if copies.is_empty() {
                return Err(ScheduleError::Unplaced(t));
            }
            let primaries = copies
                .iter()
                .filter(|&&i| self.placements[i].primary)
                .count();
            if primaries != 1 {
                return Err(ScheduleError::BadPrimary(t));
            }
        }

        // Processor exclusivity: one sort of all placements by (proc,
        // start) replaces the per-processor rescans.
        let mut order: Vec<usize> = (0..self.placements.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            let (pa, pb) = (&self.placements[a], &self.placements[b]);
            pa.proc.cmp(&pb.proc).then(pa.start.total_cmp(&pb.start))
        });
        for w in order.windows(2) {
            let (a, b) = (&self.placements[w[0]], &self.placements[w[1]]);
            if a.proc == b.proc && a.finish > b.start + TIME_EPS {
                return Err(ScheduleError::Overlap {
                    proc: a.proc,
                    a: a.task,
                    b: b.task,
                });
            }
        }

        // Precedence with communication. Every copy of a task must be able
        // to receive every input from *some* copy of the producer.
        for p in &self.placements {
            for &e in g.in_edges(p.task) {
                let edge = g.edge(e);
                let earliest = by_task[edge.src.index()]
                    .iter()
                    .map(|&i| {
                        let src = &self.placements[i];
                        src.finish + m.comm_time(src.proc, p.proc, edge.volume)
                    })
                    .fold(f64::INFINITY, f64::min);
                if p.start + TIME_EPS < earliest {
                    return Err(ScheduleError::PrecedenceViolated {
                        task: p.task,
                        pred: edge.src,
                        start: p.start,
                        earliest_arrival: earliest,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Summary row for heuristic-comparison tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSummary {
    /// Heuristic name.
    pub heuristic: String,
    /// Schedule length.
    pub makespan: f64,
    /// Speedup over the single-fastest-processor baseline.
    pub speedup: f64,
    /// Speedup / processors.
    pub efficiency: f64,
    /// Distinct processors used.
    pub processors_used: usize,
}

impl Schedule {
    /// Builds a [`ScheduleSummary`] for reporting.
    pub fn summarize(&self, g: &TaskGraph, m: &Machine) -> ScheduleSummary {
        ScheduleSummary {
            heuristic: self.heuristic.clone(),
            makespan: self.makespan(),
            speedup: self.speedup(g, m),
            efficiency: self.efficiency(g, m),
            processors_used: self.processors_used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{MachineParams, Topology};

    fn pair_graph() -> TaskGraph {
        let mut g = TaskGraph::new("pair");
        let a = g.add_task("a", 4.0);
        let b = g.add_task("b", 6.0);
        g.add_edge(a, b, 10.0, "x").unwrap();
        g
    }

    fn machine2() -> Machine {
        Machine::new(Topology::fully_connected(2), MachineParams::default())
    }

    #[test]
    fn valid_same_proc_schedule() {
        let g = pair_graph();
        let m = machine2();
        let mut s = Schedule::new("manual", 2);
        s.place(TaskId(0), ProcId(0), 0.0, 4.0, true);
        s.place(TaskId(1), ProcId(0), 4.0, 10.0, true);
        s.validate(&g, &m).unwrap();
        assert_eq!(s.makespan(), 10.0);
        assert_eq!(s.processors_used(), 1);
    }

    #[test]
    fn valid_cross_proc_schedule_pays_comm() {
        let g = pair_graph();
        let m = machine2();
        let mut s = Schedule::new("manual", 2);
        s.place(TaskId(0), ProcId(0), 0.0, 4.0, true);
        // comm = 10 units at rate 1 => b can start at 14 on the other proc.
        s.place(TaskId(1), ProcId(1), 14.0, 20.0, true);
        s.validate(&g, &m).unwrap();

        let mut bad = Schedule::new("manual", 2);
        bad.place(TaskId(0), ProcId(0), 0.0, 4.0, true);
        bad.place(TaskId(1), ProcId(1), 5.0, 11.0, true);
        assert!(matches!(
            bad.validate(&g, &m),
            Err(ScheduleError::PrecedenceViolated { .. })
        ));
    }

    #[test]
    fn overlap_detected() {
        let g = {
            let mut g = TaskGraph::new("two");
            g.add_task("a", 4.0);
            g.add_task("b", 4.0);
            g
        };
        let m = machine2();
        let mut s = Schedule::new("manual", 2);
        s.place(TaskId(0), ProcId(0), 0.0, 4.0, true);
        s.place(TaskId(1), ProcId(0), 2.0, 6.0, true);
        assert!(matches!(
            s.validate(&g, &m),
            Err(ScheduleError::Overlap { .. })
        ));
    }

    #[test]
    fn unplaced_detected() {
        let g = pair_graph();
        let m = machine2();
        let mut s = Schedule::new("manual", 2);
        s.place(TaskId(0), ProcId(0), 0.0, 4.0, true);
        assert_eq!(s.validate(&g, &m), Err(ScheduleError::Unplaced(TaskId(1))));
    }

    #[test]
    fn wrong_duration_detected() {
        let g = pair_graph();
        let m = machine2();
        let mut s = Schedule::new("manual", 2);
        s.place(TaskId(0), ProcId(0), 0.0, 5.0, true); // should be 4
        s.place(TaskId(1), ProcId(0), 5.0, 11.0, true);
        assert!(matches!(
            s.validate(&g, &m),
            Err(ScheduleError::WrongDuration { .. })
        ));
        // ... but passes when duration checking is off and precedence holds.
        s.validate_opts(&g, &m, false).unwrap();
    }

    #[test]
    fn duplication_satisfies_consumers() {
        // a feeds b; a is duplicated onto b's processor so b starts at 4
        // with no message.
        let g = pair_graph();
        let m = machine2();
        let mut s = Schedule::new("dup", 2);
        s.place(TaskId(0), ProcId(0), 0.0, 4.0, true);
        s.place(TaskId(0), ProcId(1), 0.0, 4.0, false); // duplicate
        s.place(TaskId(1), ProcId(1), 4.0, 10.0, true);
        s.validate(&g, &m).unwrap();
        assert_eq!(s.placements_of(TaskId(0)).len(), 2);
        assert!(s.primary(TaskId(0)).unwrap().proc == ProcId(0));
    }

    #[test]
    fn double_primary_rejected() {
        let g = pair_graph();
        let m = machine2();
        let mut s = Schedule::new("dup", 2);
        s.place(TaskId(0), ProcId(0), 0.0, 4.0, true);
        s.place(TaskId(0), ProcId(1), 0.0, 4.0, true);
        s.place(TaskId(1), ProcId(1), 14.0, 20.0, true);
        assert_eq!(
            s.validate(&g, &m),
            Err(ScheduleError::BadPrimary(TaskId(0)))
        );
    }

    #[test]
    fn bad_times_detected() {
        let g = pair_graph();
        let m = machine2();
        let mut s = Schedule::new("m", 2);
        s.place(TaskId(0), ProcId(0), -1.0, 3.0, true);
        s.place(TaskId(1), ProcId(0), 14.0, 20.0, true);
        assert_eq!(s.validate(&g, &m), Err(ScheduleError::BadTimes(TaskId(0))));
    }

    #[test]
    fn unknown_processor_detected() {
        let g = pair_graph();
        let m = machine2();
        let mut s = Schedule::new("m", 2);
        s.place(TaskId(0), ProcId(7), 0.0, 4.0, true);
        s.place(TaskId(1), ProcId(0), 14.0, 20.0, true);
        assert_eq!(
            s.validate(&g, &m),
            Err(ScheduleError::UnknownProcessor(ProcId(7)))
        );
    }

    #[test]
    fn speedup_and_efficiency() {
        let mut g = TaskGraph::new("ind");
        g.add_task("a", 10.0);
        g.add_task("b", 10.0);
        let m = machine2();
        let mut s = Schedule::new("m", 2);
        s.place(TaskId(0), ProcId(0), 0.0, 10.0, true);
        s.place(TaskId(1), ProcId(1), 0.0, 10.0, true);
        s.validate(&g, &m).unwrap();
        assert_eq!(Schedule::sequential_time(&g, &m), 20.0);
        assert_eq!(s.speedup(&g, &m), 2.0);
        assert_eq!(s.efficiency(&g, &m), 1.0);
        let sum = s.summarize(&g, &m);
        assert_eq!(sum.processors_used, 2);
        assert_eq!(sum.makespan, 10.0);
    }

    #[test]
    fn busy_time_per_processor() {
        let mut s = Schedule::new("m", 2);
        s.place(TaskId(0), ProcId(0), 0.0, 10.0, true);
        s.place(TaskId(1), ProcId(0), 12.0, 15.0, true);
        assert_eq!(s.busy_time(ProcId(0)), 13.0);
        assert_eq!(s.busy_time(ProcId(1)), 0.0);
    }
}
