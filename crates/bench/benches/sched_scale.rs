//! `sched_scale` — Criterion group for the scheduler scale rework: the
//! optimised heuristics on 1k/10k-task graphs from the scale generators,
//! with the retained naive references alongside at the sizes where their
//! quadratic selection is still affordable, so a regression in either
//! direction (slowdown of the rework, accidental "optimisation" of the
//! reference) shows up in the trend.

use banger_sched::reference;
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn scale_graphs() -> Vec<(&'static str, banger_taskgraph::TaskGraph)> {
    vec![
        (
            "layered-1k",
            generators::layered_random(11, 40, 25, 3, (1.0, 20.0), (0.5, 10.0)),
        ),
        (
            "layered-10k",
            generators::layered_random(12, 100, 100, 3, (1.0, 20.0), (0.5, 10.0)),
        ),
        ("tiled-lu-18", generators::tiled_lu(18, 2.0, 1.0)),
        ("stencil-50x40", generators::stencil(50, 40, 2.0, 1.0)),
    ]
}

fn bench_optimised(c: &mut Criterion) {
    let m = banger_bench::bench_machine();
    let mut group = c.benchmark_group("sched_scale");
    for (name, g) in scale_graphs() {
        let a = GraphAnalysis::analyze(&g);
        for h in ["HLFET", "MCP", "MH"] {
            group.bench_with_input(BenchmarkId::new(h, name), &g, |b, g| {
                b.iter(|| black_box(banger_sched::run_heuristic_with(h, g, &m, &a).unwrap()))
            });
        }
    }
    // The pair-scan heuristics only at the 1k sizes (they are O(n · P)
    // per step by definition; the cache removes the in-degree factor).
    for (name, g) in scale_graphs().into_iter().take(1) {
        let a = GraphAnalysis::analyze(&g);
        for h in ["ETF", "DLS"] {
            group.bench_with_input(BenchmarkId::new(h, name), &g, |b, g| {
                b.iter(|| black_box(banger_sched::run_heuristic_with(h, g, &m, &a).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_reference(c: &mut Criterion) {
    let m = banger_bench::bench_machine();
    let mut group = c.benchmark_group("sched_scale_reference");
    // 1k only: the references exist to be slow.
    let (name, g) = (
        "layered-1k",
        generators::layered_random(11, 40, 25, 3, (1.0, 20.0), (0.5, 10.0)),
    );
    let a = GraphAnalysis::analyze(&g);
    for h in ["HLFET", "MCP", "ETF", "DLS", "MH"] {
        group.bench_with_input(BenchmarkId::new(h, name), &g, |b, g| {
            b.iter(|| black_box(reference::run_reference_with(h, g, &m, &a).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(sched_scale_benches, bench_optimised, bench_reference);
criterion_main!(sched_scale_benches);
