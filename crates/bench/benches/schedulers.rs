//! R1 benches: every heuristic on the shared workload/machine suite
//! (throughput of the scheduling layer itself), plus scaling with graph
//! size.

use banger_bench::{bench_machine, workload_suite};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_heuristics(c: &mut Criterion) {
    let m = bench_machine();
    let mut group = c.benchmark_group("sched_heuristics");
    for (wname, g) in workload_suite() {
        for h in ["HLFET", "MCP", "ETF", "DLS", "MH", "DSH"] {
            group.bench_with_input(BenchmarkId::new(h, wname), &g, |b, g| {
                b.iter(|| black_box(banger_sched::run_heuristic(h, g, &m).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let m = bench_machine();
    let mut group = c.benchmark_group("sched_scaling_gauss");
    for n in [6usize, 10, 14, 18] {
        let g = banger_taskgraph::generators::gauss_elimination(n, 2.0, 1.0);
        group.bench_with_input(BenchmarkId::new("MH", g.task_count()), &g, |b, g| {
            b.iter(|| black_box(banger_sched::mh::mh(g, &m)))
        });
        group.bench_with_input(BenchmarkId::new("ETF", g.task_count()), &g, |b, g| {
            b.iter(|| black_box(banger_sched::list::etf(g, &m)))
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let m = bench_machine();
    let g = banger_bench::bench_graph();
    let s = banger_sched::mh::mh(&g, &m);
    c.bench_function("sim/DES replay of MH schedule (gauss-10)", |b| {
        b.iter(|| {
            black_box(banger_sim::simulate(&g, &m, &s, banger_sim::SimOptions::default()).unwrap())
        })
    });
}

criterion_group!(
    scheduler_benches,
    bench_heuristics,
    bench_scaling,
    bench_simulation
);
criterion_main!(scheduler_benches);
