//! Criterion `serve` group: daemon request dispatch, cold (entry
//! evicted each iteration) vs warm (resident content-hashed caches).
//! Mirrors `bench_serve` (which emits BENCH_serve.json) at Criterion
//! statistics quality.

#[cfg(unix)]
use banger::serve::{ops, ProjectStore, Request};
#[cfg(unix)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};

#[cfg(unix)]
fn lu3_path() -> String {
    let p = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/projects/lu3.bang"
    );
    std::fs::canonicalize(p)
        .expect("lu3 example exists")
        .to_str()
        .expect("utf-8 path")
        .to_string()
}

#[cfg(unix)]
fn bench_dispatch(c: &mut Criterion) {
    let path = lu3_path();
    let store = ProjectStore::new();
    let mut sched = Request::for_path("schedule", path.as_str());
    sched.heuristic = "ETF".into();
    let check = Request::for_path("check", path.as_str());

    c.bench_function("serve/schedule/cold", |b| {
        b.iter(|| {
            store.evict(&path);
            black_box(ops::handle(&store, black_box(&sched)))
        })
    });
    ops::handle(&store, &sched);
    c.bench_function("serve/schedule/warm", |b| {
        b.iter(|| black_box(ops::handle(&store, black_box(&sched))))
    });
    ops::handle(&store, &check);
    c.bench_function("serve/check/warm", |b| {
        b.iter(|| black_box(ops::handle(&store, black_box(&check))))
    });
}

#[cfg(unix)]
criterion_group!(serve, bench_dispatch);
#[cfg(unix)]
criterion_main!(serve);

#[cfg(not(unix))]
fn main() {
    eprintln!("serve benches require a Unix platform");
}
