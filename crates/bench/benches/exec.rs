//! Criterion `exec` group: executor data movement — old-style deep-copy
//! gather baseline vs the zero-copy dense-routed executor, plus the
//! multi-worker greedy path on the LU design. Mirrors `bench_exec`
//! (which emits BENCH_exec.json) at Criterion statistics quality.

use banger_bench::dataflow::{self, Workload};
use banger_calc::InterpConfig;
use banger_exec::{execute, ExecMode, ExecOptions};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn one_worker() -> ExecOptions {
    ExecOptions {
        mode: ExecMode::Greedy { workers: 1 },
        ..ExecOptions::default()
    }
}

fn bench_pair(c: &mut Criterion, w: &Workload, label: &str) {
    let cfg = InterpConfig::default();
    let opts = one_worker();
    c.bench_function(format!("exec/{label}/oldstyle_deep_copy"), |b| {
        b.iter(|| black_box(dataflow::run_oldstyle(black_box(w), cfg)))
    });
    c.bench_function(format!("exec/{label}/zero_copy"), |b| {
        b.iter(|| black_box(execute(&w.design, &w.lib, &w.external, &opts).unwrap()))
    });
}

fn bench_fanout(c: &mut Criterion) {
    let w = dataflow::fanout(16_384, 16);
    bench_pair(c, &w, "fanout_16k_x16");
}

fn bench_pipeline(c: &mut Criterion) {
    let w = dataflow::pipeline(16_384, 16);
    bench_pair(c, &w, "pipeline_16k_x16");
}

fn bench_lu(c: &mut Criterion) {
    let w = dataflow::lu(7);
    bench_pair(c, &w, "lu_n7");
    // The parallel path on the same design, for scaling context.
    let opts = ExecOptions {
        mode: ExecMode::Greedy { workers: 4 },
        ..ExecOptions::default()
    };
    c.bench_function("exec/lu_n7/zero_copy_4workers", |b| {
        b.iter(|| black_box(execute(&w.design, &w.lib, &w.external, &opts).unwrap()))
    });
}

criterion_group!(benches, bench_fanout, bench_pipeline, bench_lu);
criterion_main!(benches);
