//! Ablation benches A1–A3: each measures the *quality* delta (makespan) as
//! Criterion throughput of producing both arms of the comparison, and the
//! `repro -- ablations` tables report the makespans themselves.

use banger_machine::{Machine, MachineParams, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ablation_comm(c: &mut Criterion) {
    let m = Machine::new(Topology::hypercube(3), banger::figures::figure3_params());
    let mut group = c.benchmark_group("ablation_comm");
    for scale in [1.0f64, 10.0, 100.0] {
        let mut g = banger_taskgraph::generators::fork_join(8, 2.0, 10.0, 2.0, 1.0);
        g.scale_volumes(scale);
        group.bench_with_input(BenchmarkId::new("naive", scale as u64), &g, |b, g| {
            b.iter(|| black_box(banger_sched::list::naive_no_comm(g, &m)))
        });
        group.bench_with_input(BenchmarkId::new("MH", scale as u64), &g, |b, g| {
            b.iter(|| black_box(banger_sched::mh::mh(g, &m)))
        });
    }
    group.finish();
}

fn bench_ablation_dup(c: &mut Criterion) {
    let g = banger_taskgraph::generators::outtree(3, 2, 3.0, 2.0);
    let mut group = c.benchmark_group("ablation_duplication");
    for startup in [0.0f64, 2.0, 8.0] {
        let m = Machine::new(
            Topology::fully_connected(8),
            MachineParams {
                msg_startup: startup,
                ..MachineParams::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("ETF", startup as u64), &g, |b, g| {
            b.iter(|| black_box(banger_sched::list::etf(g, &m)))
        });
        group.bench_with_input(BenchmarkId::new("DSH", startup as u64), &g, |b, g| {
            b.iter(|| black_box(banger_sched::dsh::dsh(g, &m)))
        });
    }
    group.finish();
}

fn bench_ablation_grain(c: &mut Criterion) {
    let g = banger_taskgraph::generators::lattice(6, 6, 1.0, 4.0);
    c.bench_function("ablation_grain/pack lattice-6x6", |b| {
        b.iter(|| black_box(banger_sched::grain::pack(&g).unwrap()))
    });
    let m = Machine::new(
        Topology::hypercube(2),
        MachineParams {
            process_startup: 2.0,
            ..MachineParams::default()
        },
    );
    let packed = banger_sched::grain::pack(&g).unwrap().packed;
    c.bench_function("ablation_grain/schedule raw", |b| {
        b.iter(|| black_box(banger_sched::list::etf(&g, &m)))
    });
    c.bench_function("ablation_grain/schedule packed", |b| {
        b.iter(|| black_box(banger_sched::list::etf(&packed, &m)))
    });
}

criterion_group!(
    ablation_benches,
    bench_ablation_comm,
    bench_ablation_dup,
    bench_ablation_grain
);
criterion_main!(ablation_benches);
