//! Criterion benches regenerating the paper's four figures (F1–F4): how
//! long Banger's "instant feedback" artifacts take to produce.

use banger::figures;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig1_graph(c: &mut Criterion) {
    c.bench_function("fig1/build+flatten LU 3x3 design", |b| {
        b.iter(|| {
            let h = banger_taskgraph::generators::lu_hierarchical(black_box(3));
            black_box(h.flatten().unwrap())
        })
    });
    c.bench_function("fig1/render report", |b| {
        b.iter(|| black_box(figures::figure1()))
    });
}

fn bench_fig2_topologies(c: &mut Criterion) {
    c.bench_function("fig2/build all topologies + routing", |b| {
        b.iter(|| black_box(figures::figure2()))
    });
}

fn bench_fig3_schedule(c: &mut Criterion) {
    let f = banger_taskgraph::generators::lu_hierarchical(3)
        .flatten()
        .unwrap();
    for dim in [1u32, 2, 3] {
        let m = banger_machine::Machine::new(
            banger_machine::Topology::hypercube(dim),
            figures::figure3_params(),
        );
        c.bench_function(format!("fig3/MH schedule LU on hypercube-{dim}"), |b| {
            b.iter(|| black_box(banger_sched::mh::mh(&f.graph, &m)))
        });
    }
    c.bench_function("fig3/full figure (gantts + speedup chart)", |b| {
        b.iter(|| black_box(figures::figure3()))
    });
}

fn bench_fig4_interpreter(c: &mut Criterion) {
    let prog = banger_calc::parser::parse_program(figures::SQUARE_ROOT_SRC).unwrap();
    let inputs: std::collections::BTreeMap<String, banger_calc::Value> =
        [("a".to_string(), banger_calc::Value::Num(2.0))]
            .into_iter()
            .collect();
    c.bench_function("fig4/parse SquareRoot", |b| {
        b.iter(|| black_box(banger_calc::parser::parse_program(figures::SQUARE_ROOT_SRC).unwrap()))
    });
    c.bench_function("fig4/trial-run Newton-Raphson sqrt(2)", |b| {
        b.iter(|| black_box(banger_calc::interp::run(&prog, &inputs).unwrap()))
    });
}

criterion_group!(
    figures_benches,
    bench_fig1_graph,
    bench_fig2_topologies,
    bench_fig3_schedule,
    bench_fig4_interpreter
);
criterion_main!(figures_benches);
