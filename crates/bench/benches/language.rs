//! Benches for the PITS language layer: parsing, interpretation over
//! arrays, document round-trips and the data-parallel transform — the
//! costs behind the environment's "instant feedback" promise.

use banger_calc::{compile, interp, parser, transform, vm, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

const PI_SRC: &str = "\
task Pi
  in n
  out p
  local i, x, h
begin
  h := 1 / n
  p := 0
  for i := 1 to n do
    x := (i - 0.5) * h
    p := p + 4 / (1 + x * x)
  end
  p := p * h
end";

fn bench_interpreter_scaling(c: &mut Criterion) {
    let prog = parser::parse_program(PI_SRC).unwrap();
    let mut group = c.benchmark_group("interp_pi_iterations");
    for n in [100u32, 1_000, 10_000] {
        let inputs: BTreeMap<String, Value> = [("n".to_string(), Value::Num(n as f64))]
            .into_iter()
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &inputs, |b, inputs| {
            b.iter(|| black_box(interp::run(&prog, inputs).unwrap()))
        });
    }
    group.finish();
}

fn bench_array_ops(c: &mut Criterion) {
    let prog = parser::parse_program(
        "task Scale in v out w local i, n begin \
         n := len(v) w := zeros(n) \
         for i := 1 to n do w[i] := v[i] * 2 + 1 end end",
    )
    .unwrap();
    let mut group = c.benchmark_group("interp_array_scale");
    for n in [64usize, 512, 4096] {
        let inputs: BTreeMap<String, Value> = [(
            "v".to_string(),
            Value::array((0..n).map(|i| i as f64).collect()),
        )]
        .into_iter()
        .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &inputs, |b, inputs| {
            b.iter(|| black_box(interp::run(&prog, inputs).unwrap()))
        });
    }
    group.finish();
}

fn bench_transform(c: &mut Criterion) {
    let prog = parser::parse_program(PI_SRC).unwrap();
    c.bench_function("transform/parallelize_reduction k=8", |b| {
        b.iter(|| black_box(transform::parallelize_reduction(&prog, 8).unwrap()))
    });
}

fn bench_document(c: &mut Criterion) {
    let m = banger_machine::Machine::new(
        banger_machine::Topology::hypercube(2),
        banger::figures::figure3_params(),
    );
    let project = banger::figures::lu_project(5, m);
    let text = banger::document::print_project(&project);
    c.bench_function("document/print LU5 project", |b| {
        b.iter(|| black_box(banger::document::print_project(&project)))
    });
    c.bench_function("document/parse LU5 project", |b| {
        b.iter(|| black_box(banger::document::parse_project(&text).unwrap()))
    });
}

/// Tree-walker vs compiled register VM on the kernels the executor
/// actually runs hot: a numeric-integration task body (loop-dominated
/// scalar math — the shape the VM exists to crush), the paper's Figure 4
/// SquareRoot (Newton iteration), and the LU pivot-column kernel `fan1`
/// (array indexing in a loop; bounded below by the value-semantics array
/// copies both engines share). Both engines are asserted to report
/// identical `ops` — the measured task weight — before any timing
/// happens.
fn bench_vm_vs_tree_walk(c: &mut Criterion) {
    let pi_prog = parser::parse_program(PI_SRC).unwrap();
    let pi_inputs: BTreeMap<String, Value> = [("n".to_string(), Value::Num(1_000.0))]
        .into_iter()
        .collect();

    let sqrt_prog = parser::parse_program(banger::figures::SQUARE_ROOT_SRC).unwrap();
    let sqrt_inputs: BTreeMap<String, Value> =
        [("a".to_string(), Value::Num(2.0))].into_iter().collect();

    let lib = banger::lu::lu_program_library(9);
    let fan1 = lib.get("fan1").unwrap().clone();
    let (a, _b) = banger::lu::test_system(9);
    let fan1_inputs: BTreeMap<String, Value> =
        [("A".to_string(), Value::array(a))].into_iter().collect();

    let mut group = c.benchmark_group("vm");
    for (name, prog, inputs) in [
        ("pi_n1000", &pi_prog, &pi_inputs),
        ("sqrt_fig4", &sqrt_prog, &sqrt_inputs),
        ("lu_fan1_n9", &fan1, &fan1_inputs),
    ] {
        let compiled = compile(prog);
        let cfg = banger_calc::InterpConfig::default();
        let tree = interp::run(prog, inputs).unwrap();
        let fast = vm::run_compiled(&compiled, inputs, cfg).unwrap();
        assert_eq!(tree.ops, fast.ops, "{name}: ops-as-weight must agree");

        group.bench_function(format!("{name}/tree_walk"), |b| {
            b.iter(|| black_box(interp::run(prog, inputs).unwrap()))
        });
        group.bench_function(format!("{name}/compiled"), |b| {
            let mut machine = vm::Vm::new();
            b.iter(|| black_box(machine.run(&compiled, inputs, cfg).unwrap()))
        });
        // What the runner pays per invocation when the compiled form is
        // *not* cached: compile + run. Kept honest alongside the cached
        // path that `ProgramLibrary` provides.
        group.bench_function(format!("{name}/compile_and_run"), |b| {
            b.iter(|| black_box(vm::compile_and_run(prog, inputs, cfg).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    language_benches,
    bench_interpreter_scaling,
    bench_array_ops,
    bench_transform,
    bench_document,
    bench_vm_vs_tree_walk
);
criterion_main!(language_benches);
