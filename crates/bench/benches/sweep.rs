//! `sweep` benches: the parallel scheduling-sweep layer against the
//! sequential loop it replaced — predict_speedup over 1..=64-processor
//! hypercubes on the flattened LU design, and compare_heuristics on Gauss
//! graphs. `BENCH_sched.json` (written by the `bench_sched` binary) tracks
//! the same quantities over time.

use banger_bench as xb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_predict_speedup(c: &mut Criterion) {
    let g = banger_taskgraph::generators::lu_hierarchical(5)
        .flatten()
        .unwrap()
        .graph;
    let machines = xb::hypercube_suite();
    // Sanity: the parallel sweep must be bit-identical to the sequential.
    assert_eq!(
        xb::speedup_points_sequential(&g, &machines),
        xb::speedup_points_parallel(&g, &machines)
    );
    let mut group = c.benchmark_group("sweep");
    group.bench_function("predict_speedup/sequential/lu5-hypercube-1..64", |b| {
        b.iter(|| black_box(xb::speedup_points_sequential(&g, &machines)))
    });
    group.bench_function("predict_speedup/parallel/lu5-hypercube-1..64", |b| {
        b.iter(|| black_box(xb::speedup_points_parallel(&g, &machines)))
    });
    group.finish();
}

fn bench_compare_heuristics(c: &mut Criterion) {
    let m = xb::bench_machine();
    let names: Vec<&str> = banger_sched::HEURISTIC_NAMES
        .iter()
        .chain(["DSH"].iter())
        .copied()
        .collect();
    let mut group = c.benchmark_group("sweep");
    for n in [6usize, 8, 10] {
        let g = banger_taskgraph::generators::gauss_elimination(n, 2.0, 1.0);
        group.bench_with_input(
            BenchmarkId::new("compare_heuristics/sequential", format!("gauss-{n}")),
            &g,
            |b, g| {
                b.iter(|| {
                    for name in &names {
                        black_box(banger_sched::run_heuristic(name, g, &m).unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compare_heuristics/parallel", format!("gauss-{n}")),
            &g,
            |b, g| b.iter(|| black_box(banger_sched::sweep::sweep_heuristics(&names, g, &m))),
        );
    }
    group.finish();
}

criterion_group!(
    sweep_benches,
    bench_predict_speedup,
    bench_compare_heuristics
);
criterion_main!(sweep_benches);
