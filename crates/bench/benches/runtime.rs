//! Runtime benches: the executor (greedy vs pinned, worker scaling) and
//! end-to-end LU solves through the whole environment.

use banger::figures;
use banger::lu::{lu_inputs, test_system};
use banger_exec::{execute, ExecMode, ExecOptions};
use banger_machine::{Machine, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exec_workers(c: &mut Criterion) {
    let design = banger_taskgraph::generators::lu_hierarchical(6)
        .flatten()
        .unwrap();
    let lib = banger::lu::lu_program_library(6);
    let (a, b) = test_system(6);
    let inputs = lu_inputs(&a, &b);
    let mut group = c.benchmark_group("exec_lu6_workers");
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |bch, &w| {
            bch.iter(|| {
                black_box(
                    execute(
                        &design,
                        &lib,
                        &inputs,
                        &ExecOptions {
                            mode: ExecMode::Greedy { workers: w },
                            ..ExecOptions::default()
                        },
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_exec_pinned(c: &mut Criterion) {
    let design = banger_taskgraph::generators::lu_hierarchical(5)
        .flatten()
        .unwrap();
    let lib = banger::lu::lu_program_library(5);
    let (a, b) = test_system(5);
    let inputs = lu_inputs(&a, &b);
    let m = Machine::new(Topology::hypercube(2), figures::figure3_params());
    let s = std::sync::Arc::new(banger_sched::mh::mh(&design.graph, &m));
    c.bench_function("exec_lu5/pinned to MH schedule", |bch| {
        bch.iter(|| {
            black_box(
                execute(
                    &design,
                    &lib,
                    &inputs,
                    &ExecOptions {
                        mode: ExecMode::Pinned(s.clone()),
                        ..ExecOptions::default()
                    },
                )
                .unwrap(),
            )
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    c.bench_function("e2e/lu4 project: schedule+simulate+run", |bch| {
        bch.iter(|| {
            let m = Machine::new(Topology::hypercube(2), figures::figure3_params());
            let mut p = figures::lu_project(4, m);
            let s = p.schedule("MH").unwrap();
            let sim = p.simulate(&s).unwrap();
            let (a, b) = test_system(4);
            let run = p.run(&lu_inputs(&a, &b)).unwrap();
            black_box((sim, run))
        })
    });
}

fn bench_codegen(c: &mut Criterion) {
    let m = Machine::new(Topology::hypercube(2), figures::figure3_params());
    let mut p = figures::lu_project(3, m);
    let s = p.schedule("MH").unwrap();
    let (a, b) = test_system(3);
    let inputs = lu_inputs(&a, &b);
    c.bench_function("codegen/rust LU3", |bch| {
        bch.iter(|| black_box(p.generate_rust(&s, &inputs).unwrap()))
    });
    c.bench_function("codegen/c LU3", |bch| {
        bch.iter(|| black_box(p.generate_c(&s, &inputs).unwrap()))
    });
}

criterion_group!(
    runtime_benches,
    bench_exec_workers,
    bench_exec_pinned,
    bench_end_to_end,
    bench_codegen
);
criterion_main!(runtime_benches);
