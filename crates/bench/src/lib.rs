#![warn(missing_docs)]

//! # banger-bench — workloads and experiment drivers
//!
//! Shared between the Criterion benches and the `repro` binary: the
//! experiment definitions for every figure and results paragraph of the
//! paper (see DESIGN.md's experiment index: F1–F4, R1–R4, ablations
//! A1–A3).

pub mod dataflow;

use banger::chart::SpeedupPoint;
use banger::figures;
use banger_machine::{Machine, MachineParams, Topology};
use banger_sched::{bounds, Schedule};
use banger_sim::{simulate, SimOptions};
use banger_taskgraph::{generators, TaskGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// The benchmark workload suite: name + graph, covering the structures the
/// scheduling literature (and the paper's own LU example) exercises.
pub fn workload_suite() -> Vec<(&'static str, TaskGraph)> {
    let mut rng = StdRng::seed_from_u64(1994); // ICPP 1994
    vec![
        (
            "lu-5",
            generators::lu_hierarchical(5).flatten().unwrap().graph,
        ),
        ("gauss-8", generators::gauss_elimination(8, 2.0, 1.0)),
        ("fft-16", generators::fft(16, 4.0, 8.0)),
        ("lattice-6x6", generators::lattice(6, 6, 3.0, 6.0)),
        (
            "forkjoin-12",
            generators::fork_join(12, 2.0, 10.0, 2.0, 12.0),
        ),
        ("outtree-4x2", generators::outtree(4, 2, 3.0, 8.0)),
        ("cholesky-7", generators::cholesky(7, 2.0, 1.5)),
        (
            "divcon-4",
            generators::divide_conquer(4, 1.0, 12.0, 2.0, 4.0),
        ),
        (
            "random-48",
            generators::random_layered(
                &mut rng,
                &generators::RandomSpec {
                    layers: 6,
                    width: 8,
                    edge_prob: 0.3,
                    weight: (5.0, 40.0),
                    volume: (1.0, 15.0),
                },
            ),
        ),
    ]
}

/// Cost parameters for the comparison suite: slower links than the
/// Figure 3 set, so communication placement is actually visible in the
/// tables (with fast links every reasonable heuristic pins to the
/// critical-path bound and the comparison degenerates).
pub fn suite_params() -> MachineParams {
    MachineParams {
        processor_speed: 1.0,
        process_startup: 0.1,
        msg_startup: 0.5,
        transmission_rate: 2.0,
        ..MachineParams::default()
    }
}

/// The machine suite: every Figure 2 topology at 8-ish processors, with
/// the [`suite_params`] cost set.
pub fn machine_suite() -> Vec<Machine> {
    let params = suite_params();
    vec![
        Machine::new(Topology::hypercube(3), params),
        Machine::new(Topology::mesh(2, 4), params),
        Machine::new(Topology::tree(2, 2), params),
        Machine::new(Topology::star(8), params),
        Machine::new(Topology::fully_connected(8), params),
        Machine::new(Topology::ring(8), params),
    ]
}

/// The heuristics compared in experiment R1 (order fixed for tables).
pub const COMPARED: [&str; 7] = ["serial", "naive", "HLFET", "MCP", "ETF", "DLS", "MH"];

/// R1 — heuristic comparison table: one row per (workload, machine,
/// heuristic) with makespan, speedup and makespan/lower-bound ratio.
pub fn sched_compare_table() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "R1 — scheduler comparison (makespan | speedup | makespan/LB)"
    );
    for (wname, g) in workload_suite() {
        let _ = writeln!(
            out,
            "\nworkload {wname} ({} tasks, ccr {:.2}):",
            g.task_count(),
            g.ccr()
        );
        let _ = write!(out, "{:<14}", "machine");
        for h in COMPARED.iter().chain(["DSH"].iter()) {
            let _ = write!(out, " {h:>18}");
        }
        out.push('\n');
        let names: Vec<&str> = COMPARED.iter().chain(["DSH"].iter()).copied().collect();
        for m in machine_suite() {
            let lb = bounds::lower_bound(&g, &m);
            let _ = write!(out, "{:<14}", m.topology().name());
            // One parallel sweep per machine row; identical to the old
            // heuristic-at-a-time loop.
            for s in banger_sched::sweep::sweep_heuristics(&names, &g, &m) {
                let s = s.expect("known heuristic");
                debug_assert!(s.validate(&g, &m).is_ok());
                let _ = write!(
                    out,
                    " {:>7.1} {:>4.2}x {:>4.2}",
                    s.makespan(),
                    s.speedup(&g, &m),
                    s.makespan() / lb
                );
            }
            out.push('\n');
        }
    }
    out
}

/// R2 — predicted vs achieved: simulate each heuristic's schedule and
/// report the achieved/predicted makespan ratio.
pub fn predicted_vs_achieved_table() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "R2 — predicted vs achieved makespan (DES simulation; ratio = achieved/predicted)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:<14} {:>10} {:>10} {:>7} {:>9} {:>11}",
        "workload", "machine", "predicted", "achieved", "ratio", "messages", "queue-delay"
    );
    for (wname, g) in workload_suite() {
        for m in machine_suite() {
            for h in ["ETF", "MH"] {
                let s = banger_sched::run_heuristic(h, &g, &m).unwrap();
                let r = simulate(&g, &m, &s, SimOptions::default()).expect("simulates");
                let _ = writeln!(
                    out,
                    "{:<14} {:<14} {:>10.2} {:>10.2} {:>7.3} {:>9} {:>11.2}  ({h})",
                    wname,
                    m.topology().name(),
                    s.makespan(),
                    r.achieved_makespan(),
                    r.compare(),
                    r.stats.messages,
                    r.stats.queue_delay
                );
            }
        }
    }
    out
}

/// R3 — speedup sweep of the LU and Gauss designs across processor counts
/// on hypercubes (extends Figure 3's 2/4/8 sweep to 1..=16).
pub fn speedup_sweep() -> String {
    let params = figures::figure3_params();
    let mut out = String::new();
    for (name, g) in [
        (
            "LU 5x5",
            generators::lu_hierarchical(5).flatten().unwrap().graph,
        ),
        ("Gauss 8", generators::gauss_elimination(8, 2.0, 1.0)),
    ] {
        let machines: Vec<Machine> = (0..=4u32)
            .map(|dim| Machine::new(Topology::hypercube(dim), params))
            .collect();
        let points: Vec<SpeedupPoint> = machines
            .iter()
            .zip(banger_sched::sweep::sweep_machines("MH", &g, &machines).unwrap())
            .map(|(m, s)| SpeedupPoint {
                processors: m.processors(),
                speedup: s.speedup(&g, m),
            })
            .collect();
        out.push_str(&banger::speedup_chart(
            &format!("R3 — {name} on hypercubes, MH"),
            &points,
            40,
        ));
        out.push('\n');
    }
    out
}

/// A1 — communication-awareness ablation: naive (comm-blind) vs ETF vs MH
/// as the communication volume scales.
pub fn ablation_comm() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "A1 — value of communication awareness (fork-join, volume sweep, hypercube-3)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>10} {:>10}",
        "ccr", "naive", "ETF", "MH"
    );
    let m = Machine::new(Topology::hypercube(3), figures::figure3_params());
    for scale in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let mut g = generators::fork_join(8, 2.0, 10.0, 2.0, 1.0);
        g.scale_volumes(scale * 10.0);
        let row: Vec<f64> = banger_sched::sweep::sweep_heuristics(&["naive", "ETF", "MH"], &g, &m)
            .into_iter()
            .map(|s| s.unwrap().makespan())
            .collect();
        let _ = writeln!(
            out,
            "{:>8.2} {:>10.2} {:>10.2} {:>10.2}",
            g.ccr(),
            row[0],
            row[1],
            row[2]
        );
    }
    out
}

/// A2 — duplication ablation: ETF vs DSH as message startup grows.
pub fn ablation_duplication() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "A2 — value of duplication (out-tree, msg-startup sweep, 8 procs full)"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>10} {:>10} {:>8}",
        "msg-startup", "ETF", "DSH", "copies"
    );
    let g = generators::outtree(3, 2, 3.0, 2.0);
    for startup in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let m = Machine::new(
            Topology::fully_connected(8),
            MachineParams {
                msg_startup: startup,
                ..MachineParams::default()
            },
        );
        let e = banger_sched::list::etf(&g, &m);
        let d = banger_sched::dsh::dsh(&g, &m);
        let copies = d.placements().len() - g.task_count();
        let _ = writeln!(
            out,
            "{:>12.1} {:>10.2} {:>10.2} {:>8}",
            startup,
            e.makespan(),
            d.makespan(),
            copies
        );
    }
    out
}

/// A3 — grain packing ablation: schedule a fine-grain lattice raw vs
/// packed, with process startup making small grains expensive.
pub fn ablation_grain() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "A3 — value of grain packing (fine-grain lattice, startup sweep, hypercube-2)"
    );
    let _ = writeln!(
        out,
        "{:>14} {:>10} {:>10} {:>9}",
        "proc-startup", "raw ETF", "packed ETF", "clusters"
    );
    let g = generators::lattice(6, 6, 1.0, 4.0);
    let packing = banger_sched::grain::pack(&g).expect("packs");
    for startup in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let m = Machine::new(
            Topology::hypercube(2),
            MachineParams {
                process_startup: startup,
                ..MachineParams::default()
            },
        );
        let raw = banger_sched::list::etf(&g, &m);
        let packed = banger_sched::list::etf(&packing.packed, &m);
        let _ = writeln!(
            out,
            "{:>14.1} {:>10.2} {:>10.2} {:>9}",
            startup,
            raw.makespan(),
            packed.makespan(),
            packing.packed.task_count()
        );
    }
    out
}

/// R4 — code generation demo: generate the Rust and C programs for the
/// scheduled LU 3x3 design and report their sizes.
pub fn codegen_report() -> String {
    let m = Machine::new(Topology::hypercube(2), figures::figure3_params());
    let mut project = figures::lu_project(3, m);
    let schedule = project.schedule("MH").expect("schedules");
    let (a, b) = banger::lu::test_system(3);
    let inputs = banger::lu::lu_inputs(&a, &b);
    let rust = project
        .generate_rust(&schedule, &inputs)
        .expect("rust codegen");
    let c = project.generate_c(&schedule, &inputs).expect("c codegen");
    format!(
        "R4 — code generation (LU 3x3, MH on hypercube-2)\n\
         generated Rust: {} lines / {} bytes (threads + mpsc; compiled & run by tests/codegen_roundtrip.rs)\n\
         generated C:    {} lines / {} bytes (MPI SPMD)\n",
        rust.lines().count(),
        rust.len(),
        c.lines().count(),
        c.len()
    )
}

/// Machines for the sweep benches: hypercubes from 1 to 64 processors
/// (dims 0..=6) with the Figure 3 cost set.
pub fn hypercube_suite() -> Vec<Machine> {
    (0..=6u32)
        .map(|dim| Machine::new(Topology::hypercube(dim), figures::figure3_params()))
        .collect()
}

/// Sequential reference for the sweep benches: MH on every machine, one at
/// a time — the pre-sweep code path, kept so the benches (and
/// `BENCH_sched.json`) can report the parallel layer's gain.
pub fn speedup_points_sequential(g: &TaskGraph, machines: &[Machine]) -> Vec<SpeedupPoint> {
    machines
        .iter()
        .map(|m| {
            let s = banger_sched::mh::mh(g, m);
            SpeedupPoint {
                processors: m.processors(),
                speedup: s.speedup(g, m),
            }
        })
        .collect()
}

/// The parallel sweep equivalent of [`speedup_points_sequential`]; the
/// results are bit-identical.
pub fn speedup_points_parallel(g: &TaskGraph, machines: &[Machine]) -> Vec<SpeedupPoint> {
    machines
        .iter()
        .zip(banger_sched::sweep::sweep_machines("MH", g, machines).expect("MH is known"))
        .map(|(m, s)| SpeedupPoint {
            processors: m.processors(),
            speedup: s.speedup(g, m),
        })
        .collect()
}

/// Convenience used by benches: one mid-size schedule input.
pub fn bench_graph() -> TaskGraph {
    generators::gauss_elimination(10, 2.0, 1.0)
}

/// Convenience used by benches: the Figure 3 hypercube-3 machine.
pub fn bench_machine() -> Machine {
    Machine::new(Topology::hypercube(3), figures::figure3_params())
}

/// Validates one schedule (debug aid shared by benches).
pub fn check(g: &TaskGraph, m: &Machine, s: &Schedule) {
    s.validate(g, m).expect("bench schedules must be valid");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_nonempty_and_valid() {
        let ws = workload_suite();
        assert_eq!(ws.len(), 9);
        for (name, g) in &ws {
            assert!(g.is_dag(), "{name}");
            assert!(g.task_count() >= 10, "{name} too small");
        }
        assert_eq!(machine_suite().len(), 6);
    }

    #[test]
    fn r1_table_renders() {
        let t = sched_compare_table();
        assert!(t.contains("workload lu-5"));
        assert!(t.contains("hypercube-3"));
        assert!(t.contains("DSH"));
    }

    #[test]
    fn r2_table_renders_and_ratios_sane() {
        let t = predicted_vs_achieved_table();
        assert!(t.contains("ratio"));
        // Every data line carries a sane ratio. ETF's analytic prediction
        // is a lower bound on the simulation, so its ratio is >= 1; MH's
        // link reservations are conservative, so simulation may beat its
        // prediction somewhat (ratio below 1 is legitimate there).
        for line in t.lines().skip(2) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            if cols.len() >= 5 {
                let ratio: f64 = cols[4].parse().unwrap();
                if line.ends_with("(ETF)") {
                    assert!(ratio >= 0.999, "{line}");
                }
                assert!(ratio > 0.5, "{line}");
                assert!(ratio < 10.0, "{line}");
            }
        }
    }

    #[test]
    fn r3_sweep_renders() {
        let t = speedup_sweep();
        assert!(t.contains("LU 5x5"));
        assert!(t.contains("16 procs"));
    }

    #[test]
    fn ablations_render() {
        assert!(ablation_comm().contains("A1"));
        assert!(ablation_duplication().contains("A2"));
        assert!(ablation_grain().contains("A3"));
    }

    #[test]
    fn a1_naive_loses_when_comm_expensive() {
        let t = ablation_comm();
        let last = t.lines().last().unwrap();
        let cols: Vec<f64> = last
            .split_whitespace()
            .map(|c| c.parse().unwrap())
            .collect();
        // naive >= MH at the highest CCR
        assert!(cols[1] >= cols[3], "{last}");
    }

    #[test]
    fn a2_dsh_wins_at_high_startup() {
        let t = ablation_duplication();
        let last = t.lines().last().unwrap();
        let cols: Vec<f64> = last
            .split_whitespace()
            .map(|c| c.parse().unwrap())
            .collect();
        assert!(cols[2] <= cols[1], "DSH should not lose: {last}");
        assert!(cols[3] > 0.0, "DSH should duplicate at startup 8: {last}");
    }

    #[test]
    fn codegen_report_renders() {
        let t = codegen_report();
        assert!(t.contains("generated Rust"));
        assert!(t.contains("generated C"));
    }
}
