//! Dataflow data-movement workloads, shared between the `bench_exec`
//! binary (BENCH_exec.json) and the Criterion `exec` group.
//!
//! Three shapes stress the executor's gather/publish path rather than
//! its compute: a **wide fan-out** (one producer's large array consumed
//! by many readers), a **deep pipeline** (one array handed stage to
//! stage), and the paper's **LU design** end to end. Each comes with an
//! [`run_oldstyle`] baseline — a faithful replica of the pre-zero-copy
//! executor's data movement: string-matched gather into name-keyed
//! `BTreeMap`s with a deep array copy per consumer edge, single
//! threaded. The replica drives the *same* compiled VM, so any measured
//! gap is data movement, not compute. Like the old runtime, it copies
//! each input twice: once on the consumer edge at gather, and once more
//! when the run boundary binds VM registers by value.

use banger_calc::vm::Vm;
use banger_calc::{InterpConfig, ProgramLibrary, Value};
use banger_taskgraph::hierarchy::{Flattened, HierGraph};
use std::collections::BTreeMap;

/// A design plus its program library and external inputs — everything
/// `execute` (or [`run_oldstyle`]) needs.
pub struct Workload {
    /// Short machine-readable name.
    pub name: &'static str,
    /// The flattened design.
    pub design: Flattened,
    /// Task programs.
    pub lib: ProgramLibrary,
    /// External input-port values.
    pub external: BTreeMap<String, Value>,
}

/// One producer building an `len`-element array, fanned out to `readers`
/// consumer tasks that each read a single element. The array moves over
/// `readers` arcs; the old runtime copied it per arc, the zero-copy
/// runtime bumps a refcount per arc.
pub fn fanout(len: usize, readers: usize) -> Workload {
    let mut h = HierGraph::new("fanout");
    let src = h.add_task_with_program("make", 1.0, "Make");
    let mut lib = ProgramLibrary::new();
    lib.add_source(&format!(
        "task Make out big begin big := fill({len}, 2) end"
    ))
    .unwrap();
    for i in 0..readers {
        let r = h.add_task_with_program(format!("read{i}"), 1.0, format!("Read{i}"));
        h.add_arc(src, r, "big", len as f64).unwrap();
        let o = h.add_storage(format!("o{i}"), 1.0);
        h.add_flow(r, o).unwrap();
        lib.add_source(&format!(
            "task Read{i} in big out o{i} begin o{i} := big[{}] end",
            i + 1
        ))
        .unwrap();
    }
    Workload {
        name: "fanout",
        design: h.flatten().unwrap(),
        lib,
        external: BTreeMap::new(),
    }
}

/// A `stages`-deep pipeline handing one `len`-element array from stage
/// to stage unchanged (`v1 := v0`), with a final scalar read so the
/// array itself is pure transit. Old runtime: one deep copy per stage;
/// zero-copy runtime: one refcount bump per stage.
pub fn pipeline(len: usize, stages: usize) -> Workload {
    let mut h = HierGraph::new("pipeline");
    let mut lib = ProgramLibrary::new();
    let src = h.add_task_with_program("stage0", 1.0, "S0");
    lib.add_source(&format!("task S0 out v1 begin v1 := fill({len}, 1) end"))
        .unwrap();
    let mut prev = src;
    for i in 1..stages {
        let t = h.add_task_with_program(format!("stage{i}"), 1.0, format!("S{i}"));
        h.add_arc(prev, t, format!("v{i}"), len as f64).unwrap();
        lib.add_source(&format!(
            "task S{i} in v{i} out v{} begin v{} := v{i} end",
            i + 1,
            i + 1
        ))
        .unwrap();
        prev = t;
    }
    let last = h.add_task_with_program("tail", 1.0, "Tail");
    h.add_arc(prev, last, format!("v{stages}"), len as f64)
        .unwrap();
    let o = h.add_storage("x", 1.0);
    h.add_flow(last, o).unwrap();
    lib.add_source(&format!(
        "task Tail in v{stages} out x begin x := v{stages}[1] end"
    ))
    .unwrap();
    Workload {
        name: "pipeline",
        design: h.flatten().unwrap(),
        lib,
        external: BTreeMap::new(),
    }
}

/// The paper's Figure-1 LU decomposition design for an `n`-by-`n`
/// system, programs and inputs included.
pub fn lu(n: usize) -> Workload {
    let (a, b) = banger::lu::test_system(n);
    Workload {
        name: "lu",
        design: banger_taskgraph::generators::lu_hierarchical(n)
            .flatten()
            .unwrap(),
        lib: banger::lu::lu_program_library(n),
        external: banger::lu::lu_inputs(&a, &b),
    }
}

/// The paper's LU design after the graph-rewrite optimizer: dead-arc
/// elimination followed by task fusion along `grain::pack`'s clusters.
/// Outcome-preserving by the optimizer's contract — same output values,
/// same total operation count — so any timing gap against [`lu`] is
/// pure per-task dispatch overhead reclaimed.
pub fn lu_fused(n: usize) -> Workload {
    let w = lu(n);
    let (dced, dlib, _) = banger_opt::eliminate_dead(&w.design, &w.lib).unwrap();
    let (fused, flib, _) = banger_opt::fuse(&dced, &dlib).unwrap();
    Workload {
        name: "lu_fused",
        design: fused,
        lib: flib,
        external: w.external,
    }
}

/// A single dense-LU template task over an `n`-by-`n` diagonally
/// dominant system — the overhead-free (and parallelism-free) baseline
/// for [`tiled_lu`].
pub fn dense_lu(n: usize) -> Workload {
    let mut h = HierGraph::new("dense_lu");
    let s_in = h.add_storage("a", (n * n) as f64);
    let t = h.add_task_with_program("fact", (n * n * n) as f64, "DenseLU");
    let s_out = h.add_storage("lu", (n * n) as f64);
    h.add_flow(s_in, t).unwrap();
    h.add_flow(t, s_out).unwrap();
    let mut lib = ProgramLibrary::new();
    lib.add(banger_opt::dense_lu_program("DenseLU", "a", "lu", n));
    let (a, _) = banger::lu::test_system(n);
    Workload {
        name: "dense_lu",
        design: h.flatten().unwrap(),
        lib,
        external: [("a".to_string(), Value::array(a))].into_iter().collect(),
    }
}

/// [`dense_lu`] after map expansion into a `tiles`-by-`tiles` block-LU
/// (scatter / gemm-chain / kernel / relabel / gather tasks). Values are
/// bit-identical to the dense template; the task count grows from 1 to
/// thousands, so this is the executor-at-scale workload.
pub fn tiled_lu(n: usize, tiles: usize) -> Workload {
    let mut h = HierGraph::new("tiled_lu");
    let s_in = h.add_storage("a", (n * n) as f64);
    let t = h.add_task_with_program("fact", (n * n * n) as f64, "DenseLU");
    let s_out = h.add_storage("lu", (n * n) as f64);
    h.add_flow(s_in, t).unwrap();
    h.add_flow(t, s_out).unwrap();
    let mut lib = ProgramLibrary::new();
    lib.add(banger_opt::dense_lu_program("DenseLU", "a", "lu", n));
    banger_opt::expand_dense_lu(&mut h, "fact", &mut lib, tiles).unwrap();
    let (a, _) = banger::lu::test_system(n);
    Workload {
        name: "tiled_lu",
        design: h.flatten().unwrap(),
        lib,
        external: [("a".to_string(), Value::array(a))].into_iter().collect(),
    }
}

/// A structurally independent deep copy — the movement cost the old
/// runtime paid implicitly on every consumer edge.
fn deep(v: &Value) -> Value {
    match v {
        Value::Num(n) => Value::Num(*n),
        Value::Array(a) => Value::array(a.as_ref().clone()),
    }
}

/// The pre-zero-copy executor's data movement, replicated: topological
/// single-threaded execution, per-task string-matched gather into a
/// name-keyed `BTreeMap` with a deep copy per consumer edge, name-keyed
/// publish maps. Drives the same compiled VM as `execute`. Returns the
/// design's output-port values.
pub fn run_oldstyle(w: &Workload, cfg: InterpConfig) -> BTreeMap<String, Value> {
    let g = &w.design.graph;
    let mut indeg: Vec<usize> = g.task_ids().map(|t| g.in_degree(t)).collect();
    let mut ready: Vec<_> = g.task_ids().filter(|t| indeg[t.index()] == 0).collect();
    let mut store: Vec<Option<BTreeMap<String, Value>>> = vec![None; g.task_count()];
    let mut vm = Vm::new();
    while let Some(t) = ready.pop() {
        // Per-run name resolution, as the old runner did.
        let name = g.task(t).program.as_deref().expect("task has program");
        let prog = w.lib.get_compiled(name).expect("program exists");
        let mut inputs: BTreeMap<String, Value> = BTreeMap::new();
        'vars: for var in prog.input_names() {
            for &e in g.in_edges(t) {
                let edge = g.edge(e);
                if edge.label == var {
                    let produced = store[edge.src.index()]
                        .as_ref()
                        .expect("predecessor completed");
                    inputs.insert(var.to_string(), deep(&produced[var]));
                    continue 'vars;
                }
            }
            inputs.insert(var.to_string(), deep(&w.external[var]));
        }
        // The old runtime's VM bound registers by value as well: every
        // input was structurally copied a second time out of the gather
        // map at the run boundary.
        let bound: BTreeMap<String, Value> =
            inputs.iter().map(|(k, v)| (k.clone(), deep(v))).collect();
        let out = vm.run(&prog, &bound, cfg).expect("task runs");
        store[t.index()] = Some(out.outputs);
        for s in g.successors(t) {
            let d = &mut indeg[s.index()];
            *d -= 1;
            if *d == 0 {
                ready.push(s);
            }
        }
    }
    let mut outputs = BTreeMap::new();
    for port in &w.design.outputs {
        let vals = store[port.tasks[0].index()].as_ref().expect("completed");
        outputs.insert(port.var.clone(), vals[&port.var].clone());
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_exec::{execute, ExecMode, ExecOptions};

    /// The old-style replica and the real executor agree on every
    /// workload — the correctness gate bench_exec relies on.
    #[test]
    fn oldstyle_matches_execute() {
        for w in [fanout(64, 4), pipeline(64, 6), lu(5)] {
            let old = run_oldstyle(&w, InterpConfig::default());
            let new = execute(
                &w.design,
                &w.lib,
                &w.external,
                &ExecOptions {
                    mode: ExecMode::Greedy { workers: 1 },
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                format!("{old:?}"),
                format!("{:?}", new.outputs),
                "{} outputs diverged",
                w.name
            );
        }
    }
}
