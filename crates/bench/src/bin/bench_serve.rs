//! `bench_serve` — measures what the `banger serve` daemon's
//! content-hashed caches buy, writing `BENCH_serve.json`:
//!
//! - **cold vs warm request latency** through the request dispatcher
//!   (`serve::ops::handle`): cold = the entry is evicted before every
//!   request, so parse + diagnose + schedule + render all rerun; warm =
//!   the same request replayed against the resident entry (one
//!   stat+read+rehash of the source file plus a cache lookup);
//! - **socket round-trip latency** against a live daemon on a
//!   Unix-domain socket (framing + JSON + dispatch, warm);
//! - **sustained throughput** under concurrent clients hammering warm
//!   mixed check/schedule requests.
//!
//! ```text
//! cargo run --release -p banger-bench --bin bench_serve [-- --quick]
//! ```
//!
//! `--quick` shrinks the measurement budget for CI smoke runs.
//!
//! Timings are the **minimum of batch means** (same estimator as the
//! other bench records): the host is small and noisy; the minimum
//! estimates the uncontended cost most stably. Throughput numbers on a
//! 1-CPU host measure protocol + dispatch overhead, not parallel
//! speedup — client threads and the daemon share the core.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Minimum batch-mean wall time of `f` in nanoseconds.
fn best_ns<F: FnMut()>(budget_ms: u128, mut f: F) -> f64 {
    f(); // warmup
    let t0 = Instant::now();
    f();
    let per = t0.elapsed().as_nanos().max(1);
    let batch = ((5_000_000 / per).max(1) as u64).min(16_384);
    let started = Instant::now();
    let mut best = f64::INFINITY;
    let mut batches = 0u32;
    while batches < 3 || (started.elapsed().as_millis() < budget_ms && batches < 1_000) {
        let s = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(s.elapsed().as_nanos() as f64 / batch as f64);
        batches += 1;
    }
    best
}

#[cfg(not(unix))]
fn main() {
    eprintln!("bench_serve requires a Unix platform (unix-domain sockets)");
}

#[cfg(unix)]
fn main() {
    use banger::serve::ops;
    use banger::serve::{Client, ProjectStore, Request, Server};

    let quick = std::env::args().any(|a| a == "--quick");
    let (budget_ms, sustained_per_client) = if quick { (20, 50u32) } else { (150, 500u32) };

    let lu3 = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/projects/lu3.bang"
    );
    let lu3 = std::fs::canonicalize(lu3).expect("lu3 example exists");
    let lu3 = lu3.to_str().expect("utf-8 path");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // ---- dispatcher-level cold vs warm -------------------------------
    let store = ProjectStore::new();
    let mut sched_req = Request::for_path("schedule", lu3);
    sched_req.heuristic = "ETF".into();
    let check_req = Request::for_path("check", lu3);

    // Correctness gate before timing: warm and cold answers must match.
    let cold_resp = ops::handle(&store, &sched_req);
    assert!(cold_resp.ok, "{}", cold_resp.error);
    let warm_resp = ops::handle(&store, &sched_req);
    assert!(warm_resp.cached, "second request must be warm");
    assert_eq!(cold_resp.output, warm_resp.output);

    let sched_cold_ns = best_ns(budget_ms, || {
        store.evict(lu3);
        black_box(ops::handle(&store, black_box(&sched_req)));
    });
    ops::handle(&store, &sched_req); // re-warm
    let sched_warm_ns = best_ns(budget_ms, || {
        black_box(ops::handle(&store, black_box(&sched_req)));
    });
    let check_cold_ns = best_ns(budget_ms, || {
        store.evict(lu3);
        black_box(ops::handle(&store, black_box(&check_req)));
    });
    ops::handle(&store, &check_req);
    let check_warm_ns = best_ns(budget_ms, || {
        black_box(ops::handle(&store, black_box(&check_req)));
    });
    let _ = write!(
        json,
        "  \"schedule\": {{\n    \
         \"cold_best_ns\": {sched_cold_ns:.0},\n    \
         \"warm_best_ns\": {sched_warm_ns:.0},\n    \
         \"warm_speedup\": {:.2}\n  }},\n",
        sched_cold_ns / sched_warm_ns
    );
    let _ = write!(
        json,
        "  \"check\": {{\n    \
         \"cold_best_ns\": {check_cold_ns:.0},\n    \
         \"warm_best_ns\": {check_warm_ns:.0},\n    \
         \"warm_speedup\": {:.2}\n  }},\n",
        check_cold_ns / check_warm_ns
    );

    // ---- socket round-trips against a live daemon --------------------
    let sock = std::env::temp_dir().join(format!("banger-bench-serve-{}.sock", std::process::id()));
    std::fs::remove_file(&sock).ok();
    let server = std::sync::Arc::new(Server::bind(&sock).expect("bind"));
    let handle = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.serve().expect("serve"))
    };
    for _ in 0..100 {
        if Client::connect(&sock).is_ok() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let mut client = Client::connect(&sock).expect("connect");
    let ping = Request::new("ping");
    client.request(&sched_req).expect("warm the daemon");
    let ping_ns = best_ns(budget_ms, || {
        black_box(client.request(&ping).expect("ping"));
    });
    let sched_rt_ns = best_ns(budget_ms, || {
        black_box(client.request(&sched_req).expect("schedule"));
    });
    let _ = write!(
        json,
        "  \"socket\": {{\n    \
         \"ping_roundtrip_best_ns\": {ping_ns:.0},\n    \
         \"schedule_warm_roundtrip_best_ns\": {sched_rt_ns:.0}\n  }},\n"
    );

    // ---- sustained throughput under concurrent clients ---------------
    let clients = 4u32;
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let sock = sock.clone();
            let sched_req = sched_req.clone();
            let check_req = check_req.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&sock).expect("connect");
                for i in 0..sustained_per_client {
                    let req = if (t + i) % 2 == 0 {
                        &sched_req
                    } else {
                        &check_req
                    };
                    let resp = client.request(req).expect("request");
                    assert!(resp.ok, "{}", resp.error);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let elapsed = started.elapsed();
    let total = u64::from(clients) * u64::from(sustained_per_client);
    let req_per_sec = total as f64 / elapsed.as_secs_f64();
    let _ = write!(
        json,
        "  \"sustained\": {{\n    \
         \"clients\": {clients},\n    \
         \"requests\": {total},\n    \
         \"elapsed_ms\": {},\n    \
         \"req_per_sec\": {req_per_sec:.0}\n  }},\n",
        elapsed.as_millis()
    );

    // Clean shutdown over the protocol.
    Client::connect(&sock)
        .expect("connect")
        .request(&Request::new("shutdown"))
        .expect("shutdown");
    handle.join().expect("server thread");

    let _ = write!(
        json,
        "  \"notes\": \"cold = entry evicted before each request (parse+diagnose+schedule+render \
         rerun); warm = resident entry, one stat+read+rehash per request. Single small host; \
         minimum-of-batch-means estimator; with host_cpus=1 the sustained figure measures \
         protocol+dispatch overhead under contention, not parallel scaling.\"\n}}\n"
    );

    print!("{json}");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");

    assert!(
        sched_cold_ns / sched_warm_ns >= 5.0,
        "warm schedule requests must be at least 5x faster than cold (got {:.2}x)",
        sched_cold_ns / sched_warm_ns
    );
}
