//! `sched_smoke` — large-graph scheduling smoke with a wall-clock budget,
//! run by CI so a quadratic regression in the scheduler core fails the
//! build instead of silently rotting.
//!
//! Default: a 10k-task bounded-degree layered-random graph through HLFET
//! and MH on the Figure 3 hypercube-3 machine, each schedule validated,
//! under a total budget (default 30s — generous on CI hardware; the
//! pre-rework quadratic selection alone blows it).
//!
//! ```text
//! cargo run --release -p banger-bench --bin sched_smoke [-- --tasks N]
//!            [--budget-ms MS] [--heuristics A,B] [--hypercube DIM]
//! ```
//!
//! `--tasks 100000` is the README's 100k quick-start demo.

use banger_sched::SchedStats;
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::generators;
use std::time::Instant;

fn main() {
    let mut tasks: usize = 10_000;
    let mut budget_ms: u128 = 30_000;
    let mut heuristics = vec!["HLFET".to_string(), "MH".to_string()];
    let mut hypercube: Option<u32> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tasks" => {
                i += 1;
                tasks = args[i].parse().expect("--tasks N");
            }
            "--budget-ms" => {
                i += 1;
                budget_ms = args[i].parse().expect("--budget-ms MS");
            }
            "--heuristics" => {
                i += 1;
                heuristics = args[i].split(',').map(str::to_string).collect();
            }
            "--hypercube" => {
                i += 1;
                hypercube = Some(args[i].parse().expect("--hypercube DIM"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Layer the graph ~200 wide: deep enough to have real dependence
    // structure, wide enough that the ready set stresses selection.
    let width = 200usize.min(tasks);
    let layers = tasks.div_ceil(width).max(1);
    let g = generators::layered_random(2026, layers, width, 3, (1.0, 20.0), (0.5, 10.0));
    let m = match hypercube {
        // Same Figure 3 machine parameters as `bench_machine`, on a
        // caller-chosen hypercube dimension (the EXPERIMENTS.md scaling
        // table's machine axis).
        Some(dim) => banger_machine::Machine::new(
            banger_machine::Topology::hypercube(dim),
            banger::figures::figure3_params(),
        ),
        None => banger_bench::bench_machine(),
    };
    println!(
        "sched_smoke: {} tasks, {} edges on {} (budget {budget_ms} ms)",
        g.task_count(),
        g.edge_count(),
        m.topology().name()
    );

    let start = Instant::now();
    let a = GraphAnalysis::analyze(&g);
    for h in &heuristics {
        let t0 = Instant::now();
        let s = banger_sched::run_heuristic_with(h, &g, &m, &a)
            .unwrap_or_else(|| panic!("unknown heuristic {h}"));
        let sched_ms = t0.elapsed().as_millis();
        s.validate(&g, &m)
            .unwrap_or_else(|e| panic!("{h}: invalid schedule: {e}"));
        let SchedStats {
            arrival_probes,
            slot_searches,
        } = s.stats();
        println!(
            "  {h:<6} {sched_ms:>6} ms  makespan {:>12.1}  arrival_probes {arrival_probes}  slot_searches {slot_searches}",
            s.makespan()
        );
    }
    let total = start.elapsed().as_millis();
    println!("total {total} ms (budget {budget_ms} ms)");
    if total > budget_ms {
        eprintln!("FAIL: wall-clock budget exceeded — quadratic regression?");
        std::process::exit(1);
    }
}
