//! `bench_sched` — measures the scheduling-sweep layer and writes
//! `BENCH_sched.json` (mean ns per sweep, sequential vs parallel, plus
//! engine probe counts) so the perf trajectory is tracked across PRs.
//!
//! ```text
//! cargo run --release -p banger-bench --bin bench_sched
//! ```

use banger_bench as xb;
use std::hint::black_box;
use std::time::Instant;

/// Mean wall time of `f` in nanoseconds: one warmup call, then doubling
/// batches until a batch takes >= 200ms (or 1024 iterations).
fn mean_ns<F: FnMut()>(mut f: F) -> f64 {
    f();
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 200 || iters >= 1024 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    }
}

fn main() {
    // The sweep sizes itself from `available_parallelism`, which is 1 on
    // the smallest CI hosts — that used to make this benchmark record
    // `workers: 1, speedup: null` forever. Force a two-worker sweep
    // (unless the environment already pins a count) so the parallel path
    // is actually exercised and measured. On a single-CPU host the
    // honest result is ~1.0x; `host_cpus` in the record says why.
    if std::env::var("BANGER_SWEEP_WORKERS").is_err() {
        std::env::set_var("BANGER_SWEEP_WORKERS", "2");
    }

    // LU at n = 7 (46 tasks) makes each sweep item heavy enough that
    // per-item engine work, not sweep bookkeeping, dominates the
    // measurement.
    let g = banger_taskgraph::generators::lu_hierarchical(7)
        .flatten()
        .unwrap()
        .graph;
    let machines = xb::hypercube_suite();

    // Correctness gate before timing anything.
    let seq_points = xb::speedup_points_sequential(&g, &machines);
    let par_points = xb::speedup_points_parallel(&g, &machines);
    assert_eq!(
        seq_points, par_points,
        "parallel sweep must be bit-identical"
    );

    let seq_ns = mean_ns(|| {
        black_box(xb::speedup_points_sequential(&g, &machines));
    });
    let par_ns = mean_ns(|| {
        black_box(xb::speedup_points_parallel(&g, &machines));
    });

    let cmp_g = banger_taskgraph::generators::gauss_elimination(8, 2.0, 1.0);
    let cmp_m = xb::bench_machine();
    let names: Vec<&str> = banger_sched::HEURISTIC_NAMES
        .iter()
        .chain(["DSH"].iter())
        .copied()
        .collect();
    let cmp_seq_ns = mean_ns(|| {
        for name in &names {
            black_box(banger_sched::run_heuristic(name, &cmp_g, &cmp_m).unwrap());
        }
    });
    let cmp_par_ns = mean_ns(|| {
        black_box(banger_sched::sweep::sweep_heuristics(
            &names, &cmp_g, &cmp_m,
        ));
    });

    // Engine probe counts for one parallel predict_speedup sweep.
    banger_sched::engine::reset_probe_totals();
    black_box(xb::speedup_points_parallel(&g, &machines));
    let (arrival_probes, slot_searches) = banger_sched::engine::probe_totals();

    // Each sweep picks its own worker count (available_parallelism capped
    // by item count); record exactly what ran. A sweep that got only one
    // worker never left the sequential loop, so a "parallel speedup" for
    // it would be noise — report null and say why.
    let predict_workers = banger_sched::sweep::planned_workers(machines.len());
    let cmp_workers = banger_sched::sweep::planned_workers(names.len());

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"predict_speedup_lu7_hypercube_1_64\": {{\n    \
         \"sequential_mean_ns\": {seq_ns:.0},\n    \
         \"parallel_mean_ns\": {par_ns:.0},\n{}  }},\n  \
         \"compare_heuristics_gauss8\": {{\n    \
         \"sequential_mean_ns\": {cmp_seq_ns:.0},\n    \
         \"parallel_mean_ns\": {cmp_par_ns:.0},\n{}  }},\n  \
         \"engine_probes_per_predict_sweep\": {{\n    \
         \"arrival_probes\": {arrival_probes},\n    \
         \"slot_searches\": {slot_searches}\n  }}\n}}\n",
        speedup_fields(predict_workers, host_cpus, seq_ns / par_ns),
        speedup_fields(cmp_workers, host_cpus, cmp_seq_ns / cmp_par_ns),
    );
    std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
    print!("{json}");
}

/// JSON fragment for one experiment's parallelism claim. With more than
/// one worker the measured speedup stands on its own (a ~1.0x on a host
/// with fewer CPUs than workers is the honest reading, not a bug); with
/// one worker the "parallel" path was the sequential loop, so the
/// speedup is null and a note records that no parallelism claim is
/// being made.
fn speedup_fields(workers: usize, host_cpus: usize, speedup: f64) -> String {
    if workers > 1 && workers > host_cpus {
        format!(
            "    \"workers\": {workers},\n    \"speedup\": {speedup:.2},\n    \
             \"note\": \"more sweep workers than host CPUs: threads time-share one core, so ~1.0x or below is expected here\"\n",
        )
    } else if workers > 1 {
        format!("    \"workers\": {workers},\n    \"speedup\": {speedup:.2}\n",)
    } else {
        format!(
            "    \"workers\": {workers},\n    \"speedup\": null,\n    \
             \"note\": \"single worker: sweep ran sequentially, no parallel speedup to claim\"\n",
        )
    }
}
