//! `bench_sched` — measures the scheduling-sweep layer and writes
//! `BENCH_sched.json` (mean ns per sweep, sequential vs parallel, plus
//! engine probe counts) so the perf trajectory is tracked across PRs.
//!
//! ```text
//! cargo run --release -p banger-bench --bin bench_sched
//! ```

use banger_bench as xb;
use std::hint::black_box;
use std::time::Instant;

/// Mean wall time of `f` in nanoseconds: one warmup call, then doubling
/// batches until a batch takes >= 200ms (or 1024 iterations).
fn mean_ns<F: FnMut()>(mut f: F) -> f64 {
    f();
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 200 || iters >= 1024 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    }
}

fn main() {
    let g = banger_taskgraph::generators::lu_hierarchical(5)
        .flatten()
        .unwrap()
        .graph;
    let machines = xb::hypercube_suite();

    // Correctness gate before timing anything.
    let seq_points = xb::speedup_points_sequential(&g, &machines);
    let par_points = xb::speedup_points_parallel(&g, &machines);
    assert_eq!(
        seq_points, par_points,
        "parallel sweep must be bit-identical"
    );

    let seq_ns = mean_ns(|| {
        black_box(xb::speedup_points_sequential(&g, &machines));
    });
    let par_ns = mean_ns(|| {
        black_box(xb::speedup_points_parallel(&g, &machines));
    });

    let cmp_g = banger_taskgraph::generators::gauss_elimination(8, 2.0, 1.0);
    let cmp_m = xb::bench_machine();
    let names: Vec<&str> = banger_sched::HEURISTIC_NAMES
        .iter()
        .chain(["DSH"].iter())
        .copied()
        .collect();
    let cmp_seq_ns = mean_ns(|| {
        for name in &names {
            black_box(banger_sched::run_heuristic(name, &cmp_g, &cmp_m).unwrap());
        }
    });
    let cmp_par_ns = mean_ns(|| {
        black_box(banger_sched::sweep::sweep_heuristics(
            &names, &cmp_g, &cmp_m,
        ));
    });

    // Engine probe counts for one parallel predict_speedup sweep.
    banger_sched::engine::reset_probe_totals();
    black_box(xb::speedup_points_parallel(&g, &machines));
    let (arrival_probes, slot_searches) = banger_sched::engine::probe_totals();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"predict_speedup_lu5_hypercube_1_64\": {{\n    \
         \"sequential_mean_ns\": {seq_ns:.0},\n    \
         \"parallel_mean_ns\": {par_ns:.0},\n    \
         \"speedup\": {:.2}\n  }},\n  \
         \"compare_heuristics_gauss8\": {{\n    \
         \"sequential_mean_ns\": {cmp_seq_ns:.0},\n    \
         \"parallel_mean_ns\": {cmp_par_ns:.0},\n    \
         \"speedup\": {:.2}\n  }},\n  \
         \"engine_probes_per_predict_sweep\": {{\n    \
         \"arrival_probes\": {arrival_probes},\n    \
         \"slot_searches\": {slot_searches}\n  }},\n  \
         \"threads\": {threads}\n}}\n",
        seq_ns / par_ns,
        cmp_seq_ns / cmp_par_ns,
    );
    std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
    print!("{json}");
}
