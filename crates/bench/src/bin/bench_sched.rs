//! `bench_sched` — measures the scheduling-sweep layer and the scheduler
//! scale rework, writing `BENCH_sched.json` (mean ns per sweep, sequential
//! vs parallel, per-run engine probe counts, and `sched_scale` entries
//! pitting the optimised schedulers against the retained naive references
//! on large graphs) so the perf trajectory is tracked across PRs.
//!
//! ```text
//! cargo run --release -p banger-bench --bin bench_sched
//! ```

use banger_bench as xb;
use banger_sched::reference;
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::generators;
use std::hint::black_box;
use std::time::Instant;

/// Mean wall time of `f` in nanoseconds: one warmup call, then doubling
/// batches until a batch takes >= 200ms (or 1024 iterations).
fn mean_ns<F: FnMut()>(mut f: F) -> f64 {
    f();
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 200 || iters >= 1024 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    }
}

/// Min wall time of `f` in milliseconds over `runs` runs (min, not mean:
/// large single-shot runs want the least-noise sample).
fn min_ms<F: FnMut()>(mut f: F, runs: usize) -> f64 {
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    // Workers are planned honestly: `available_parallelism` capped by the
    // sweep's item count (BANGER_SWEEP_WORKERS still overrides for
    // experiments, but this benchmark no longer forces a fake count). On
    // a single-CPU host the sweep runs sequentially and the record says
    // so instead of claiming a speedup.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // LU at n = 9 (62 tasks) makes each sweep item heavy enough that
    // per-item engine work, not sweep bookkeeping, dominates — fan-out
    // has something to pay for on multi-core hosts.
    let g = generators::lu_hierarchical(9).flatten().unwrap().graph;
    let machines = xb::hypercube_suite();

    // Correctness gate before timing anything.
    let seq_points = xb::speedup_points_sequential(&g, &machines);
    let par_points = xb::speedup_points_parallel(&g, &machines);
    assert_eq!(
        seq_points, par_points,
        "parallel sweep must be bit-identical"
    );

    let seq_ns = mean_ns(|| {
        black_box(xb::speedup_points_sequential(&g, &machines));
    });
    let par_ns = mean_ns(|| {
        black_box(xb::speedup_points_parallel(&g, &machines));
    });
    let (predict_schedules, predict_stats) =
        banger_sched::sweep::sweep_machines_stats("MH", &g, &machines).expect("MH is known");

    let cmp_g = generators::gauss_elimination(10, 2.0, 1.0);
    let cmp_m = xb::bench_machine();
    let names: Vec<&str> = banger_sched::HEURISTIC_NAMES
        .iter()
        .chain(["DSH"].iter())
        .copied()
        .collect();
    let cmp_seq_ns = mean_ns(|| {
        for name in &names {
            black_box(banger_sched::run_heuristic(name, &cmp_g, &cmp_m).unwrap());
        }
    });
    let cmp_par_ns = mean_ns(|| {
        black_box(banger_sched::sweep::sweep_heuristics(
            &names, &cmp_g, &cmp_m,
        ));
    });
    let cmp_workers = banger_sched::sweep::planned_workers(names.len());

    // Engine probe counts for one predict_speedup sweep, summed from the
    // per-run `SchedStats` each schedule carries (the old process-global
    // atomics let concurrent sweeps contaminate each other's counts).
    let (arrival_probes, slot_searches) = predict_schedules
        .iter()
        .map(|s| s.stats())
        .fold((0u64, 0u64), |(a, s), st| {
            (a + st.arrival_probes, s + st.slot_searches)
        });

    let scale = sched_scale_json();

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"predict_speedup_lu9_hypercube_1_64\": {{\n    \
         \"sequential_mean_ns\": {seq_ns:.0},\n    \
         \"parallel_mean_ns\": {par_ns:.0},\n{}  }},\n  \
         \"compare_heuristics_gauss10\": {{\n    \
         \"sequential_mean_ns\": {cmp_seq_ns:.0},\n    \
         \"parallel_mean_ns\": {cmp_par_ns:.0},\n{}  }},\n  \
         \"engine_probes_per_predict_sweep\": {{\n    \
         \"arrival_probes\": {arrival_probes},\n    \
         \"slot_searches\": {slot_searches}\n  }},\n{scale}}}\n",
        speedup_fields(
            predict_stats.planned_workers,
            predict_stats.engaged_workers,
            host_cpus,
            seq_ns / par_ns
        ),
        speedup_fields(cmp_workers, cmp_workers, host_cpus, cmp_seq_ns / cmp_par_ns),
    );
    std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
    print!("{json}");
}

/// The `sched_scale` record: the 100k-task headline (optimised HLFET/MCP
/// wall time and probes versus the retained linear-selection references),
/// plus the ETF/DLS pair-scan cache before/after at a size where the
/// quadratic reference is still affordable.
fn sched_scale_json() -> String {
    let m = xb::bench_machine(); // hypercube-3, Figure 3 params
    let big = generators::layered_random(2026, 200, 500, 3, (1.0, 20.0), (0.5, 10.0));
    assert_eq!(big.task_count(), 100_000);
    let a = GraphAnalysis::analyze(&big);

    let mut entries = String::new();
    for name in ["HLFET", "MCP"] {
        let opt = banger_sched::run_heuristic_with(name, &big, &m, &a).unwrap();
        opt.validate(&big, &m).expect("scale schedule valid");
        let refr = reference::run_reference_with(name, &big, &m, &a).unwrap();
        assert_eq!(opt, refr, "{name} must stay bit-identical at 100k");
        let wall = min_ms(
            || {
                black_box(banger_sched::run_heuristic_with(name, &big, &m, &a).unwrap());
            },
            3,
        );
        let ref_wall = min_ms(
            || {
                black_box(reference::run_reference_with(name, &big, &m, &a).unwrap());
            },
            2,
        );
        entries.push_str(&format!(
            "    \"{name}\": {{\n      \"wall_ms\": {wall:.1},\n      \
             \"reference_wall_ms\": {ref_wall:.1},\n      \
             \"arrival_probes\": {},\n      \"reference_arrival_probes\": {},\n      \
             \"makespan\": {:.1}\n    }},\n",
            opt.stats().arrival_probes,
            refr.stats().arrival_probes,
            opt.makespan(),
        ));
    }

    // ETF/DLS before/after: the pair-scan cache's probe reduction, at a
    // size where the reference's full rescans still terminate promptly.
    let mid = generators::stencil(40, 50, 2.0, 1.0);
    let ma = GraphAnalysis::analyze(&mid);
    let mut pair = String::new();
    for name in ["ETF", "DLS"] {
        let opt = banger_sched::run_heuristic_with(name, &mid, &m, &ma).unwrap();
        let refr = reference::run_reference_with(name, &mid, &m, &ma).unwrap();
        assert_eq!(opt, refr, "{name} must stay bit-identical");
        let wall = min_ms(
            || {
                black_box(banger_sched::run_heuristic_with(name, &mid, &m, &ma).unwrap());
            },
            3,
        );
        let ref_wall = min_ms(
            || {
                black_box(reference::run_reference_with(name, &mid, &m, &ma).unwrap());
            },
            3,
        );
        pair.push_str(&format!(
            "      \"{name}\": {{\n        \"wall_ms\": {wall:.2},\n        \
             \"reference_wall_ms\": {ref_wall:.2},\n        \
             \"arrival_probes\": {},\n        \"reference_arrival_probes\": {},\n        \
             \"slot_searches\": {},\n        \"reference_slot_searches\": {}\n      }},\n",
            opt.stats().arrival_probes,
            refr.stats().arrival_probes,
            opt.stats().slot_searches,
            refr.stats().slot_searches,
        ));
    }
    let pair = pair.trim_end_matches(",\n").to_string();

    format!(
        "  \"sched_scale\": {{\n    \"graph\": \"{}\",\n    \"tasks\": {},\n    \
         \"edges\": {},\n    \"machine\": \"{}\",\n{entries}    \
         \"pair_scan_cache_stencil_40x50\": {{\n{pair}\n    }}\n  }}\n",
        big.name(),
        big.task_count(),
        big.edge_count(),
        m.topology().name(),
    )
}

/// JSON fragment for one experiment's parallelism claim. With more than
/// one worker the measured speedup stands on its own (a ~1.0x on a host
/// with fewer CPUs than workers is the honest reading, not a bug); with
/// one planned worker the "parallel" path was the sequential loop, so
/// the speedup is null and a note records that no parallelism claim is
/// being made.
fn speedup_fields(planned: usize, engaged: usize, host_cpus: usize, speedup: f64) -> String {
    let counts =
        format!("    \"planned_workers\": {planned},\n    \"engaged_workers\": {engaged},\n");
    if planned > 1 && planned > host_cpus {
        format!(
            "{counts}    \"speedup\": {speedup:.2},\n    \
             \"note\": \"more sweep workers than host CPUs: threads time-share one core, so ~1.0x or below is expected here\"\n",
        )
    } else if planned > 1 {
        format!("{counts}    \"speedup\": {speedup:.2}\n")
    } else {
        format!(
            "{counts}    \"speedup\": null,\n    \
             \"note\": \"host_cpus: {host_cpus} — one planned worker, sweep ran as the sequential loop; no parallel speedup to claim\"\n",
        )
    }
}
