//! `bench_exec` — measures executor data movement and writes
//! `BENCH_exec.json`: the pre-zero-copy gather/publish baseline (string
//! matched, deep copy per consumer edge; see `banger_bench::dataflow`)
//! versus the dense-routed Arc-backed executor, on a wide fan-out with
//! large arrays, a deep array pipeline, and the paper's LU design end
//! to end. Both sides run the same compiled VM single-threaded, so the
//! ratio isolates data movement.
//!
//! ```text
//! cargo run --release -p banger-bench --bin bench_exec [-- --quick]
//! ```
//!
//! `--quick` shrinks the arrays and the measurement budget for CI smoke
//! runs (a clone regression still shows; the numbers are just noisier).

use banger_bench::dataflow;
use banger_calc::InterpConfig;
use banger_exec::{execute, ExecMode, ExecOptions};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Mean wall time of `f` in nanoseconds: one warmup call, then doubling
/// batches until a batch takes >= `budget_ms` (or 65536 iterations).
fn mean_ns<F: FnMut()>(budget_ms: u128, mut f: F) -> f64 {
    f();
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= budget_ms || iters >= 65_536 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (budget_ms, arr, fan_readers, pipe_stages, lu_n) = if quick {
        (20, 4_096, 8, 8, 5)
    } else {
        (200, 65_536, 16, 24, 9)
    };

    let workloads = [
        dataflow::fanout(arr, fan_readers),
        dataflow::pipeline(arr, pipe_stages),
        dataflow::lu(lu_n),
    ];
    let labels = [
        format!("fanout_{arr}x{fan_readers}"),
        format!("pipeline_{arr}x{pipe_stages}"),
        format!("lu_n{lu_n}"),
    ];

    let cfg = InterpConfig::default();
    let one_worker = ExecOptions {
        mode: ExecMode::Greedy { workers: 1 },
        ..ExecOptions::default()
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    for (i, (w, label)) in workloads.iter().zip(&labels).enumerate() {
        // Correctness gate before timing: the replica and the executor
        // must agree on the design's outputs.
        let old_out = dataflow::run_oldstyle(w, cfg);
        let new_out = execute(&w.design, &w.lib, &w.external, &one_worker).unwrap();
        assert_eq!(
            format!("{old_out:?}"),
            format!("{:?}", new_out.outputs),
            "{label}: old-style replica and executor must agree"
        );

        let old_ns = mean_ns(budget_ms, || {
            black_box(dataflow::run_oldstyle(black_box(w), cfg));
        });
        let new_ns = mean_ns(budget_ms, || {
            black_box(execute(&w.design, &w.lib, &w.external, &one_worker).unwrap());
        });

        // One traced run on the worker pool: the aggregate counters go
        // into the report so trace-level regressions (copy storms, queue
        // backup) show up in the benchmark record, not just in timings.
        let traced = ExecOptions {
            mode: ExecMode::Greedy { workers: 4 },
            trace: true,
            ..ExecOptions::default()
        };
        let report = execute(&w.design, &w.lib, &w.external, &traced).unwrap();
        let s = report.trace.as_ref().expect("traced run").summary();

        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "  \"{label}\": {{\n    \
             \"tasks\": {},\n    \
             \"oldstyle_gather_mean_ns\": {old_ns:.0},\n    \
             \"zero_copy_exec_mean_ns\": {new_ns:.0},\n    \
             \"speedup\": {:.2},\n    \
             \"trace\": {{\n      \
             \"workers\": {},\n      \
             \"tasks_per_sec\": {:.0},\n      \
             \"utilization\": {:.3},\n      \
             \"queue_wait_ns\": {},\n      \
             \"cow_copies\": {},\n      \
             \"cow_bytes\": {},\n      \
             \"input_bytes\": {}\n    }}\n  }}",
            w.design.graph.task_count(),
            old_ns / new_ns,
            s.workers,
            s.tasks_per_sec(),
            s.utilization(),
            s.queue_wait.as_nanos(),
            s.cow_copies,
            s.cow_bytes,
            s.bytes_in,
        );
    }
    json.push_str("\n}\n");
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    print!("{json}");
}
