//! `bench_exec` — measures executor data movement and per-firing
//! overhead, writing `BENCH_exec.json`: the pre-zero-copy gather/publish
//! baseline (string matched, two deep copies per input; see
//! `banger_bench::dataflow`) versus the dense-routed Arc-backed executor
//! — both cold (`execute`, which builds routing tables and a store per
//! call) and warm (a persistent [`Session`] firing, where workers,
//! routes, and the slab store are reused). A `repeat` workload times the
//! same firing cold versus warm on a multi-worker pool, isolating what
//! [`Session`] amortises.
//!
//! ```text
//! cargo run --release -p banger-bench --bin bench_exec [-- --quick]
//! ```
//!
//! `--quick` shrinks the arrays and the measurement budget for CI smoke
//! runs (a clone regression still shows; the numbers are just noisier).
//!
//! Timings are the **minimum of batch means**: the host this record is
//! produced on is small and noisy, and the minimum estimates the
//! uncontended cost far more stably than a grand mean.

use banger_bench::dataflow;
use banger_calc::InterpConfig;
use banger_exec::{execute, ExecMode, ExecOptions, Session};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Minimum batch-mean wall time of `f` in nanoseconds: calibrates a
/// ~5 ms batch, then takes the best batch mean within `budget_ms`
/// (at least 3 batches).
fn best_ns<F: FnMut()>(budget_ms: u128, mut f: F) -> f64 {
    f(); // warmup
    let t0 = Instant::now();
    f();
    let per = t0.elapsed().as_nanos().max(1);
    let batch = ((5_000_000 / per).max(1) as u64).min(16_384);
    let started = Instant::now();
    let mut best = f64::INFINITY;
    let mut batches = 0u32;
    while batches < 3 || (started.elapsed().as_millis() < budget_ms && batches < 1_000) {
        let s = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(s.elapsed().as_nanos() as f64 / batch as f64);
        batches += 1;
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (budget_ms, arr, fan_readers, pipe_stages, lu_n) = if quick {
        (20, 4_096, 8, 8, 5)
    } else {
        (150, 65_536, 16, 24, 9)
    };

    let workloads = [
        dataflow::fanout(arr, fan_readers),
        dataflow::pipeline(arr, pipe_stages),
        dataflow::lu(lu_n),
    ];
    let labels = [
        format!("fanout_{arr}x{fan_readers}"),
        format!("pipeline_{arr}x{pipe_stages}"),
        format!("lu_n{lu_n}"),
    ];

    let cfg = InterpConfig::default();
    let one_worker = ExecOptions {
        mode: ExecMode::Greedy { workers: 1 },
        ..ExecOptions::default()
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    for (w, label) in workloads.iter().zip(&labels) {
        // Correctness gate before timing: the replica and the executor
        // must agree on the design's outputs.
        let old_out = dataflow::run_oldstyle(w, cfg);
        let new_out = execute(&w.design, &w.lib, &w.external, &one_worker).unwrap();
        assert_eq!(
            format!("{old_out:?}"),
            format!("{:?}", new_out.outputs),
            "{label}: old-style replica and executor must agree"
        );

        let old_ns = best_ns(budget_ms, || {
            black_box(dataflow::run_oldstyle(black_box(w), cfg));
        });
        let cold_ns = best_ns(budget_ms, || {
            black_box(execute(&w.design, &w.lib, &w.external, &one_worker).unwrap());
        });
        let mut session = Session::new(&w.design, &w.lib, &one_worker).unwrap();
        let warm_ns = best_ns(budget_ms, || {
            black_box(session.run(&w.external).unwrap());
        });
        drop(session);

        // One traced warm firing on the worker pool: the aggregate
        // counters go into the report so trace-level regressions (copy
        // storms, queue backup, steal storms) show up in the benchmark
        // record, not just in timings.
        let traced = ExecOptions {
            mode: ExecMode::Greedy { workers: 4 },
            trace: true,
            ..ExecOptions::default()
        };
        // A single firing's wall clock is at the mercy of the host
        // scheduler; trace several and keep the steadiest (minimum-wall)
        // one as the representative steady-state record.
        let mut traced_session = Session::new(&w.design, &w.lib, &traced).unwrap();
        traced_session.run(&w.external).unwrap(); // warm the pool
        let report = (0..10)
            .map(|_| traced_session.run(&w.external).unwrap())
            .min_by_key(|r| r.wall)
            .unwrap();
        let s = report.trace.as_ref().expect("traced run").summary();

        let _ = write!(
            json,
            "  \"{label}\": {{\n    \
             \"tasks\": {},\n    \
             \"oldstyle_gather_best_ns\": {old_ns:.0},\n    \
             \"cold_exec_best_ns\": {cold_ns:.0},\n    \
             \"warm_session_best_ns\": {warm_ns:.0},\n    \
             \"speedup\": {:.2},\n    \
             \"cold_speedup\": {:.2},\n    \
             \"trace\": {{\n      \
             \"workers\": {},\n      \
             \"tasks_per_sec\": {:.0},\n      \
             \"utilization\": {:.3},\n      \
             \"queue_wait_ns\": {},\n      \
             \"steals\": {},\n      \
             \"inline_tasks\": {},\n      \
             \"cow_copies\": {},\n      \
             \"cow_bytes\": {},\n      \
             \"input_bytes\": {}\n    }}\n  }},\n",
            w.design.graph.task_count(),
            old_ns / warm_ns,
            old_ns / cold_ns,
            s.workers,
            s.tasks_per_sec(),
            s.utilization(),
            s.queue_wait.as_nanos(),
            s.steals,
            s.inline_tasks,
            s.cow_copies,
            s.cow_bytes,
            s.bytes_in,
        );
    }

    // Fused LU: the same LU design after the graph-rewrite optimizer
    // (dead-arc elimination + task fusion). The baseline column is the
    // *unfused* old-style replica, the same yardstick as the `lu_n*`
    // row, so the two rows compare directly: the gap between their
    // speedups is what fusion reclaims in per-task dispatch overhead.
    {
        let unfused = dataflow::lu(lu_n);
        let fused = dataflow::lu_fused(lu_n);
        let base = execute(
            &unfused.design,
            &unfused.lib,
            &unfused.external,
            &one_worker,
        )
        .unwrap();
        let got = execute(&fused.design, &fused.lib, &fused.external, &one_worker).unwrap();
        assert_eq!(
            format!("{:?}", base.outputs),
            format!("{:?}", got.outputs),
            "fused LU outputs must be byte-identical to the original"
        );
        assert_eq!(
            base.total_ops(),
            got.total_ops(),
            "fusion must preserve the total operation count"
        );

        let old_ns = best_ns(budget_ms, || {
            black_box(dataflow::run_oldstyle(black_box(&unfused), cfg));
        });
        let cold_ns = best_ns(budget_ms, || {
            black_box(execute(&fused.design, &fused.lib, &fused.external, &one_worker).unwrap());
        });
        let mut session = Session::new(&fused.design, &fused.lib, &one_worker).unwrap();
        let warm_ns = best_ns(budget_ms, || {
            black_box(session.run(&fused.external).unwrap());
        });
        let _ = write!(
            json,
            "  \"lu_n{lu_n}_fused\": {{\n    \
             \"tasks_before\": {},\n    \
             \"tasks\": {},\n    \
             \"total_ops\": {},\n    \
             \"oldstyle_unfused_best_ns\": {old_ns:.0},\n    \
             \"cold_exec_best_ns\": {cold_ns:.0},\n    \
             \"warm_session_best_ns\": {warm_ns:.0},\n    \
             \"speedup\": {:.2},\n    \
             \"cold_speedup\": {:.2}\n  }},\n",
            unfused.design.graph.task_count(),
            fused.design.graph.task_count(),
            got.total_ops(),
            old_ns / warm_ns,
            old_ns / cold_ns,
        );
    }

    // Map-expanded tiled LU: one dense template node expanded to
    // thousands of tasks, then driven schedule -> pinned traced
    // execution end to end. The correctness gate demands bit-identical
    // factors against the single-task dense template.
    {
        use banger_machine::{Machine, MachineParams, Topology};
        let (tn, tiles) = if quick { (64, 4) } else { (256, 16) };
        let w = dataflow::tiled_lu(tn, tiles);
        // The dense template is one task doing ~2/3 n^3 operations; give
        // the interpreter headroom beyond its default step budget.
        let big_steps = ExecOptions {
            mode: ExecMode::Greedy { workers: 1 },
            interp: InterpConfig {
                max_steps: 500_000_000,
                ..InterpConfig::default()
            },
            ..ExecOptions::default()
        };
        let dense = dataflow::dense_lu(tn);
        let want = execute(&dense.design, &dense.lib, &dense.external, &big_steps).unwrap();
        let got = execute(&w.design, &w.lib, &w.external, &one_worker).unwrap();
        assert_eq!(
            format!("{:?}", want.outputs),
            format!("{:?}", got.outputs),
            "tiled LU factor must be bit-identical to the dense template"
        );

        let machine = Machine::new(Topology::hypercube(2), MachineParams::default());
        let schedule = banger_sched::run_heuristic("ETF", &w.design.graph, &machine)
            .expect("ETF heuristic exists");
        let pinned = ExecOptions {
            mode: ExecMode::pinned(schedule.clone()),
            trace: true,
            ..ExecOptions::default()
        };
        let report = execute(&w.design, &w.lib, &w.external, &pinned).unwrap();
        let s = report.trace.as_ref().expect("traced run").summary();

        let mut session = Session::new(&w.design, &w.lib, &one_worker).unwrap();
        let warm_ns = best_ns(budget_ms, || {
            black_box(session.run(&w.external).unwrap());
        });
        let _ = write!(
            json,
            "  \"tiled_lu_n{tn}\": {{\n    \
             \"tiles\": {tiles},\n    \
             \"tasks\": {},\n    \
             \"arcs\": {},\n    \
             \"total_ops\": {},\n    \
             \"etf_makespan\": {:.0},\n    \
             \"pinned_traced_wall_ns\": {},\n    \
             \"warm_session_best_ns\": {warm_ns:.0},\n    \
             \"trace\": {{\n      \
             \"workers\": {},\n      \
             \"tasks_per_sec\": {:.0},\n      \
             \"utilization\": {:.3},\n      \
             \"cow_copies\": {},\n      \
             \"cow_bytes\": {}\n    }}\n  }},\n",
            w.design.graph.task_count(),
            w.design.graph.edge_count(),
            report.total_ops(),
            schedule.makespan(),
            report.wall.as_nanos(),
            s.workers,
            s.tasks_per_sec(),
            s.utilization(),
            s.cow_copies,
            s.cow_bytes,
        );
    }

    // Repeated-firing workload: the same small-grain design fired
    // thousands of times. Cold pays routing-table build, store
    // allocation, and worker spawn on every call; a warm `Session`
    // keeps all three across firings.
    {
        let (len, readers) = if quick { (32, 4) } else { (64, 8) };
        let w = dataflow::fanout(len, readers);
        let pool = ExecOptions {
            mode: ExecMode::Greedy { workers: 4 },
            ..ExecOptions::default()
        };
        let cold_ns = best_ns(budget_ms, || {
            black_box(execute(&w.design, &w.lib, &w.external, &pool).unwrap());
        });
        let mut session = Session::new(&w.design, &w.lib, &pool).unwrap();
        let warm_ns = best_ns(budget_ms, || {
            black_box(session.run(&w.external).unwrap());
        });
        let _ = write!(
            json,
            "  \"repeat_fanout_{len}x{readers}\": {{\n    \
             \"workers\": 4,\n    \
             \"cold_exec_best_ns\": {cold_ns:.0},\n    \
             \"warm_session_best_ns\": {warm_ns:.0},\n    \
             \"warm_speedup\": {:.2}\n  }}\n",
            cold_ns / warm_ns,
        );
    }
    json.push_str("}\n");
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    print!("{json}");
}
