//! `repro` — regenerates every figure and experiment of the paper.
//!
//! ```text
//! cargo run -p banger-bench --bin repro            # everything
//! cargo run -p banger-bench --bin repro -- fig3    # one artifact
//! ```
//!
//! Artifacts: `fig1 fig2 fig3 fig4 sched-compare predicted-vs-achieved
//! speedup ablations codegen animate lu-e2e`.

use banger::figures;
use banger_bench as xb;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");
    let mut ran = false;

    let mut section = |name: &str, body: &dyn Fn() -> String| {
        if want(name) {
            ran = true;
            println!(
                "=== {name} {}",
                "=".repeat(60usize.saturating_sub(name.len()))
            );
            println!("{}", body());
        }
    };

    section("fig1", &figures::figure1);
    section("fig2", &figures::figure2);
    section("fig3", &figures::figure3);
    section("fig4", &figures::figure4);
    section("sched-compare", &xb::sched_compare_table);
    section("predicted-vs-achieved", &xb::predicted_vs_achieved_table);
    section("speedup", &xb::speedup_sweep);
    section("ablations", &|| {
        format!(
            "{}\n{}\n{}",
            xb::ablation_comm(),
            xb::ablation_duplication(),
            xb::ablation_grain()
        )
    });
    section("codegen", &xb::codegen_report);
    section("animate", &|| {
        let g = banger_taskgraph::generators::gauss_elimination(6, 3.0, 2.0);
        let m = banger_machine::Machine::new(
            banger_machine::Topology::hypercube(2),
            xb::suite_params(),
        );
        let s = banger_sched::mh::mh(&g, &m);
        let r =
            banger_sim::simulate(&g, &m, &s, banger_sim::SimOptions::default()).expect("simulates");
        banger::animate::animate(
            &g,
            m.processors(),
            &r,
            banger::animate::AnimateOptions::default(),
        )
    });
    section("lu-e2e", &|| {
        (2..=6)
            .map(figures::lu_end_to_end)
            .collect::<Vec<_>>()
            .join("\n")
    });

    if !ran {
        eprintln!(
            "unknown artifact {:?}; known: fig1 fig2 fig3 fig4 sched-compare \
             predicted-vs-achieved speedup ablations codegen animate lu-e2e all",
            args
        );
        std::process::exit(2);
    }
}
