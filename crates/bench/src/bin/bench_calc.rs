//! `bench_calc` — measures the PITS execution engines and writes
//! `BENCH_calc.json`: tree-walking interpreter vs compiled register VM
//! on the Figure 4 SquareRoot kernel and the LU pivot-column kernel,
//! so the language-layer perf trajectory is tracked across PRs.
//!
//! ```text
//! cargo run --release -p banger-bench --bin bench_calc
//! ```

use banger_calc::{compile, interp, vm, InterpConfig, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Mean wall time of `f` in nanoseconds: one warmup call, then doubling
/// batches until a batch takes >= 200ms (or 65536 iterations).
fn mean_ns<F: FnMut()>(mut f: F) -> f64 {
    f();
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 200 || iters >= 65_536 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    }
}

/// A numeric-integration task body: the loop-dominated shape (many
/// iterations, scalar math) whose per-iteration dispatch cost is what
/// the VM exists to crush. Same source as the `interp_pi` Criterion
/// group.
const PI_SRC: &str = "\
task Pi
  in n
  out p
  local i, x, h
begin
  h := 1 / n
  p := 0
  for i := 1 to n do
    x := (i - 0.5) * h
    p := p + 4 / (1 + x * x)
  end
  p := p * h
end";

fn main() {
    let sqrt_prog = banger_calc::parser::parse_program(banger::figures::SQUARE_ROOT_SRC).unwrap();
    let sqrt_inputs: BTreeMap<String, Value> =
        [("a".to_string(), Value::Num(2.0))].into_iter().collect();

    let pi_prog = banger_calc::parser::parse_program(PI_SRC).unwrap();
    let pi_inputs: BTreeMap<String, Value> = [("n".to_string(), Value::Num(1_000.0))]
        .into_iter()
        .collect();

    let lib = banger::lu::lu_program_library(9);
    let fan1 = lib.get("fan1").unwrap().clone();
    let (a, _b) = banger::lu::test_system(9);
    let fan1_inputs: BTreeMap<String, Value> =
        [("A".to_string(), Value::array(a))].into_iter().collect();

    let cfg = InterpConfig::default();
    let mut json = String::from("{\n");
    for (i, (name, prog, inputs)) in [
        ("pi_n1000", &pi_prog, &pi_inputs),
        ("sqrt_fig4", &sqrt_prog, &sqrt_inputs),
        ("lu_fan1_n9", &fan1, &fan1_inputs),
    ]
    .into_iter()
    .enumerate()
    {
        let compiled = compile(prog);

        // Correctness gate before timing anything: identical outcome,
        // ops byte-for-byte equal (ops is the scheduler's task weight).
        let tree = interp::run(prog, inputs).unwrap();
        let fast = vm::run_compiled(&compiled, inputs, cfg).unwrap();
        assert_eq!(
            format!("{tree:?}"),
            format!("{fast:?}"),
            "{name}: engines must be observationally identical"
        );

        let tree_ns = mean_ns(|| {
            black_box(interp::run(prog, inputs).unwrap());
        });
        let mut machine = vm::Vm::new();
        let vm_ns = mean_ns(|| {
            black_box(machine.run(&compiled, inputs, cfg).unwrap());
        });
        let compile_and_run_ns = mean_ns(|| {
            black_box(vm::compile_and_run(prog, inputs, cfg).unwrap());
        });

        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "  \"{name}\": {{\n    \
             \"ops\": {},\n    \
             \"tree_walk_mean_ns\": {tree_ns:.0},\n    \
             \"vm_mean_ns\": {vm_ns:.0},\n    \
             \"compile_and_run_mean_ns\": {compile_and_run_ns:.0},\n    \
             \"vm_speedup\": {:.2}\n  }}",
            tree.ops,
            tree_ns / vm_ns,
        );
    }
    json.push_str("\n}\n");
    std::fs::write("BENCH_calc.json", &json).expect("write BENCH_calc.json");
    print!("{json}");
}
