//! The analysis passes: storage races, PITL/PITS interface cross-checks
//! and graph hygiene.

use crate::access::{flat_view, FlatView};
use crate::diag::{sort_diagnostics, Code, Diagnostic, Location};
use banger_calc::ast::{Expr, Stmt};
use banger_calc::{Program, ProgramLibrary};
use banger_taskgraph::HierGraph;
use std::collections::BTreeSet;

/// Runs every pass over `design` (checked against `library`) and returns
/// the findings in stable presentation order.
pub fn diagnose(design: &HierGraph, library: &ProgramLibrary) -> Vec<Diagnostic> {
    let view = flat_view(design);
    let mut diags = view.diags.clone();
    races(&view, &mut diags);
    interfaces(&view, library, &mut diags);
    crate::absint::body_safety(&view, library, &mut diags);
    hygiene(design, &view, &mut diags);
    sort_diagnostics(&mut diags);
    diags
}

/// All tasks reachable from each task, as one boolean matrix row per task.
/// DFS per node: correct on cyclic graphs too.
fn reachability(adj: &[Vec<usize>]) -> Vec<Vec<bool>> {
    let n = adj.len();
    let mut reach = vec![vec![false; n]; n];
    let mut stack = Vec::new();
    for (start, row) in reach.iter_mut().enumerate() {
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !row[w] {
                    row[w] = true;
                    stack.push(w);
                }
            }
        }
    }
    reach
}

/// B001 (write/write race) and B002 (racy read).
fn races(view: &FlatView, diags: &mut Vec<Diagnostic>) {
    let full = reachability(&view.adjacency(None));
    let ordered = |r: &[Vec<bool>], a: usize, b: usize| r[a][b] || r[b][a];

    for (si, sc) in view.storages.iter().enumerate() {
        if sc.writers.len() < 2 {
            continue;
        }
        // Write/write: two writers with no precedence path either way.
        for (i, &w1) in sc.writers.iter().enumerate() {
            for &w2 in &sc.writers[i + 1..] {
                if !ordered(&full, w1, w2) {
                    diags.push(
                        Diagnostic::error(
                            Code::B001,
                            Location::nodes(vec![
                                view.tasks[w1].name.clone(),
                                view.tasks[w2].name.clone(),
                            ]),
                            format!(
                                "tasks `{}` and `{}` both write storage `{}` with no \
                                 ordering between them",
                                view.tasks[w1].name, view.tasks[w2].name, sc.base,
                            ),
                        )
                        .with_help(
                            "add an arc (directly or through another task) so one writer \
                             always runs before the other, or split the storage item",
                        ),
                    );
                }
            }
        }
        // Racy read: with this storage's own dataflow edges set aside, is
        // every read still ordered against every write by the rest of the
        // graph? A single-writer storage is an ordinary dataflow token, so
        // this only applies to multi-writer items.
        let rest = reachability(&view.adjacency(Some(si)));
        for &r in &sc.readers {
            for &w in &sc.writers {
                if r != w && !ordered(&rest, r, w) {
                    diags.push(
                        Diagnostic::warning(
                            Code::B002,
                            Location::nodes(vec![
                                view.tasks[r].name.clone(),
                                view.tasks[w].name.clone(),
                            ]),
                            format!(
                                "task `{}` reads multi-writer storage `{}` but nothing \
                                 outside the storage itself orders it against writer `{}`",
                                view.tasks[r].name, sc.base, view.tasks[w].name,
                            ),
                        )
                        .with_help(
                            "the value observed depends on scheduling; order the read \
                             against every writer explicitly",
                        ),
                    );
                }
            }
        }
    }
}

/// Variables assigned anywhere in a statement list (assignment targets,
/// indexed targets and `for` loop variables).
fn assigned_vars(body: &[Stmt], out: &mut BTreeSet<String>) {
    for s in body {
        match s {
            Stmt::Assign { var, .. } | Stmt::AssignIndex { var, .. } => {
                out.insert(var.clone());
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assigned_vars(then_body, out);
                assigned_vars(else_body, out);
            }
            Stmt::While { body, .. } => assigned_vars(body, out),
            Stmt::For { var, body, .. } => {
                out.insert(var.clone());
                assigned_vars(body, out);
            }
            Stmt::Print { .. } => {}
        }
    }
}

fn expr_vars(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Num(_) => {}
        Expr::Var(v) => {
            out.insert(v.clone());
        }
        Expr::Index(v, idx) => {
            out.insert(v.clone());
            expr_vars(idx, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_vars(a, out);
            }
        }
        Expr::Bin(_, a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
        Expr::Un(_, a) => expr_vars(a, out),
    }
}

/// Variables read anywhere in a statement list.
fn read_vars(body: &[Stmt], out: &mut BTreeSet<String>) {
    for s in body {
        match s {
            Stmt::Assign { expr, .. } => expr_vars(expr, out),
            Stmt::AssignIndex {
                var, index, expr, ..
            } => {
                // An indexed store updates one element: the rest of the
                // array flows through, so this counts as a read too.
                out.insert(var.clone());
                expr_vars(index, out);
                expr_vars(expr, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                expr_vars(cond, out);
                read_vars(then_body, out);
                read_vars(else_body, out);
            }
            Stmt::While { cond, body, .. } => {
                expr_vars(cond, out);
                read_vars(body, out);
            }
            Stmt::For { from, to, body, .. } => {
                expr_vars(from, out);
                expr_vars(to, out);
                read_vars(body, out);
            }
            Stmt::Print { expr: e, .. } => expr_vars(e, out),
        }
    }
}

/// First source position of an assignment to `var`, for B015 spans.
fn first_assign_pos(body: &[Stmt], var: &str) -> Option<banger_calc::Pos> {
    for s in body {
        match s {
            Stmt::Assign { var: v, pos, .. } | Stmt::AssignIndex { var: v, pos, .. }
                if v == var =>
            {
                return Some(*pos);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                if let Some(p) =
                    first_assign_pos(then_body, var).or_else(|| first_assign_pos(else_body, var))
                {
                    return Some(p);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                if let Some(p) = first_assign_pos(body, var) {
                    return Some(p);
                }
            }
            _ => {}
        }
    }
    None
}

/// Per-program checks that do not depend on the design (B013/B014/B015).
fn program_body_checks(prog: &Program, diags: &mut Vec<Diagnostic>) {
    let mut assigned = BTreeSet::new();
    assigned_vars(&prog.body, &mut assigned);
    let mut read = BTreeSet::new();
    read_vars(&prog.body, &mut read);

    for out in &prog.outputs {
        if !assigned.contains(out) {
            diags.push(
                Diagnostic::error(
                    Code::B013,
                    Location::program(prog.name.clone(), prog.decl_pos.get(out).copied()),
                    format!(
                        "program `{}` declares `out {out}` but never assigns it",
                        prog.name,
                    ),
                )
                .with_help("assign the variable in the body, or drop the declaration"),
            );
        }
    }
    for inp in &prog.inputs {
        if !read.contains(inp) {
            diags.push(
                Diagnostic::warning(
                    Code::B014,
                    Location::program(prog.name.clone(), prog.decl_pos.get(inp).copied()),
                    format!(
                        "program `{}` declares `in {inp}` but never reads it",
                        prog.name,
                    ),
                )
                .with_help("drop the declaration (and the arc feeding it) if it is unused"),
            );
        }
    }
    for var in &assigned {
        if !prog.declares(var) {
            diags.push(
                Diagnostic::warning(
                    Code::B015,
                    Location::program(prog.name.clone(), first_assign_pos(&prog.body, var)),
                    format!(
                        "program `{}` assigns `{var}` without declaring it (implicit local)",
                        prog.name,
                    ),
                )
                .with_help(format!("declare it: `local {var}`")),
            );
        }
    }
}

/// B010/B011/B012/B016 plus the per-program body checks, across every
/// task in the flattened view.
fn interfaces(view: &FlatView, library: &ProgramLibrary, diags: &mut Vec<Diagnostic>) {
    let n = view.task_count();
    // Labels arriving at / leaving each task: direct edge labels plus the
    // base names of storage classes the task reads/writes.
    let mut incoming: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut outgoing: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for (s, d, label) in &view.edges {
        outgoing[*s].insert(label.clone());
        incoming[*d].insert(label.clone());
    }
    for sc in &view.storages {
        for &w in &sc.writers {
            outgoing[w].insert(sc.base.clone());
        }
        for &r in &sc.readers {
            incoming[r].insert(sc.base.clone());
        }
    }

    // Body checks once per distinct program actually used by the design.
    let mut checked = BTreeSet::new();

    for (t, task) in view.tasks.iter().enumerate() {
        let Some(pname) = &task.program else { continue };
        let Some(prog) = library.get(pname) else {
            diags.push(
                Diagnostic::error(
                    Code::B010,
                    Location {
                        nodes: vec![task.name.clone()],
                        program: Some(pname.clone()),
                        ..Default::default()
                    },
                    format!(
                        "task `{}` names program `{pname}`, which is not in the library",
                        task.name,
                    ),
                )
                .with_help("add the program to the library or fix the task's program name"),
            );
            continue;
        };
        if checked.insert(pname.clone()) {
            program_body_checks(prog, diags);
        }
        for label in &incoming[t] {
            if !prog.inputs.iter().any(|v| v == label) {
                diags.push(
                    Diagnostic::warning(
                        Code::B011,
                        Location {
                            nodes: vec![task.name.clone()],
                            program: Some(pname.clone()),
                            span: prog.decl_pos.get(label).copied(),
                            ..Default::default()
                        },
                        format!(
                            "task `{}` receives `{label}` but program `{pname}` does not \
                             declare it `in`; the value is ignored",
                            task.name,
                        ),
                    )
                    .with_help(format!("declare `in {label}` or remove the arc")),
                );
            }
        }
        for label in &outgoing[t] {
            if !prog.outputs.iter().any(|v| v == label) {
                diags.push(
                    Diagnostic::error(
                        Code::B012,
                        Location {
                            nodes: vec![task.name.clone()],
                            program: Some(pname.clone()),
                            span: prog.decl_pos.get(label).copied(),
                            ..Default::default()
                        },
                        format!(
                            "task `{}` must emit `{label}` but program `{pname}` does not \
                             declare it `out`; execution would fail with a missing arc value",
                            task.name,
                        ),
                    )
                    .with_help(format!("declare `out {label}` and assign it in the body")),
                );
            }
        }
        // Entry tasks read everything from the external input map; only
        // flag unsupplied inputs on tasks that already receive arcs.
        if !incoming[t].is_empty() {
            for inp in &prog.inputs {
                if !incoming[t].contains(inp) {
                    diags.push(
                        Diagnostic::warning(
                            Code::B016,
                            Location {
                                nodes: vec![task.name.clone()],
                                program: Some(pname.clone()),
                                span: prog.decl_pos.get(inp).copied(),
                                ..Default::default()
                            },
                            format!(
                                "no arc supplies `in {inp}` of task `{}`; the value will \
                                 be read from the external inputs at run time",
                                task.name,
                            ),
                        )
                        .with_help(format!(
                            "wire an arc labelled `{inp}` into the task, or supply it with \
                             `-i {inp}=...` when running",
                        )),
                    );
                }
            }
        }
    }
}

/// B030 cycle (named path), B031 isolated tasks, B032 bad weights/sizes,
/// B033 dead storage.
fn hygiene(design: &HierGraph, view: &FlatView, diags: &mut Vec<Diagnostic>) {
    weights_walk(design, "", diags);

    // Connectivity counts storage traffic too.
    let mut touched = vec![false; view.task_count()];
    for (s, d, _) in &view.edges {
        touched[*s] = true;
        touched[*d] = true;
    }
    for sc in &view.storages {
        for &t in sc.writers.iter().chain(&sc.readers) {
            touched[t] = true;
        }
    }
    if view.task_count() > 1 {
        for (t, task) in view.tasks.iter().enumerate() {
            if !touched[t] {
                diags.push(
                    Diagnostic::warning(
                        Code::B031,
                        Location::node(task.name.clone()),
                        format!(
                            "task `{}` is connected to nothing (no arcs in or out)",
                            task.name,
                        ),
                    )
                    .with_help("wire it into the design or delete it"),
                );
            }
        }
    }

    for sc in &view.storages {
        if sc.writers.is_empty() && sc.readers.is_empty() {
            diags.push(
                Diagnostic::warning(
                    Code::B033,
                    Location::node(sc.names.first().cloned().unwrap_or_else(|| sc.base.clone())),
                    format!("storage `{}` has no arcs; it holds nothing", sc.base),
                )
                .with_help("wire it into the design or delete it"),
            );
        }
    }

    if let Some(path) = find_cycle(&view.adjacency(None)) {
        let names: Vec<&str> = path.iter().map(|&t| view.tasks[t].name.as_str()).collect();
        diags.push(
            Diagnostic::error(
                Code::B030,
                Location::nodes(names.iter().map(|s| s.to_string()).collect()),
                format!("the design contains a cycle: {}", names.join(" -> "),),
            )
            .with_help("dataflow designs must be acyclic; break the loop or fold it into one task"),
        );
    }
}

/// Recursive weight/size validation with qualified names (B032).
fn weights_walk(g: &HierGraph, prefix: &str, diags: &mut Vec<Diagnostic>) {
    use banger_taskgraph::NodeKind;
    for (_, node) in g.nodes() {
        let name = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix}.{}", node.name)
        };
        match &node.kind {
            NodeKind::Task { weight, .. } => {
                if !weight.is_finite() || *weight < 0.0 {
                    diags.push(Diagnostic::error(
                        Code::B032,
                        Location::node(name),
                        format!("task weight {weight} is negative or non-finite"),
                    ));
                } else if *weight == 0.0 {
                    diags.push(
                        Diagnostic::warning(
                            Code::B032,
                            Location::node(name),
                            "task weight is zero; the scheduler treats it as free".to_string(),
                        )
                        .with_help(
                            "give the task a positive weight, take the static estimate from \
                             `banger check --weights`, or calibrate from a trial run",
                        ),
                    );
                }
            }
            NodeKind::Storage { size } => {
                if !size.is_finite() || *size < 0.0 {
                    diags.push(Diagnostic::error(
                        Code::B032,
                        Location::node(name),
                        format!("storage size {size} is negative or non-finite"),
                    ));
                }
            }
            NodeKind::Compound { expansion, .. } => {
                weights_walk(expansion, &name, diags);
            }
        }
    }
}

/// Finds one cycle and returns it as a task-index path `a -> ... -> a`.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    // Colors: 0 = unvisited, 1 = on stack, 2 = done.
    let n = adj.len();
    let mut color = vec![0u8; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Iterative DFS keeping an explicit edge iterator per frame.
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < adj[v].len() {
                let w = adj[v][*i];
                *i += 1;
                match color[w] {
                    0 => {
                        color[w] = 1;
                        parent[w] = v;
                        stack.push((w, 0));
                    }
                    1 => {
                        // Found a back edge v -> w: reconstruct w .. v, w.
                        let mut path = vec![w];
                        let mut cur = v;
                        let mut rev = Vec::new();
                        while cur != w {
                            rev.push(cur);
                            cur = parent[cur];
                        }
                        rev.reverse();
                        path.extend(rev);
                        path.push(w);
                        return Some(path);
                    }
                    _ => {}
                }
            } else {
                color[v] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn lib_of(srcs: &[&str]) -> ProgramLibrary {
        let mut lib = ProgramLibrary::new();
        for s in srcs {
            lib.add_source(s).unwrap();
        }
        lib
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn write_write_race_is_b001() {
        let mut g = HierGraph::new("race");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        let s = g.add_storage("s", 1.0);
        let c = g.add_task("c", 1.0);
        g.add_flow(a, s).unwrap();
        g.add_flow(b, s).unwrap();
        g.add_flow(s, c).unwrap();
        let diags = diagnose(&g, &ProgramLibrary::new());
        let b001: Vec<_> = diags.iter().filter(|d| d.code == Code::B001).collect();
        assert_eq!(b001.len(), 1, "{diags:?}");
        assert_eq!(b001[0].severity, Severity::Error);
        assert!(b001[0].message.contains("`a`"), "{}", b001[0].message);
        assert!(b001[0].message.contains("`b`"), "{}", b001[0].message);
        assert!(b001[0].message.contains("`s`"), "{}", b001[0].message);
        // The unordered reads are also flagged.
        assert!(diags.iter().any(|d| d.code == Code::B002), "{diags:?}");
    }

    #[test]
    fn ordered_writers_do_not_race() {
        // a -> b directly, both write s, c reads: ordered, no B001; and the
        // read is ordered after b via ... wait, c is ordered only through s.
        let mut g = HierGraph::new("ok");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        let s = g.add_storage("s", 1.0);
        let c = g.add_task("c", 1.0);
        g.add_arc(a, b, "go", 1.0).unwrap();
        g.add_flow(a, s).unwrap();
        g.add_flow(b, s).unwrap();
        g.add_flow(s, c).unwrap();
        g.add_arc(b, c, "done", 1.0).unwrap();
        let diags = diagnose(&g, &ProgramLibrary::new());
        assert!(!diags.iter().any(|d| d.code == Code::B001), "{diags:?}");
        // c is ordered after b (direct arc) and after a (a -> b -> c), with
        // the storage edges set aside — so no racy read either.
        assert!(!diags.iter().any(|d| d.code == Code::B002), "{diags:?}");
    }

    #[test]
    fn single_writer_storage_is_clean_dataflow() {
        let mut g = HierGraph::new("tok");
        let a = g.add_task("a", 1.0);
        let s = g.add_storage("s", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_flow(a, s).unwrap();
        g.add_flow(s, b).unwrap();
        let diags = diagnose(&g, &ProgramLibrary::new());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_program_is_b010() {
        let mut g = HierGraph::new("m");
        let t = g.add_task_with_program("t", 1.0, "Nope");
        let s = g.add_storage("s", 1.0);
        g.add_flow(t, s).unwrap();
        let diags = diagnose(&g, &ProgramLibrary::new());
        assert!(codes(&diags).contains(&Code::B010), "{diags:?}");
    }

    #[test]
    fn undeclared_incoming_var_is_b011() {
        let lib = lib_of(&["task P\n in x\n out y\nbegin\n y := x\nend\n"]);
        let mut g = HierGraph::new("i");
        let a = g.add_task("src", 1.0);
        let b = g.add_task_with_program("dst", 1.0, "P");
        g.add_arc(a, b, "z", 1.0).unwrap();
        let diags = diagnose(&g, &lib);
        let b011: Vec<_> = diags.iter().filter(|d| d.code == Code::B011).collect();
        assert_eq!(b011.len(), 1, "{diags:?}");
        assert_eq!(b011[0].severity, Severity::Warning);
        // B016: x is declared in but unsupplied on a task that has arcs.
        assert!(codes(&diags).contains(&Code::B016), "{diags:?}");
    }

    #[test]
    fn unproduced_outgoing_var_is_b012() {
        let lib = lib_of(&["task P\n in x\n out y\nbegin\n y := x\nend\n"]);
        let mut g = HierGraph::new("o");
        let a = g.add_task_with_program("src", 1.0, "P");
        let b = g.add_task("dst", 1.0);
        g.add_arc(a, b, "w", 1.0).unwrap();
        let diags = diagnose(&g, &lib);
        let b012: Vec<_> = diags.iter().filter(|d| d.code == Code::B012).collect();
        assert_eq!(b012.len(), 1, "{diags:?}");
        assert_eq!(b012[0].severity, Severity::Error);
    }

    #[test]
    fn body_checks_cover_b013_b014_b015() {
        let lib = lib_of(&["task P\n in a, b\n out r, unset\nbegin\n r := a\n tmp := 1\nend\n"]);
        let mut g = HierGraph::new("b");
        let t = g.add_task_with_program("t", 1.0, "P");
        let s = g.add_storage("r", 1.0);
        g.add_flow(t, s).unwrap();
        let diags = diagnose(&g, &lib);
        let cs = codes(&diags);
        assert!(cs.contains(&Code::B013), "{diags:?}"); // unset never assigned
        assert!(cs.contains(&Code::B014), "{diags:?}"); // b never read
        assert!(cs.contains(&Code::B015), "{diags:?}"); // tmp undeclared
                                                        // B013 carries the declaration span from the parser.
        let b013 = diags.iter().find(|d| d.code == Code::B013).unwrap();
        assert!(b013.location.span.is_some(), "{b013:?}");
        assert_eq!(b013.location.span.unwrap().line, 3);
    }

    #[test]
    fn isolated_task_is_b031() {
        let mut g = HierGraph::new("iso");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_task("loner", 1.0);
        g.add_arc(a, b, "x", 1.0).unwrap();
        let diags = diagnose(&g, &ProgramLibrary::new());
        let b031: Vec<_> = diags.iter().filter(|d| d.code == Code::B031).collect();
        assert_eq!(b031.len(), 1, "{diags:?}");
        assert!(b031[0].message.contains("loner"));
    }

    #[test]
    fn zero_and_negative_weights_are_b032() {
        let mut g = HierGraph::new("w");
        let a = g.add_task("zero", 0.0);
        let b = g.add_task("neg", -1.0);
        g.add_arc(a, b, "x", 1.0).unwrap();
        let diags = diagnose(&g, &ProgramLibrary::new());
        let b032: Vec<_> = diags.iter().filter(|d| d.code == Code::B032).collect();
        assert_eq!(b032.len(), 2, "{diags:?}");
        assert!(b032.iter().any(|d| d.severity == Severity::Error));
        assert!(b032.iter().any(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn dead_storage_is_b033() {
        let mut g = HierGraph::new("d");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_arc(a, b, "x", 1.0).unwrap();
        g.add_storage("ghost", 1.0);
        let diags = diagnose(&g, &ProgramLibrary::new());
        let b033: Vec<_> = diags.iter().filter(|d| d.code == Code::B033).collect();
        assert_eq!(b033.len(), 1, "{diags:?}");
        assert!(b033[0].message.contains("ghost"));
    }

    #[test]
    fn cycle_is_b030_with_named_path() {
        let mut g = HierGraph::new("cyc");
        let a = g.add_task("first", 1.0);
        let b = g.add_task("second", 1.0);
        let c = g.add_task("third", 1.0);
        g.add_arc(a, b, "x", 1.0).unwrap();
        g.add_arc(b, c, "y", 1.0).unwrap();
        g.add_arc(c, a, "z", 1.0).unwrap();
        let diags = diagnose(&g, &ProgramLibrary::new());
        let b030: Vec<_> = diags.iter().filter(|d| d.code == Code::B030).collect();
        assert_eq!(b030.len(), 1, "{diags:?}");
        let msg = &b030[0].message;
        assert!(msg.contains("first -> second -> third -> first"), "{msg}");
    }

    #[test]
    fn diagnose_is_deterministic() {
        let mut g = HierGraph::new("det");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        let s = g.add_storage("s", 1.0);
        g.add_flow(a, s).unwrap();
        g.add_flow(b, s).unwrap();
        g.add_task("iso", 0.0);
        let d1 = diagnose(&g, &ProgramLibrary::new());
        let d2 = diagnose(&g, &ProgramLibrary::new());
        assert_eq!(d1, d2);
        assert!(!d1.is_empty());
    }
}
