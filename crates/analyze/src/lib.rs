//! Design-time diagnostics for Banger.
//!
//! The paper's third principle is *instant feedback*: a non-programmer
//! wiring tasks together in the graph editor should learn about a mistake
//! while it is on screen, not from an opaque failure deep inside the
//! scheduler or runner. This crate is that feedback loop, packaged as a
//! library so the CLI (`banger check`), the project facade
//! (`Project::diagnose`) and tests all share one engine.
//!
//! Three pass families run over a hierarchical design:
//!
//! * **Storage races** — two tasks writing the same storage item with no
//!   precedence path between them (write/write, `B001`), and reads of
//!   multi-writer items that the rest of the graph does not order against
//!   every write (`B002`). Both are computed by reachability on the
//!   flattened graph.
//! * **PITL/PITS interface cross-checks** — arc variable labels against
//!   each task program's declared `in`/`out` variables, plus per-program
//!   body lints (declared outputs never assigned, inputs never read,
//!   implicit locals) with calc-parser spans (`B01x`).
//! * **Graph hygiene** — unbound compound ports, cycles with a named
//!   path, isolated tasks, bad weights and dead storage (`B02x`/`B03x`).
//! * **Body safety** — interval-domain abstract interpretation of every
//!   task program: reads of unassigned variables, provably out-of-bounds
//!   indices, definite domain errors, variantless `while` loops and dead
//!   assignments (`B04x`), with storage declarations seeding array
//!   lengths.
//!
//! Findings are [`Diagnostic`] values with a stable [`Code`], a
//! [`Severity`] and a [`Location`]; render them with [`render_report`]
//! (human text) or [`render_json`].
//!
//! ```
//! use banger_analyze::{diagnose, has_errors, Code};
//! use banger_calc::ProgramLibrary;
//! use banger_taskgraph::HierGraph;
//!
//! let mut g = HierGraph::new("racy");
//! let a = g.add_task("a", 1.0);
//! let b = g.add_task("b", 1.0);
//! let s = g.add_storage("total", 1.0);
//! g.add_flow(a, s).unwrap();
//! g.add_flow(b, s).unwrap();
//! let diags = diagnose(&g, &ProgramLibrary::new());
//! assert!(has_errors(&diags));
//! assert_eq!(diags[0].code, Code::B001);
//! ```

#![warn(missing_docs)]

pub mod absint;
pub mod access;
pub mod diag;
pub mod passes;

pub use absint::program_diagnostics;
pub use diag::{
    has_errors, render_json, render_report, render_text, sort_diagnostics, Code, Diagnostic,
    Location, Severity,
};
pub use passes::diagnose;
