//! The B04x pass: abstract interpretation of task program bodies.
//!
//! This is a thin design-level layer over the interval-domain abstract
//! interpreter in [`banger_calc::absint`]. It decides *what each task's
//! inputs look like* (storage classes with finite declared sizes seed
//! array lengths; everything else is unknown), runs the analysis once per
//! distinct `(program, seeding)` pair, and maps the engine's findings
//! onto stable diagnostics:
//!
//! | code | finding | severity |
//! |------|---------|----------|
//! | B040 | read of an uninitialized variable | error when definite, warning when possible |
//! | B041 | array index out of bounds | error when definite against flowed bounds, warning otherwise |
//! | B042 | definite division by zero / domain escape | warning (IEEE-complete) |
//! | B043 | `while` with no decreasing variant | warning |
//! | B044 | dead assignment / `out` unset on some path | error when the output is definitely unset, warning otherwise |
//!
//! The severity policy is deliberately sound against trial runs: a B04x
//! *error* means a clean run of that program (under the seeded shapes)
//! is impossible, which is what lets `Project::diagnose()` gate on it —
//! and what `tests/prop_absint.rs` checks differentially.

use crate::access::FlatView;
use crate::diag::{Code, Diagnostic, Location};
use banger_calc::absint::{analyze_with, AbsVal, AnalysisOptions, Finding, FindingKind, Interval};
use banger_calc::{Program, ProgramLibrary};
use std::collections::{BTreeMap, BTreeSet};

/// Diagnostics for one program analyzed in isolation (all inputs
/// unknown). This is the engine behind the design-level pass and the
/// entry point used by the differential property suite.
pub fn program_diagnostics(prog: &Program) -> Vec<Diagnostic> {
    let analysis = analyze_with(prog, &AnalysisOptions::default());
    analysis
        .findings
        .iter()
        .map(|f| to_diagnostic(&prog.name, f))
        .collect()
}

/// The design-level B04x pass: analyzes every program referenced by a
/// task in the flattened view, seeding array lengths from storage
/// declarations where the design pins them down.
pub fn body_safety(view: &FlatView, library: &ProgramLibrary, diags: &mut Vec<Diagnostic>) {
    // Storage base name -> declared size, for classes whose size is a
    // meaningful array length (finite, integral, >= 1).
    let mut declared: BTreeMap<&str, f64> = BTreeMap::new();
    for sc in &view.storages {
        if sc.size.is_finite() && sc.size >= 1.0 && sc.size.fract() == 0.0 {
            declared.insert(sc.base.as_str(), sc.size);
        }
    }
    // Which tasks read which storage classes (to seed their inputs).
    let mut feeds: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
    for sc in &view.storages {
        for &r in &sc.readers {
            feeds.entry(r).or_default().push(sc.base.as_str());
        }
    }

    // One analysis per distinct (program, seed signature).
    let mut done: BTreeSet<(String, Vec<(String, u64)>)> = BTreeSet::new();
    for (t, task) in view.tasks.iter().enumerate() {
        let Some(pname) = &task.program else { continue };
        let Some(prog) = library.get(pname) else {
            continue; // B010 already reported by the interface pass
        };
        let mut opts = AnalysisOptions::default();
        let mut signature: Vec<(String, u64)> = Vec::new();
        if let Some(bases) = feeds.get(&t) {
            for base in bases {
                if !prog.inputs.iter().any(|v| v == base) {
                    continue;
                }
                if let Some(&size) = declared.get(base) {
                    let mut v = AbsVal::array(Interval::point(size));
                    v.len_declared = true;
                    opts.inputs.insert((*base).to_string(), v);
                    signature.push(((*base).to_string(), size as u64));
                }
            }
        }
        signature.sort();
        if !done.insert((pname.clone(), signature)) {
            continue;
        }
        let analysis = analyze_with(prog, &opts);
        diags.extend(analysis.findings.iter().map(|f| to_diagnostic(pname, f)));
    }
}

fn to_diagnostic(pname: &str, f: &Finding) -> Diagnostic {
    let loc = Location::program(pname.to_string(), f.pos);
    let qualifier = if f.definite { "definitely" } else { "possibly" };
    match &f.kind {
        FindingKind::UninitRead { var } => {
            let msg = format!("program `{pname}` reads `{var}` which is {qualifier} unassigned");
            let d = if f.definite {
                Diagnostic::error(Code::B040, loc, msg)
            } else {
                Diagnostic::warning(Code::B040, loc, msg)
            };
            d.with_help(format!(
                "assign `{var}` on every path before this read (or declare it `in` \
                 and feed it with an arc)"
            ))
        }
        FindingKind::IndexOut {
            var,
            index,
            len,
            declared,
        } => {
            let source = if *declared { "declared" } else { "inferred" };
            let msg = format!(
                "index {index} into `{var}` is {qualifier} outside its {source} \
                 length {len} (arrays are 1-based)"
            );
            let d = if f.definite {
                Diagnostic::error(Code::B041, loc, msg)
            } else {
                Diagnostic::warning(Code::B041, loc, msg)
            };
            d.with_help(format!(
                "keep the index within 1..=len({var}), or size the array to match"
            ))
        }
        FindingKind::DivByZero => Diagnostic::warning(
            Code::B042,
            loc,
            format!("program `{pname}` divides by a value that is always zero"),
        )
        .with_help(
            "the calculator completes with IEEE infinity, which is rarely intended; \
             guard the divisor",
        ),
        FindingKind::Domain { func } => Diagnostic::warning(
            Code::B042,
            loc,
            format!("`{func}` is always applied outside its domain in program `{pname}`"),
        )
        .with_help(
            "the result is IEEE NaN/-inf, which silently poisons downstream \
             arithmetic; guard the argument",
        ),
        FindingKind::NoVariant { vars } => {
            let what = if vars.is_empty() {
                "its condition is constant".to_string()
            } else {
                format!(
                    "none of its condition variables ({}) is assigned in the body",
                    vars.iter()
                        .map(|v| format!("`{v}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            Diagnostic::warning(
                Code::B043,
                loc,
                format!("a `while` loop in program `{pname}` has no decreasing variant: {what}"),
            )
            .with_help(
                "the loop can only stop via the step limit; make the body change \
                 a condition variable",
            )
        }
        FindingKind::DeadAssign { var } => Diagnostic::warning(
            Code::B044,
            loc,
            format!(
                "assignment to `{var}` in program `{pname}` is dead: the value is \
                 never read"
            ),
        )
        .with_help("delete the assignment, or use the value"),
        FindingKind::OutputUnset { var } => {
            let msg = format!(
                "`out {var}` of program `{pname}` is {qualifier} unassigned at the \
                 end of the body"
            );
            let d = if f.definite {
                Diagnostic::error(Code::B044, loc, msg)
            } else {
                Diagnostic::warning(Code::B044, loc, msg)
            };
            d.with_help(format!("assign `{var}` on every path through the body"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use banger_calc::parse_program;

    fn diags_of(src: &str) -> Vec<Diagnostic> {
        program_diagnostics(&parse_program(src).unwrap())
    }

    fn find(diags: &[Diagnostic], code: Code) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| d.code == code).collect()
    }

    #[test]
    fn b040_definite_is_error_possible_is_warning() {
        let d = diags_of("task T out x local q begin x := q + 1 end");
        let hits = find(&d, Code::B040);
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(
            hits[0].message.contains("definitely"),
            "{}",
            hits[0].message
        );

        let d = diags_of("task T in a out x local q begin if a > 0 then q := 1 end x := q end");
        let hits = find(&d, Code::B040);
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].severity, Severity::Warning);
    }

    #[test]
    fn b041_definite_is_error() {
        let d = diags_of("task T out x local w begin w := zeros(3) x := w[5] end");
        let hits = find(&d, Code::B041);
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(hits[0].location.span.is_some(), "{:?}", hits[0]);
    }

    #[test]
    fn b042_is_always_warning() {
        let d = diags_of("task T out x local z begin z := 0 x := 1 / z end");
        let hits = find(&d, Code::B042);
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].severity, Severity::Warning);

        let d = diags_of("task T out x begin x := sqrt(0 - 4) end");
        let hits = find(&d, Code::B042);
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(hits[0].message.contains("sqrt"), "{}", hits[0].message);
    }

    #[test]
    fn b043_flags_variantless_while() {
        let d = diags_of("task T in a out x begin x := 0 while a > 0 do x := x + 1 end end");
        let hits = find(&d, Code::B043);
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(hits[0].message.contains("`a`"), "{}", hits[0].message);
    }

    #[test]
    fn b044_dead_assign_and_unset_output() {
        let d = diags_of("task T out x local t begin t := 1 t := 2 x := t end");
        let hits = find(&d, Code::B044);
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(hits[0].message.contains("dead"), "{}", hits[0].message);

        let d = diags_of("task T in a out x begin if a > 0 then x := 1 end end");
        let hits = find(&d, Code::B044);
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(hits[0].message.contains("out x") || hits[0].message.contains("`x`"));
    }

    #[test]
    fn clean_program_produces_nothing() {
        let d = diags_of("task T in a out x local g begin g := a / 2 x := g * g end");
        assert!(d.is_empty(), "{d:?}");
    }
}
