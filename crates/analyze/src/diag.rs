//! The diagnostic data model: stable codes, severities, locations and the
//! human-text / JSON renderers shared by `banger check` and
//! `Project::diagnose`.

use banger_calc::Pos;
use std::fmt;

/// How bad a finding is.
///
/// `Error` findings make a design unschedulable/unrunnable; `Warning`
/// findings are suspicious but legal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but legal; execution proceeds.
    Warning,
    /// The design is rejected by `schedule`/`run`/`codegen`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The numeric ranges group the passes:
/// `B00x` races, `B01x` PITL/PITS interface checks, `B02x` compound port
/// bindings, `B03x` graph hygiene, `B04x` abstract interpretation of
/// task program bodies (value-range safety).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Two tasks write the same storage item with no precedence path
    /// between them (write/write race).
    B001,
    /// A read of a multi-writer storage item is not ordered against every
    /// write by the rest of the graph (racy read).
    B002,
    /// A task names a program that is missing from the library.
    B010,
    /// A task receives an arc variable its program does not declare `in`.
    B011,
    /// A task emits an arc variable its program does not declare `out`.
    B012,
    /// A declared `out` variable is never assigned in the program body.
    B013,
    /// A declared `in` variable is never read in the program body.
    B014,
    /// The program assigns a variable it never declares (implicit local).
    B015,
    /// A declared `in` variable of a non-entry task is supplied by no arc
    /// and will fall back to the external input map at run time.
    B016,
    /// An arc crosses a compound boundary with no port binding for its
    /// variable.
    B020,
    /// A compound port binding names an inner node that does not exist.
    B021,
    /// The design contains a cycle.
    B030,
    /// A task is connected to nothing (no arcs in or out).
    B031,
    /// A task weight or storage size is zero, negative or non-finite.
    B032,
    /// A storage item has no arcs at all (dead storage).
    B033,
    /// A variable is read before it is assigned (error when on every
    /// path, warning when only on some).
    B040,
    /// An array index provably outside the declared or flowed bounds
    /// (error when definite against flowed bounds, warning when possible
    /// or against declared sizes).
    B041,
    /// A definite arithmetic domain escape: division by a constant zero,
    /// `sqrt` of a wholly negative interval, `log` of a non-positive one.
    /// Always a warning — the calculator completes with IEEE NaN/inf.
    B042,
    /// A `while` loop none of whose condition variables is assigned in
    /// the body — no decreasing variant, step-limit risk.
    B043,
    /// Dead assignment, or an `out` variable not written on some path.
    B044,
}

impl Code {
    /// The stable `B0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::B001 => "B001",
            Code::B002 => "B002",
            Code::B010 => "B010",
            Code::B011 => "B011",
            Code::B012 => "B012",
            Code::B013 => "B013",
            Code::B014 => "B014",
            Code::B015 => "B015",
            Code::B016 => "B016",
            Code::B020 => "B020",
            Code::B021 => "B021",
            Code::B030 => "B030",
            Code::B031 => "B031",
            Code::B032 => "B032",
            Code::B033 => "B033",
            Code::B040 => "B040",
            Code::B041 => "B041",
            Code::B042 => "B042",
            Code::B043 => "B043",
            Code::B044 => "B044",
        }
    }

    /// One-line description of what the code means (the `B0xx` table).
    pub fn summary(self) -> &'static str {
        match self {
            Code::B001 => "write/write storage race",
            Code::B002 => "unordered read of a multi-writer storage item",
            Code::B010 => "task program missing from the library",
            Code::B011 => "arc variable not declared `in` by the receiving program",
            Code::B012 => "arc variable not declared `out` by the sending program",
            Code::B013 => "declared `out` variable never assigned",
            Code::B014 => "declared `in` variable never read",
            Code::B015 => "assignment to an undeclared variable",
            Code::B016 => "`in` variable supplied by no arc",
            Code::B020 => "unbound compound port",
            Code::B021 => "port binding names a missing inner node",
            Code::B030 => "design contains a cycle",
            Code::B031 => "task connected to nothing",
            Code::B032 => "bad task weight or storage size",
            Code::B033 => "storage item with no arcs",
            Code::B040 => "variable read before assignment",
            Code::B041 => "array index out of bounds",
            Code::B042 => "definite arithmetic domain error",
            Code::B043 => "`while` loop with no decreasing variant",
            Code::B044 => "dead assignment or `out` variable unset on some path",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points. All parts optional; renderers print the ones
/// that are present.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Location {
    /// Qualified node name(s) in the design (`Factor.fl21`).
    pub nodes: Vec<String>,
    /// An arc `(src, dst, label)` in the design.
    pub arc: Option<(String, String, String)>,
    /// The PITS program the finding is about.
    pub program: Option<String>,
    /// Source position inside that program (from the calc parser).
    pub span: Option<Pos>,
}

impl Location {
    /// Location naming one design node.
    pub fn node(name: impl Into<String>) -> Self {
        Location {
            nodes: vec![name.into()],
            ..Default::default()
        }
    }

    /// Location naming several design nodes.
    pub fn nodes(names: Vec<String>) -> Self {
        Location {
            nodes: names,
            ..Default::default()
        }
    }

    /// Location naming a program (optionally with a source span).
    pub fn program(name: impl Into<String>, span: Option<Pos>) -> Self {
        Location {
            program: Some(name.into()),
            span,
            ..Default::default()
        }
    }
}

/// One finding produced by the analysis passes.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity of this particular finding.
    pub severity: Severity,
    /// What the finding points at.
    pub location: Location,
    /// Human-readable description of the problem.
    pub message: String,
    /// Optional suggestion for fixing it.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A new error-severity diagnostic.
    pub fn error(code: Code, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location,
            message: message.into(),
            help: None,
        }
    }

    /// A new warning-severity diagnostic.
    pub fn warning(code: Code, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Deterministic ordering key: errors first, then by code, then by
    /// location and message.
    fn sort_key(&self) -> (u8, Code, &[String], &str) {
        let sev = match self.severity {
            Severity::Error => 0,
            Severity::Warning => 1,
        };
        (sev, self.code, &self.location.nodes, &self.message)
    }
}

/// Sorts diagnostics into the stable presentation order (errors first,
/// then by code, location and message).
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.sort_key().cmp(&b.sort_key()).then_with(|| {
            let la = (&a.location.arc, &a.location.program, a.help.is_some());
            let lb = (&b.location.arc, &b.location.program, b.help.is_some());
            la.cmp(&lb)
        })
    });
}

/// True when any diagnostic has error severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders one diagnostic as human-readable text (possibly multi-line,
/// no trailing newline).
pub fn render_text(d: &Diagnostic) -> String {
    let mut out = format!("{}[{}]: {}", d.severity, d.code, d.message);
    let mut at = Vec::new();
    for n in &d.location.nodes {
        at.push(format!("node `{n}`"));
    }
    if let Some((src, dst, label)) = &d.location.arc {
        at.push(format!("arc `{src}` -> `{dst}` (label `{label}`)"));
    }
    if let Some(p) = &d.location.program {
        match d.location.span {
            Some(pos) => at.push(format!("program `{p}` at {pos}")),
            None => at.push(format!("program `{p}`")),
        }
    }
    if !at.is_empty() {
        out.push_str("\n    at ");
        out.push_str(&at.join(", "));
    }
    if let Some(h) = &d.help {
        out.push_str("\n  help: ");
        out.push_str(h);
    }
    out
}

/// Renders a full report: every diagnostic plus a summary line.
pub fn render_report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&render_text(d));
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!(
        "{errors} error{}, {warnings} warning{}",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    ));
    out
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn json_string(s: &str, out: &mut String) {
    out.push('"');
    json_escape(s, out);
    out.push('"');
}

/// Renders the diagnostics as a JSON array (one object per finding) —
/// hand-rolled, since the workspace carries no serde.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"code\":");
        json_string(d.code.as_str(), &mut out);
        out.push_str(",\"severity\":");
        json_string(&d.severity.to_string(), &mut out);
        out.push_str(",\"message\":");
        json_string(&d.message, &mut out);
        if !d.location.nodes.is_empty() {
            out.push_str(",\"nodes\":[");
            for (j, n) in d.location.nodes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(n, &mut out);
            }
            out.push(']');
        }
        if let Some((src, dst, label)) = &d.location.arc {
            out.push_str(",\"arc\":{\"src\":");
            json_string(src, &mut out);
            out.push_str(",\"dst\":");
            json_string(dst, &mut out);
            out.push_str(",\"label\":");
            json_string(label, &mut out);
            out.push('}');
        }
        if let Some(p) = &d.location.program {
            out.push_str(",\"program\":");
            json_string(p, &mut out);
        }
        if let Some(pos) = d.location.span {
            out.push_str(&format!(",\"line\":{},\"col\":{}", pos.line, pos.col));
        }
        if let Some(h) = &d.help {
            out.push_str(",\"help\":");
            json_string(h, &mut out);
        }
        out.push('}');
    }
    out.push_str("\n]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::B001.as_str(), "B001");
        assert_eq!(Code::B033.to_string(), "B033");
        assert!(!Code::B016.summary().is_empty());
        assert_eq!(Code::B040.as_str(), "B040");
        assert_eq!(Code::B044.to_string(), "B044");
        for c in [Code::B040, Code::B041, Code::B042, Code::B043, Code::B044] {
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn sorting_puts_errors_first() {
        let mut ds = vec![
            Diagnostic::warning(Code::B014, Location::default(), "w"),
            Diagnostic::error(Code::B030, Location::default(), "e"),
            Diagnostic::error(Code::B001, Location::node("a"), "e2"),
        ];
        sort_diagnostics(&mut ds);
        assert_eq!(ds[0].code, Code::B001);
        assert_eq!(ds[1].code, Code::B030);
        assert_eq!(ds[2].code, Code::B014);
        assert!(has_errors(&ds));
    }

    #[test]
    fn text_render_includes_code_and_location() {
        let d = Diagnostic::error(
            Code::B001,
            Location::nodes(vec!["a".into(), "b".into()]),
            "race on `s`",
        )
        .with_help("order the writers");
        let s = render_text(&d);
        assert!(s.contains("error[B001]"), "{s}");
        assert!(s.contains("node `a`, node `b`"), "{s}");
        assert!(s.contains("help: order the writers"), "{s}");
    }

    #[test]
    fn report_counts_severities() {
        let ds = vec![
            Diagnostic::error(Code::B030, Location::default(), "e"),
            Diagnostic::warning(Code::B033, Location::default(), "w"),
            Diagnostic::warning(Code::B031, Location::default(), "w2"),
        ];
        let r = render_report(&ds);
        assert!(r.ends_with("1 error, 2 warnings"), "{r}");
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let d = Diagnostic::warning(
            Code::B015,
            Location::program("P", Some(Pos { line: 3, col: 7 })),
            "assigns \"x\"\nimplicitly",
        );
        let j = render_json(&[d]);
        assert!(j.contains("\\\"x\\\""), "{j}");
        assert!(j.contains("\\n"), "{j}");
        assert!(j.contains("\"line\":3"), "{j}");
        assert!(j.contains("\"col\":7"), "{j}");
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn empty_json_is_an_array() {
        assert_eq!(render_json(&[]), "[\n]");
    }
}
