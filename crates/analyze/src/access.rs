//! A tolerant mirror of `HierGraph::flatten` used by the analysis passes.
//!
//! Unlike `flatten`, which fails fast on the first structural problem, this
//! walk keeps going: port-binding problems become [`Diagnostic`]s (B020 /
//! B021) and the offending arcs are dropped, so the later passes can still
//! report everything else that is wrong with the design.

use crate::diag::{Code, Diagnostic, Location};
use banger_taskgraph::{HierGraph, HierNodeId, NodeKind};
use std::collections::BTreeMap;

/// A leaf task in the flattened view.
#[derive(Debug, Clone)]
pub struct FlatTask {
    /// Hierarchy-qualified name (`Factor.fl21`).
    pub name: String,
    /// Computational weight as drawn.
    pub weight: f64,
    /// PITS program implementing the task, if any.
    pub program: Option<String>,
}

/// One storage *class* — a set of storage nodes merged across compound
/// boundaries that alias the same data item.
#[derive(Debug, Clone)]
pub struct StorageClass {
    /// The storage's base (unqualified) name; this is the variable arcs
    /// through it carry.
    pub base: String,
    /// Qualified names of every alias in the class.
    pub names: Vec<String>,
    /// Declared size (largest across aliases).
    pub size: f64,
    /// Flat task indices that write the item (deduplicated, sorted).
    pub writers: Vec<usize>,
    /// Flat task indices that read the item (deduplicated, sorted).
    pub readers: Vec<usize>,
}

/// The flattened view of a design: leaf tasks, direct labeled edges and
/// storage classes, plus any port diagnostics found along the way.
#[derive(Debug, Clone, Default)]
pub struct FlatView {
    /// Leaf tasks with qualified names.
    pub tasks: Vec<FlatTask>,
    /// Direct task-to-task edges `(src, dst, label)` (deduplicated).
    pub edges: Vec<(usize, usize, String)>,
    /// Storage classes after alias merging.
    pub storages: Vec<StorageClass>,
    /// B020/B021 findings collected during expansion.
    pub diags: Vec<Diagnostic>,
}

impl FlatView {
    /// Number of leaf tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Adjacency of the full precedence graph: direct edges plus a
    /// writer -> reader edge for every storage class. `skip_storage`
    /// omits the induced edges of that one storage class (used by the
    /// racy-read pass to ask whether ordering comes from elsewhere).
    pub fn adjacency(&self, skip_storage: Option<usize>) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.tasks.len()];
        for (s, d, _) in &self.edges {
            adj[*s].push(*d);
        }
        for (si, sc) in self.storages.iter().enumerate() {
            if Some(si) == skip_storage {
                continue;
            }
            for &w in &sc.writers {
                for &r in &sc.readers {
                    if w != r {
                        adj[w].push(r);
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }
}

enum FlatNodeKind {
    Task,
    Storage { size: f64, base: String },
}

struct FlatNode {
    name: String,
    kind: FlatNodeKind,
}

#[derive(Default)]
struct Accum {
    nodes: Vec<FlatNode>,
    tasks: Vec<FlatTask>,
    /// Flat-task index of each task node (parallel to `nodes`).
    task_of: Vec<Option<usize>>,
    arcs: Vec<(usize, usize, String)>,
    diags: Vec<Diagnostic>,
}

enum Repr {
    Simple(usize),
    Compound {
        inputs: BTreeMap<String, Vec<usize>>,
        outputs: BTreeMap<String, Vec<usize>>,
    },
}

fn qualified(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

fn expand_level(g: &HierGraph, prefix: &str, acc: &mut Accum) -> Vec<Repr> {
    let mut repr = Vec::new();
    for (_, node) in g.nodes() {
        match &node.kind {
            NodeKind::Task { weight, program } => {
                let idx = acc.nodes.len();
                let name = qualified(prefix, &node.name);
                acc.tasks.push(FlatTask {
                    name: name.clone(),
                    weight: *weight,
                    program: program.clone(),
                });
                acc.nodes.push(FlatNode {
                    name,
                    kind: FlatNodeKind::Task,
                });
                acc.task_of.push(Some(acc.tasks.len() - 1));
                repr.push(Repr::Simple(idx));
            }
            NodeKind::Storage { size } => {
                let idx = acc.nodes.len();
                acc.nodes.push(FlatNode {
                    name: qualified(prefix, &node.name),
                    kind: FlatNodeKind::Storage {
                        size: *size,
                        base: node.name.clone(),
                    },
                });
                acc.task_of.push(None);
                repr.push(Repr::Simple(idx));
            }
            NodeKind::Compound {
                expansion,
                inputs,
                outputs,
            } => {
                let child_prefix = qualified(prefix, &node.name);
                let child = expand_level(expansion, &child_prefix, acc);
                route_arcs(expansion, &child, acc);
                let mut resolve = |bindings: &BTreeMap<String, Vec<HierNodeId>>,
                                   side_in: bool|
                 -> BTreeMap<String, Vec<usize>> {
                    let mut out = BTreeMap::new();
                    for (label, ids) in bindings {
                        let mut flats = Vec::new();
                        for &inner in ids {
                            match child.get(inner.index()) {
                                None => acc.diags.push(
                                    Diagnostic::error(
                                        Code::B021,
                                        Location::node(child_prefix.clone()),
                                        format!(
                                            "port binding for `{label}` in compound \
                                             `{child_prefix}` names missing inner node {inner}",
                                        ),
                                    )
                                    .with_help(
                                        "bind the port to a node that exists in the expansion",
                                    ),
                                ),
                                Some(Repr::Simple(i)) => flats.push(*i),
                                Some(Repr::Compound { inputs, outputs }) => {
                                    let map = if side_in { inputs } else { outputs };
                                    match map.get(label) {
                                        Some(nested) => flats.extend(nested.iter().copied()),
                                        None => acc.diags.push(
                                            Diagnostic::error(
                                                Code::B020,
                                                Location::node(child_prefix.clone()),
                                                format!(
                                                    "nested compound inside `{child_prefix}` \
                                                     lacks a binding for `{label}`",
                                                ),
                                            )
                                            .with_help(
                                                "add a bind declaration for the variable on the \
                                                 nested compound",
                                            ),
                                        ),
                                    }
                                }
                            }
                        }
                        out.insert(label.clone(), flats);
                    }
                    out
                };
                let inputs = resolve(inputs, true);
                let outputs = resolve(outputs, false);
                repr.push(Repr::Compound { inputs, outputs });
            }
        }
    }
    repr
}

fn endpoints(
    g: &HierGraph,
    level: &[Repr],
    id: HierNodeId,
    label: &str,
    incoming: bool,
    acc: &mut Accum,
) -> Vec<usize> {
    match &level[id.index()] {
        Repr::Simple(i) => vec![*i],
        Repr::Compound { inputs, outputs } => {
            let map = if incoming { inputs } else { outputs };
            match map.get(label) {
                Some(v) => v.clone(),
                None => {
                    let name = g
                        .node(id)
                        .map(|n| n.name.clone())
                        .unwrap_or_else(|| id.to_string());
                    acc.diags.push(
                        Diagnostic::error(
                            Code::B020,
                            Location::node(name.clone()),
                            format!(
                                "compound `{name}` has no {} binding for variable `{label}`",
                                if incoming { "input" } else { "output" },
                            ),
                        )
                        .with_help(format!(
                            "add `bind {} {name} {label} <inner-node>` so the arc can cross \
                             the compound boundary",
                            if incoming { "in" } else { "out" },
                        )),
                    );
                    Vec::new()
                }
            }
        }
    }
}

fn route_arcs(g: &HierGraph, level: &[Repr], acc: &mut Accum) {
    for arc in g.arcs() {
        let srcs = endpoints(g, level, arc.src, &arc.label, false, acc);
        let dsts = endpoints(g, level, arc.dst, &arc.label, true, acc);
        for &s in &srcs {
            for &d in &dsts {
                acc.arcs.push((s, d, arc.label.clone()));
            }
        }
    }
}

/// Union-find over flat node indices (storage alias merging).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Builds the flattened analysis view of a design, tolerating binding
/// errors (reported as diagnostics rather than failures).
pub fn flat_view(design: &HierGraph) -> FlatView {
    let mut acc = Accum::default();
    let top = expand_level(design, "", &mut acc);
    route_arcs(design, &top, &mut acc);

    let n = acc.nodes.len();
    let mut uf = UnionFind::new(n);
    for (s, d, _) in &acc.arcs {
        let s_store = matches!(acc.nodes[*s].kind, FlatNodeKind::Storage { .. });
        let d_store = matches!(acc.nodes[*d].kind, FlatNodeKind::Storage { .. });
        if s_store && d_store {
            uf.union(*s, *d);
        }
    }

    let mut edges: Vec<(usize, usize, String)> = Vec::new();
    let mut writers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (s, d, label) in &acc.arcs {
        let s_task = acc.task_of[*s];
        let d_task = acc.task_of[*d];
        match (s_task, d_task) {
            (Some(ts), Some(td)) => edges.push((ts, td, label.clone())),
            (Some(ts), None) => writers[uf.find(*d)].push(ts),
            (None, Some(td)) => readers[uf.find(*s)].push(td),
            (None, None) => {} // alias arc, already merged
        }
    }
    edges.sort();
    edges.dedup();

    let mut storages = Vec::new();
    for i in 0..n {
        if !matches!(acc.nodes[i].kind, FlatNodeKind::Storage { .. }) || uf.find(i) != i {
            continue;
        }
        let mut names = Vec::new();
        let mut size = 0.0f64;
        let mut base = String::new();
        for (j, node) in acc.nodes.iter().enumerate() {
            if let FlatNodeKind::Storage { size: s, base: b } = &node.kind {
                if uf.find(j) == i {
                    names.push(node.name.clone());
                    if *s > size {
                        size = *s;
                    }
                    if base.is_empty() {
                        base = b.clone();
                    }
                }
            }
        }
        let mut w = std::mem::take(&mut writers[i]);
        w.sort_unstable();
        w.dedup();
        let mut r = std::mem::take(&mut readers[i]);
        r.sort_unstable();
        r.dedup();
        storages.push(StorageClass {
            base,
            names,
            size,
            writers: w,
            readers: r,
        });
    }

    FlatView {
        tasks: acc.tasks,
        edges,
        storages,
        diags: acc.diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_between_tasks_forms_a_class() {
        let mut g = HierGraph::new("t");
        let a = g.add_task("a", 1.0);
        let s = g.add_storage("s", 4.0);
        let b = g.add_task("b", 1.0);
        g.add_flow(a, s).unwrap();
        g.add_flow(s, b).unwrap();
        let v = flat_view(&g);
        assert_eq!(v.task_count(), 2);
        assert_eq!(v.storages.len(), 1);
        assert_eq!(v.storages[0].base, "s");
        assert_eq!(v.storages[0].writers, vec![0]);
        assert_eq!(v.storages[0].readers, vec![1]);
        assert!(v.diags.is_empty());
        let adj = v.adjacency(None);
        assert_eq!(adj[0], vec![1]);
    }

    #[test]
    fn missing_port_binding_becomes_b020() {
        let mut inner = HierGraph::new("inner");
        inner.add_task("w", 1.0);
        let mut g = HierGraph::new("outer");
        let c = g.add_compound("C", inner);
        let t = g.add_task("t", 1.0);
        g.add_arc(t, c, "x", 1.0).unwrap();
        let v = flat_view(&g);
        assert_eq!(v.diags.len(), 1);
        assert_eq!(v.diags[0].code, Code::B020);
        assert!(v.diags[0].message.contains('C'), "{}", v.diags[0].message);
        // The arc was dropped, not fatal: both tasks still flattened.
        assert_eq!(v.task_count(), 2);
    }

    #[test]
    fn binding_to_missing_inner_node_becomes_b021() {
        let mut inner = HierGraph::new("inner");
        inner.add_task("w", 1.0);
        let mut g = HierGraph::new("outer");
        let c = g.add_compound("C", inner);
        g.bind_input(c, "x", HierNodeId(7)).unwrap();
        let t = g.add_task("t", 1.0);
        g.add_arc(t, c, "x", 1.0).unwrap();
        let v = flat_view(&g);
        assert!(
            v.diags.iter().any(|d| d.code == Code::B021),
            "{:?}",
            v.diags
        );
    }

    #[test]
    fn aliased_storage_merges_across_boundary() {
        // outer storage S bound to inner storage s: one class, two names.
        let mut inner = HierGraph::new("inner");
        let is = inner.add_storage("s", 2.0);
        let w = inner.add_task("w", 1.0);
        inner.add_flow(w, is).unwrap();
        let mut g = HierGraph::new("outer");
        let c = g.add_compound("C", inner);
        g.bind_output(c, "S", is).unwrap();
        let s = g.add_storage("S", 2.0);
        let r = g.add_task("r", 1.0);
        g.add_arc(c, s, "S", 0.0).unwrap();
        g.add_flow(s, r).unwrap();
        let v = flat_view(&g);
        assert_eq!(v.storages.len(), 1, "{:?}", v.storages);
        assert_eq!(v.storages[0].names.len(), 2);
        assert_eq!(v.storages[0].writers.len(), 1);
        assert_eq!(v.storages[0].readers.len(), 1);
    }
}
