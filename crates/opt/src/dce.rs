//! Dead-arc and dead-port elimination.
//!
//! Three kinds of dead structure accumulate in hand-drawn designs and in
//! the output of other rewrites:
//!
//! 1. **Dead arcs** — an arc whose label matches no input of the
//!    consumer's program. The router never reads it; it only inflates
//!    the scheduler's communication model.
//! 2. **Shadowed arcs** — a second arc into the same task with the same
//!    label. The router binds each input from the *first* matching
//!    in-edge, so later duplicates are unreachable.
//! 3. **Dead declarations** — program inputs and locals that no
//!    statement references. Input binding is free at run time, so
//!    removing them changes neither values nor operation counts, but it
//!    shrinks the design's external surface and the scheduler's edge
//!    set.
//!
//! All removals are Outcome-preserving: output values, print output and
//! the total interpreter operation count are exactly unchanged.

use std::collections::BTreeMap;

use banger_calc::ast::Program;
use banger_calc::library::ProgramLibrary;
use banger_calc::transform::{assigns_var, stmts_use_var};
use banger_taskgraph::hierarchy::{ExternalPort, Flattened};
use banger_taskgraph::TaskGraph;

use crate::OptError;

/// What [`eliminate_dead`] removed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DceStats {
    /// Arcs dropped (dead label or shadowed duplicate).
    pub arcs_removed: usize,
    /// Input declarations removed from programs.
    pub inputs_trimmed: usize,
    /// Local declarations removed from programs.
    pub locals_trimmed: usize,
    /// External input ports that lost all their readers.
    pub ports_removed: usize,
    /// Library programs no task references (not carried over).
    pub programs_dropped: usize,
}

impl DceStats {
    /// True when the pass found nothing to remove.
    pub fn is_noop(&self) -> bool {
        *self == DceStats::default()
    }
}

/// Removes a variable from a declaration list, counting the removal.
fn trim_decls(decls: &mut Vec<String>, dead: &[String], count: &mut usize) {
    decls.retain(|v| {
        let keep = !dead.iter().any(|d| d == v);
        if !keep {
            *count += 1;
        }
        keep
    });
}

/// Returns `prog` with never-referenced inputs and locals removed.
/// A declaration survives if any statement reads *or* assigns it, or if
/// it is also an output. Removal is free: unreferenced variables cost no
/// operations to bind and hold value `0` forever.
fn trim_program(prog: &Program, stats: &mut DceStats) -> Program {
    let dead_inputs: Vec<String> = prog
        .inputs
        .iter()
        .filter(|v| {
            !stmts_use_var(&prog.body, v)
                && !assigns_var(&prog.body, v)
                && !prog.outputs.contains(v)
        })
        .cloned()
        .collect();
    let dead_locals: Vec<String> = prog
        .locals
        .iter()
        .filter(|v| !stmts_use_var(&prog.body, v) && !assigns_var(&prog.body, v))
        .cloned()
        .collect();
    let mut out = prog.clone();
    trim_decls(&mut out.inputs, &dead_inputs, &mut stats.inputs_trimmed);
    trim_decls(&mut out.locals, &dead_locals, &mut stats.locals_trimmed);
    for v in dead_inputs.iter().chain(&dead_locals) {
        out.decl_pos.remove(v);
    }
    out
}

/// Runs dead-arc/dead-port elimination over a flattened design.
///
/// Returns the rewritten design, a fresh library holding (only) the
/// trimmed programs the design still references, and removal statistics.
/// Task ids, task order and the relative order of surviving arcs are
/// preserved, so downstream passes and the router see the same
/// first-edge-wins binding decisions.
pub fn eliminate_dead(
    flat: &Flattened,
    lib: &ProgramLibrary,
) -> Result<(Flattened, ProgramLibrary, DceStats), OptError> {
    let g = &flat.graph;
    let mut stats = DceStats::default();

    // Trim each referenced program once (programs may be shared by many
    // tasks; the trim is a function of the body alone, so it is uniform
    // across all users).
    let mut trimmed: BTreeMap<String, Program> = BTreeMap::new();
    for (_, task) in g.tasks() {
        if let Some(name) = task.program.as_deref() {
            if !trimmed.contains_key(name) {
                let prog = lib
                    .get(name)
                    .ok_or_else(|| OptError::UnknownProgram(name.to_string()))?;
                trimmed.insert(name.to_string(), trim_program(prog, &mut stats));
            }
        }
    }
    stats.programs_dropped = lib.len() - trimmed.len();

    // Decide the fate of every edge. An edge survives when its consumer
    // has no program (nothing known about its reads — keep), or when its
    // label is a (still-declared) input of the consumer's program and no
    // earlier in-edge already supplies that label.
    let mut keep = vec![false; g.edge_count()];
    for t in g.task_ids() {
        let prog = g.task(t).program.as_deref().map(|n| &trimmed[n]);
        let mut seen: Vec<&str> = Vec::new();
        for &e in g.in_edges(t) {
            let label = g.edge(e).label.as_str();
            let alive = match prog {
                None => true,
                Some(p) => p.inputs.iter().any(|v| v == label) && !seen.contains(&label),
            };
            if alive {
                seen.push(label);
                keep[e.index()] = true;
            } else {
                stats.arcs_removed += 1;
            }
        }
    }

    // Rebuild the graph: same tasks in the same order (ids are stable),
    // surviving edges in their original order.
    let mut out = TaskGraph::new(g.name());
    for (_, task) in g.tasks() {
        let t = out.add_task(task.name.clone(), task.weight);
        if let Some(p) = &task.program {
            out.set_program(t, p.clone()).map_err(OptError::Graph)?;
        }
    }
    for (e, edge) in g.edges() {
        if keep[e.index()] {
            out.add_edge(edge.src, edge.dst, edge.volume, edge.label.clone())
                .map_err(OptError::Graph)?;
        }
    }

    // Input ports keep only readers whose program still declares the
    // variable and still receives it externally (no surviving arc feeds
    // it). Ports with no readers left disappear.
    let mut inputs: Vec<ExternalPort> = Vec::new();
    for port in &flat.inputs {
        let readers: Vec<_> = port
            .tasks
            .iter()
            .copied()
            .filter(|&t| {
                let Some(p) = g.task(t).program.as_deref().map(|n| &trimmed[n]) else {
                    return true;
                };
                p.inputs.contains(&port.var)
                    && !out
                        .in_edges(t)
                        .iter()
                        .any(|&e| out.edge(e).label == port.var)
            })
            .collect();
        if readers.is_empty() {
            stats.ports_removed += 1;
        } else {
            inputs.push(ExternalPort {
                var: port.var.clone(),
                tasks: readers,
            });
        }
    }

    let mut new_lib = ProgramLibrary::new();
    for prog in trimmed.into_values() {
        new_lib.add(prog);
    }

    Ok((
        Flattened {
            graph: out,
            inputs,
            outputs: flat.outputs.clone(),
        },
        new_lib,
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_calc::parser::parse_program;

    fn lib_of(sources: &[&str]) -> ProgramLibrary {
        let mut lib = ProgramLibrary::new();
        for s in sources {
            lib.add(parse_program(s).unwrap());
        }
        lib
    }

    /// p --(x)--> c with an extra dead arc labelled `junk` and a shadowed
    /// duplicate of `x`.
    fn fixture() -> (Flattened, ProgramLibrary) {
        let lib = lib_of(&[
            "task P in a out x, junk begin x := a + 1 junk := 0 end",
            "task C in x out y begin y := x * 2 end",
        ]);
        let mut g = TaskGraph::new("d");
        let p = g.add_task("p", 1.0);
        let c = g.add_task("c", 1.0);
        let q = g.add_task("q", 1.0);
        g.set_program(p, "P").unwrap();
        g.set_program(c, "C").unwrap();
        g.set_program(q, "P").unwrap();
        g.add_edge(p, c, 1.0, "x").unwrap();
        g.add_edge(p, c, 1.0, "junk").unwrap();
        g.add_edge(q, c, 1.0, "x").unwrap();
        let flat = Flattened {
            graph: g,
            inputs: vec![ExternalPort {
                var: "a".into(),
                tasks: vec![p, q],
            }],
            outputs: vec![ExternalPort {
                var: "y".into(),
                tasks: vec![c],
            }],
        };
        (flat, lib)
    }

    #[test]
    fn dead_and_shadowed_arcs_are_removed() {
        let (flat, lib) = fixture();
        let (out, _, stats) = eliminate_dead(&flat, &lib).unwrap();
        assert_eq!(stats.arcs_removed, 2);
        assert_eq!(out.graph.edge_count(), 1);
        let (_, e) = out.graph.edges().next().unwrap();
        assert_eq!(e.label, "x");
        // Output port untouched.
        assert_eq!(out.outputs, flat.outputs);
    }

    #[test]
    fn unreferenced_input_decl_is_trimmed_and_port_dropped() {
        let lib = lib_of(&["task T in a, unused out y begin y := a end"]);
        let mut g = TaskGraph::new("d");
        let t = g.add_task("t", 1.0);
        g.set_program(t, "T").unwrap();
        let flat = Flattened {
            graph: g,
            inputs: vec![
                ExternalPort {
                    var: "a".into(),
                    tasks: vec![t],
                },
                ExternalPort {
                    var: "unused".into(),
                    tasks: vec![t],
                },
            ],
            outputs: vec![ExternalPort {
                var: "y".into(),
                tasks: vec![t],
            }],
        };
        let (out, new_lib, stats) = eliminate_dead(&flat, &lib).unwrap();
        assert_eq!(stats.inputs_trimmed, 1);
        assert_eq!(stats.ports_removed, 1);
        assert_eq!(out.inputs.len(), 1);
        assert_eq!(out.inputs[0].var, "a");
        assert_eq!(new_lib.get("T").unwrap().inputs, vec!["a".to_string()]);
    }

    #[test]
    fn clean_design_is_a_noop() {
        let lib = lib_of(&[
            "task P in a out x begin x := a + 1 end",
            "task C in x out y begin y := x * 2 end",
        ]);
        let mut g = TaskGraph::new("d");
        let p = g.add_task("p", 1.0);
        let c = g.add_task("c", 1.0);
        g.set_program(p, "P").unwrap();
        g.set_program(c, "C").unwrap();
        g.add_edge(p, c, 1.0, "x").unwrap();
        let flat = Flattened {
            graph: g.clone(),
            inputs: vec![ExternalPort {
                var: "a".into(),
                tasks: vec![p],
            }],
            outputs: vec![ExternalPort {
                var: "y".into(),
                tasks: vec![c],
            }],
        };
        let (out, _, stats) = eliminate_dead(&flat, &lib).unwrap();
        assert!(stats.is_noop(), "{stats:?}");
        assert_eq!(out.graph, g);
    }
}
