//! Task fusion: materialising the grain packer's clusters as real tasks.
//!
//! [`banger_sched::grain::pack`] decides which tasks *should* run as one
//! grain by zeroing edges in a cost model — but until now the decision
//! only informed the schedule; the executor still paid per-task dispatch
//! for every original task. This pass rewrites the graph itself: the
//! PITS programs of the tasks in one cluster are renamed apart and
//! spliced into a single program
//! ([`banger_calc::transform::splice_programs`]), and the cluster
//! becomes one task whose weight is the exact sum of its members'.
//!
//! # Soundness
//!
//! Fusion is Outcome-preserving: for any external binding the fused
//! design produces byte-identical outputs and the same total operation
//! count. This holds because input binding and output collection are
//! free (0 ops) in the interpreter, statement costs are position
//! independent, and the splice keeps every statement. The safety
//! planner rejects any cluster where the variable-merge could change
//! values:
//!
//! - a member without a program, or with `print` statements (fusing
//!   would re-attribute console output);
//! - two members importing the same variable name from *different*
//!   sources (the fused program has one input slot per name);
//! - two members exporting the same pinned output name;
//! - a pinned input name colliding with a pinned output name (PITS
//!   programs may not declare a variable as both);
//! - a member that assigns one of its inputs whose merged variable has
//!   other readers (the original semantics give each consumer a private
//!   copy; the splice would leak the mutation).
//!
//! Rejected clusters are left as their original singleton tasks —
//! fusion degrades to a no-op rather than an unsound rewrite.

use std::collections::{BTreeMap, BTreeSet};

use banger_calc::ast::{Program, Stmt};
use banger_calc::library::ProgramLibrary;
use banger_calc::transform::{assigns_var, rename_vars, splice_programs};
use banger_sched::grain;
use banger_taskgraph::hierarchy::{ExternalPort, Flattened};
use banger_taskgraph::{TaskGraph, TaskId};

use crate::OptError;

/// What [`fuse`] did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuseStats {
    /// Task count before fusion.
    pub tasks_before: usize,
    /// Task count after fusion.
    pub tasks_after: usize,
    /// Clusters of two or more tasks that were fused.
    pub clusters_fused: usize,
    /// Clusters the safety planner rejected (left unfused).
    pub clusters_rejected: usize,
    /// Grain-model parallel-time estimate of the input graph.
    pub estimated_pt_before: f64,
    /// Grain-model parallel-time estimate of the fused graph.
    pub estimated_pt_after: f64,
}

/// Where a task's input variable comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// No in-arc carries the name: bound externally per firing.
    External,
    /// Produced by this task's first in-arc labelled with the name.
    Internal(TaskId),
}

/// The router binds an input from the first in-edge carrying its name.
fn source_of(g: &TaskGraph, t: TaskId, var: &str) -> Source {
    for &e in g.in_edges(t) {
        if g.edge(e).label == var {
            return Source::Internal(g.edge(e).src);
        }
    }
    Source::External
}

fn has_print(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Print { .. } => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => has_print(then_body) || has_print(else_body),
        Stmt::While { body, .. } | Stmt::For { body, .. } => has_print(body),
        Stmt::Assign { .. } | Stmt::AssignIndex { .. } => false,
    })
}

/// A fused cluster ready to be installed in the rewritten graph.
struct Plan {
    members: Vec<TaskId>,
    /// Spliced program; its `name` is finalised at registration time.
    program: Program,
    /// Pinned input name -> its required producer (`None` = external).
    pinned_inputs: BTreeMap<String, Option<TaskId>>,
}

/// Plans the fusion of one cluster, or returns `None` when any safety
/// rule fails. `members` must be in topological order of `g`.
fn plan_cluster(
    g: &TaskGraph,
    lib: &ProgramLibrary,
    members: &[TaskId],
    in_cluster: &dyn Fn(TaskId) -> bool,
    outputs: &[ExternalPort],
) -> Option<Plan> {
    let progs: Vec<&Program> = members
        .iter()
        .map(|&m| lib.get(g.task(m).program.as_deref()?))
        .collect::<Option<Vec<_>>>()?;
    if progs.iter().any(|p| has_print(&p.body)) {
        return None;
    }

    let is_output_port =
        |t: TaskId, var: &str| outputs.iter().any(|p| p.var == var && p.tasks.contains(&t));
    let out_label_count = |t: TaskId, var: &str| {
        g.out_edges(t)
            .iter()
            .filter(|&&e| g.edge(e).label == var)
            .count()
    };

    // Pinned inputs: variables the cluster imports from outside. Two
    // members may share a pinned name only when it denotes the same
    // value (identical source).
    let mut pinned_inputs: BTreeMap<String, Option<TaskId>> = BTreeMap::new();
    let mut pinned_input_order: Vec<String> = Vec::new();
    for (&m, prog) in members.iter().zip(&progs) {
        for v in &prog.inputs {
            let src = source_of(g, m, v);
            let boundary = match src {
                Source::External => None,
                Source::Internal(p) => {
                    if in_cluster(p) {
                        continue;
                    }
                    Some(p)
                }
            };
            match pinned_inputs.get(v) {
                Some(prev) if *prev != boundary => return None,
                Some(_) => {}
                None => {
                    pinned_inputs.insert(v.clone(), boundary);
                    pinned_input_order.push(v.clone());
                }
            }
        }
    }

    // Pinned outputs: variables consumed outside the cluster (by arcs
    // to foreign tasks or by design output ports). Each pinned name may
    // have exactly one producer among the members.
    let mut pinned_outputs: BTreeMap<String, TaskId> = BTreeMap::new();
    let mut pinned_output_order: Vec<String> = Vec::new();
    for (&m, prog) in members.iter().zip(&progs) {
        for o in &prog.outputs {
            let consumed = is_output_port(m, o)
                || g.out_edges(m)
                    .iter()
                    .any(|&e| g.edge(e).label == *o && !in_cluster(g.edge(e).dst));
            if consumed {
                if pinned_outputs.insert(o.clone(), m).is_some() {
                    return None;
                }
                pinned_output_order.push(o.clone());
            }
        }
    }
    if pinned_output_order
        .iter()
        .any(|o| pinned_inputs.contains_key(o))
    {
        return None;
    }

    // Mutation hazards: a member assigning an input variable mutates
    // the merged variable in place; reject when the original value had
    // any other observer.
    for (&m, prog) in members.iter().zip(&progs) {
        for v in &prog.inputs {
            if !assigns_var(&prog.body, v) {
                continue;
            }
            match source_of(g, m, v) {
                Source::External => {
                    let shared = members.iter().zip(&progs).any(|(&m2, p2)| {
                        m2 != m && p2.inputs.contains(v) && source_of(g, m2, v) == Source::External
                    });
                    if shared {
                        return None;
                    }
                }
                Source::Internal(p) if in_cluster(p) => {
                    if out_label_count(p, v) > 1 || is_output_port(p, v) {
                        return None;
                    }
                }
                Source::Internal(_) => {
                    let shared = members
                        .iter()
                        .zip(&progs)
                        .any(|(&m2, p2)| m2 != m && p2.inputs.contains(v));
                    if shared {
                        return None;
                    }
                }
            }
        }
    }

    // Rename members apart. Pinned names are claimed up front; every
    // internal producer-consumer pair unifies on the producer's spliced
    // output name.
    let mut claimed: BTreeSet<String> = pinned_inputs.keys().cloned().collect();
    claimed.extend(pinned_output_order.iter().cloned());
    let fresh = |base: &str, claimed: &mut BTreeSet<String>| -> String {
        if claimed.insert(base.to_string()) {
            return base.to_string();
        }
        let mut k = 2usize;
        loop {
            let cand = format!("{base}__{k}");
            if claimed.insert(cand.clone()) {
                return cand;
            }
            k += 1;
        }
    };
    let mut spliced_name: BTreeMap<(TaskId, String), String> = BTreeMap::new();
    let mut renamed: Vec<Program> = Vec::with_capacity(members.len());
    for (&m, prog) in members.iter().zip(&progs) {
        let mut map: BTreeMap<String, String> = BTreeMap::new();
        for v in &prog.inputs {
            match source_of(g, m, v) {
                Source::Internal(p) if in_cluster(p) => {
                    map.insert(v.clone(), spliced_name[&(p, v.clone())].clone());
                }
                _ => {
                    map.insert(v.clone(), v.clone());
                }
            }
        }
        for o in &prog.outputs {
            let name = if pinned_outputs.get(o) == Some(&m) {
                o.clone()
            } else {
                fresh(o, &mut claimed)
            };
            spliced_name.insert((m, o.clone()), name.clone());
            map.insert(o.clone(), name);
        }
        for l in &prog.locals {
            map.insert(l.clone(), fresh(l, &mut claimed));
        }
        renamed.push(rename_vars(prog, &map));
    }

    let parts: Vec<&Program> = renamed.iter().collect();
    let program = splice_programs("Fused", &parts, pinned_input_order, pinned_output_order);
    Some(Plan {
        members: members.to_vec(),
        program,
        pinned_inputs,
    })
}

/// Fuses tasks along the clustering chosen by the grain packer.
///
/// Equivalent to `fuse_with(flat, lib, &pack(graph).cluster_of)`.
pub fn fuse(
    flat: &Flattened,
    lib: &ProgramLibrary,
) -> Result<(Flattened, ProgramLibrary, FuseStats), OptError> {
    let packing = grain::pack(&flat.graph).map_err(OptError::Graph)?;
    fuse_with(flat, lib, &packing.cluster_of)
}

/// Fuses tasks along an explicit clustering (`cluster_of[t] = cluster id`
/// for each task index, as produced by [`grain::pack`]).
///
/// Clusters the safety planner rejects stay unfused. The returned
/// library contains the surviving original programs plus one spliced
/// program per fused cluster (named `Fused<k>`, de-collided against
/// existing names).
pub fn fuse_with(
    flat: &Flattened,
    lib: &ProgramLibrary,
    cluster_of: &[usize],
) -> Result<(Flattened, ProgramLibrary, FuseStats), OptError> {
    let g = &flat.graph;
    assert_eq!(
        cluster_of.len(),
        g.task_count(),
        "cluster_of must cover every task"
    );
    let topo = g.topo_order().map_err(OptError::Graph)?;
    let mut stats = FuseStats {
        tasks_before: g.task_count(),
        ..FuseStats::default()
    };
    let trivial: Vec<usize> = (0..g.task_count()).collect();
    stats.estimated_pt_before = grain::estimate_pt(g, &trivial).map_err(OptError::Graph)?;

    // Group members in topological order, then plan each multi-member
    // cluster; rejected clusters dissolve back into singletons.
    let mut members_of: BTreeMap<usize, Vec<TaskId>> = BTreeMap::new();
    for &t in &topo {
        members_of.entry(cluster_of[t.index()]).or_default().push(t);
    }
    let mut plans: BTreeMap<usize, Plan> = BTreeMap::new();
    for (&c, members) in &members_of {
        if members.len() < 2 {
            continue;
        }
        let in_cluster = |t: TaskId| cluster_of[t.index()] == c;
        match plan_cluster(g, lib, members, &in_cluster, &flat.outputs) {
            Some(plan) => {
                plans.insert(c, plan);
                stats.clusters_fused += 1;
            }
            None => {
                stats.clusters_rejected += 1;
            }
        }
    }

    // Final grouping: members of planned clusters share a group; every
    // other task is a singleton. Groups are numbered densely by first
    // appearance in topological order.
    let mut group: Vec<usize> = vec![usize::MAX; g.task_count()];
    let mut group_members: Vec<Vec<TaskId>> = Vec::new();
    for &t in &topo {
        if group[t.index()] != usize::MAX {
            continue;
        }
        let gid = group_members.len();
        match plans.get(&cluster_of[t.index()]) {
            Some(plan) => {
                for &m in &plan.members {
                    group[m.index()] = gid;
                }
                group_members.push(plan.members.clone());
            }
            None => {
                group[t.index()] = gid;
                group_members.push(vec![t]);
            }
        }
    }

    // Build the fused graph and its library.
    let mut new_lib = ProgramLibrary::new();
    let mut out = TaskGraph::new(g.name());
    let mut fused_plan: Vec<Option<&Plan>> = vec![None; group_members.len()];
    for (gid, members) in group_members.iter().enumerate() {
        if members.len() == 1 {
            let task = g.task(members[0]);
            let t = out.add_task(task.name.clone(), task.weight);
            if let Some(p) = &task.program {
                out.set_program(t, p.clone()).map_err(OptError::Graph)?;
                if new_lib.get(p).is_none() {
                    let prog = lib
                        .get(p)
                        .ok_or_else(|| OptError::UnknownProgram(p.clone()))?;
                    new_lib.add(prog.clone());
                }
            }
        } else {
            let plan = &plans[&cluster_of[members[0].index()]];
            fused_plan[gid] = Some(plan);
            let weight: f64 = members.iter().map(|&m| g.task(m).weight).sum();
            let t = out.add_task(format!("fuse{gid}_{}", members.len()), weight);
            let mut pname = format!("Fused{gid}");
            let mut k = 2usize;
            while lib.get(&pname).is_some() || new_lib.get(&pname).is_some() {
                pname = format!("Fused{gid}_{k}");
                k += 1;
            }
            let mut prog = plan.program.clone();
            prog.name = pname.clone();
            new_lib.add(prog);
            out.set_program(t, pname).map_err(OptError::Graph)?;
        }
    }

    // Inter-group edges, deduplicated by (src, dst, label) with the
    // maximum volume, in first-occurrence order (which preserves the
    // router's first-edge-wins binding for unfused consumers). Edges
    // into a fused group survive only when they carry one of its pinned
    // internal inputs from the planned producer's group — anything else
    // (dead labels, shadowed duplicates) would hijack a binding.
    let mut order: Vec<(TaskId, TaskId, String)> = Vec::new();
    let mut volume: BTreeMap<(TaskId, TaskId, String), f64> = BTreeMap::new();
    for (_, edge) in g.edges() {
        let gs = group[edge.src.index()];
        let gd = group[edge.dst.index()];
        if gs == gd {
            continue;
        }
        if let Some(plan) = fused_plan[gd] {
            let wanted = matches!(
                plan.pinned_inputs.get(&edge.label),
                Some(Some(p)) if group[p.index()] == gs
            );
            if !wanted {
                continue;
            }
        }
        let key = (TaskId(gs as u32), TaskId(gd as u32), edge.label.clone());
        match volume.get_mut(&key) {
            Some(v) => *v = v.max(edge.volume),
            None => {
                volume.insert(key.clone(), edge.volume);
                order.push(key);
            }
        }
    }
    for key in order {
        let vol = volume[&key];
        out.add_edge(key.0, key.1, vol, key.2.clone())
            .map_err(OptError::Graph)?;
    }

    // Ports. An input port's readers are the groups that still import
    // the variable externally; output ports map each writer to its
    // group (the pinned name survives by construction).
    let mut inputs: Vec<ExternalPort> = Vec::new();
    for port in &flat.inputs {
        let mut tasks: Vec<TaskId> = Vec::new();
        for &t in &port.tasks {
            let gid = group[t.index()];
            let reads = match fused_plan[gid] {
                None => true,
                Some(plan) => matches!(plan.pinned_inputs.get(&port.var), Some(None)),
            };
            let id = TaskId(gid as u32);
            if reads && !tasks.contains(&id) {
                tasks.push(id);
            }
        }
        if !tasks.is_empty() {
            inputs.push(ExternalPort {
                var: port.var.clone(),
                tasks,
            });
        }
    }
    let mut outputs: Vec<ExternalPort> = Vec::new();
    for port in &flat.outputs {
        let mut tasks: Vec<TaskId> = Vec::new();
        for &t in &port.tasks {
            let id = TaskId(group[t.index()] as u32);
            if !tasks.contains(&id) {
                tasks.push(id);
            }
        }
        outputs.push(ExternalPort {
            var: port.var.clone(),
            tasks,
        });
    }

    stats.tasks_after = out.task_count();
    let trivial_after: Vec<usize> = (0..out.task_count()).collect();
    stats.estimated_pt_after = grain::estimate_pt(&out, &trivial_after).map_err(OptError::Graph)?;

    Ok((
        Flattened {
            graph: out,
            inputs,
            outputs,
        },
        new_lib,
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_calc::parser::parse_program;

    fn lib_of(sources: &[&str]) -> ProgramLibrary {
        let mut lib = ProgramLibrary::new();
        for s in sources {
            lib.add(parse_program(s).unwrap());
        }
        lib
    }

    /// a ->(ext) P --x--> C --y--> (port y); P also keeps a side output.
    fn chain() -> (Flattened, ProgramLibrary) {
        let lib = lib_of(&[
            "task P in a out x begin x := a + 1 end",
            "task C in x out y begin y := x * 2 end",
        ]);
        let mut g = TaskGraph::new("d");
        let p = g.add_task("p", 3.0);
        let c = g.add_task("c", 4.0);
        g.set_program(p, "P").unwrap();
        g.set_program(c, "C").unwrap();
        g.add_edge(p, c, 1.0, "x").unwrap();
        let flat = Flattened {
            graph: g,
            inputs: vec![ExternalPort {
                var: "a".into(),
                tasks: vec![p],
            }],
            outputs: vec![ExternalPort {
                var: "y".into(),
                tasks: vec![c],
            }],
        };
        (flat, lib)
    }

    #[test]
    fn chain_fuses_to_one_task_with_summed_weight() {
        let (flat, lib) = chain();
        let (out, new_lib, stats) = fuse_with(&flat, &lib, &[0, 0]).unwrap();
        assert_eq!(stats.clusters_fused, 1);
        assert_eq!(out.graph.task_count(), 1);
        let (_, task) = out.graph.tasks().next().unwrap();
        assert_eq!(task.weight, 7.0);
        let prog = new_lib.get(task.program.as_deref().unwrap()).unwrap();
        assert_eq!(prog.inputs, vec!["a".to_string()]);
        assert_eq!(prog.outputs, vec!["y".to_string()]);
        // Ports follow the fused task.
        assert_eq!(out.inputs[0].tasks, vec![TaskId(0)]);
        assert_eq!(out.outputs[0].tasks, vec![TaskId(0)]);
    }

    #[test]
    fn fused_outcome_matches_original_exactly() {
        use banger_exec::{execute, ExecOptions};
        let (flat, lib) = fuse_fixture();
        let (fused, fused_lib, stats) = fuse_with(&flat, &lib, &[0, 0, 0, 1]).unwrap();
        assert_eq!(stats.clusters_fused, 1);
        let mut ext = std::collections::BTreeMap::new();
        ext.insert("a".to_string(), banger_calc::Value::Num(5.0));
        let opts = ExecOptions::default();
        let before = execute(&flat, &lib, &ext, &opts).unwrap();
        let after = execute(&fused, &fused_lib, &ext, &opts).unwrap();
        assert_eq!(before.outputs, after.outputs);
        assert_eq!(before.total_ops(), after.total_ops());
    }

    /// Diamond: P feeds L and R; J joins them; J stays out of the cluster.
    fn fuse_fixture() -> (Flattened, ProgramLibrary) {
        let lib = lib_of(&[
            "task P in a out x begin x := a * a end",
            "task L in x out u begin u := x + 1 end",
            "task R in x out v begin v := x - 1 end",
            "task J in u, v out w begin w := u * v end",
        ]);
        let mut g = TaskGraph::new("d");
        let p = g.add_task("p", 1.0);
        let l = g.add_task("l", 1.0);
        let r = g.add_task("r", 1.0);
        let j = g.add_task("j", 1.0);
        for (t, n) in [(p, "P"), (l, "L"), (r, "R"), (j, "J")] {
            g.set_program(t, n).unwrap();
        }
        g.add_edge(p, l, 1.0, "x").unwrap();
        g.add_edge(p, r, 1.0, "x").unwrap();
        g.add_edge(l, j, 1.0, "u").unwrap();
        g.add_edge(r, j, 1.0, "v").unwrap();
        let flat = Flattened {
            graph: g,
            inputs: vec![ExternalPort {
                var: "a".into(),
                tasks: vec![p],
            }],
            outputs: vec![ExternalPort {
                var: "w".into(),
                tasks: vec![j],
            }],
        };
        (flat, lib)
    }

    #[test]
    fn print_members_are_rejected() {
        let lib = lib_of(&[
            "task P in a out x begin x := a + 1 print x end",
            "task C in x out y begin y := x * 2 end",
        ]);
        let mut g = TaskGraph::new("d");
        let p = g.add_task("p", 1.0);
        let c = g.add_task("c", 1.0);
        g.set_program(p, "P").unwrap();
        g.set_program(c, "C").unwrap();
        g.add_edge(p, c, 1.0, "x").unwrap();
        let flat = Flattened {
            graph: g.clone(),
            inputs: vec![],
            outputs: vec![ExternalPort {
                var: "y".into(),
                tasks: vec![c],
            }],
        };
        let (out, _, stats) = fuse_with(&flat, &lib, &[0, 0]).unwrap();
        assert_eq!(stats.clusters_rejected, 1);
        assert_eq!(out.graph.task_count(), 2);
        assert_eq!(out.graph, g);
    }

    #[test]
    fn input_mutation_with_other_readers_is_rejected() {
        // M mutates its input x, which P also sends to S (another
        // reader): fusing {P, M} would leak the mutation to S.
        let lib = lib_of(&[
            "task P in a out x begin x := a + 1 end",
            "task M in x out y begin x := x * 2 y := x end",
            "task S in x out z begin z := x + 10 end",
        ]);
        let mut g = TaskGraph::new("d");
        let p = g.add_task("p", 1.0);
        let m = g.add_task("m", 1.0);
        let s = g.add_task("s", 1.0);
        for (t, n) in [(p, "P"), (m, "M"), (s, "S")] {
            g.set_program(t, n).unwrap();
        }
        g.add_edge(p, m, 1.0, "x").unwrap();
        g.add_edge(p, s, 1.0, "x").unwrap();
        let flat = Flattened {
            graph: g,
            inputs: vec![ExternalPort {
                var: "a".into(),
                tasks: vec![p],
            }],
            outputs: vec![
                ExternalPort {
                    var: "y".into(),
                    tasks: vec![m],
                },
                ExternalPort {
                    var: "z".into(),
                    tasks: vec![s],
                },
            ],
        };
        let (out, _, stats) = fuse_with(&flat, &lib, &[0, 0, 1]).unwrap();
        assert_eq!(stats.clusters_rejected, 1);
        assert_eq!(out.graph.task_count(), 3);
    }

    #[test]
    fn default_clustering_comes_from_grain_pack() {
        let (flat, lib) = chain();
        // Whatever pack decides, the result must stay a DAG with total
        // weight preserved.
        let (out, _, stats) = fuse(&flat, &lib).unwrap();
        assert!(out.graph.is_dag());
        assert!((out.graph.total_weight() - flat.graph.total_weight()).abs() < 1e-9);
        assert!(stats.tasks_after <= stats.tasks_before);
    }
}
