//! Graph-rewrite optimizer for Banger designs.
//!
//! The paper's environment asks non-programmers to draw task graphs at
//! whatever granularity is natural to *describe* the computation. That
//! granularity is usually wrong for *executing* it: overhead-bound
//! designs spend more time in per-task dispatch than in arithmetic, and
//! fixed-size templates cannot express "one task per tile" data
//! parallelism. This crate closes the gap with three rewrite passes over
//! the flattened task graph:
//!
//! - [`dce::eliminate_dead`] — drops arcs whose label feeds no program
//!   input, duplicate-label arcs the router would ignore anyway, and
//!   input declarations no statement ever reads. Outcome-preserving
//!   (values *and* total interpreter ops are byte-identical).
//! - [`fuse::fuse`] — lifts the scheduler's grain-packing decision
//!   ([`banger_sched::grain::pack`]) from an edge-zeroing cost model
//!   into an actual graph transform: the PITS programs of the tasks in
//!   one cluster are spliced into a single program (via
//!   [`banger_calc::transform::splice_programs`]) and the cluster
//!   becomes one task. Outcome-preserving; clusters where fusion cannot
//!   be proven safe are left unfused rather than transformed unsoundly.
//! - [`expand::expand_dense_lu`] — the inverse direction: recognises a
//!   dense-LU template task and expands it in place into a tiled
//!   right-looking block-LU compound with one task per tile step.
//!   Value-preserving (the factorisation is bit-identical because the
//!   per-element operation sequence is unchanged) but not ops-preserving
//!   (scatter/gather copies cost extra ops by construction).
//!
//! [`rebuild::flat_to_design`] turns an optimised [`Flattened`] graph
//! back into a flat [`banger_taskgraph::HierGraph`] so the rest of the
//! toolchain (diagnose, schedule, execute, trace) needs no new code
//! paths.
//!
//! # Soundness contract
//!
//! A rewrite is *Outcome-preserving* when, for every external binding,
//! the optimised design produces byte-identical output values and the
//! same total operation count as the original on both execution engines.
//! `fuse` and `eliminate_dead` are Outcome-preserving; `expand` preserves
//! values only. The property suite in `tests/prop_fuse.rs` checks this
//! differentially on randomly generated designs.

use banger_taskgraph::GraphError;

pub mod dce;
pub mod expand;
pub mod fuse;
pub mod rebuild;

pub use dce::{eliminate_dead, DceStats};
pub use expand::{dense_lu_program, expand_dense_lu, ExpandStats};
pub use fuse::{fuse, fuse_with, FuseStats};
pub use rebuild::flat_to_design;

/// Errors from the optimizer passes.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// A graph-structural operation failed (cycle, duplicate arc, ...).
    Graph(GraphError),
    /// A task references a program the library does not contain.
    UnknownProgram(String),
    /// A named task does not exist in the design.
    UnknownTask(String),
    /// The task named for expansion is not a recognised template.
    NotATemplate(String),
    /// The requested tiling does not divide the template's problem size.
    BadTiling {
        /// Template problem size (matrix dimension `n`).
        n: usize,
        /// Requested tile count per dimension.
        tiles: usize,
    },
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::Graph(e) => write!(f, "graph error: {e}"),
            OptError::UnknownProgram(p) => write!(f, "unknown program {p:?}"),
            OptError::UnknownTask(t) => write!(f, "unknown task {t:?}"),
            OptError::NotATemplate(t) => write!(
                f,
                "task {t:?} is not a recognised data-parallel template \
                 (expected the dense-LU shape; see banger_opt::dense_lu_program)"
            ),
            OptError::BadTiling { n, tiles } => write!(
                f,
                "cannot tile an n={n} template into {tiles}x{tiles} blocks: \
                 tiles must be >= 2 and divide n"
            ),
        }
    }
}

impl std::error::Error for OptError {}

impl From<GraphError> for OptError {
    fn from(e: GraphError) -> Self {
        OptError::Graph(e)
    }
}
