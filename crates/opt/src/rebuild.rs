//! Rebuilding a [`HierGraph`] design from an optimised [`Flattened`]
//! graph.
//!
//! The optimizer passes work on the flat task graph, but the rest of the
//! toolchain — diagnostics, the document format, scheduling, execution —
//! consumes hierarchical designs. This module closes the loop: the flat
//! graph becomes a single-level design whose storage nodes are exactly
//! the external ports. Flattening the rebuilt design reproduces the
//! optimised graph with task and arc order preserved, so the router's
//! first-edge-wins input bindings are unchanged.

use std::collections::BTreeMap;

use banger_taskgraph::hierarchy::{Flattened, HierGraph};
use banger_taskgraph::GraphError;

/// Converts a flattened graph back into a flat (depth-1) design.
///
/// `sizes` supplies storage sizes for port variables (from the original
/// design); ports without an entry default to size `1.0`.
pub fn flat_to_design(
    name: &str,
    flat: &Flattened,
    sizes: &BTreeMap<String, f64>,
) -> Result<HierGraph, GraphError> {
    let mut design = HierGraph::new(name);
    let size_of = |var: &str| sizes.get(var).copied().unwrap_or(1.0);

    // Tasks first, in task-id order, so the rebuilt flatten assigns the
    // same ids.
    let g = &flat.graph;
    let mut node_of = Vec::with_capacity(g.task_count());
    for (_, task) in g.tasks() {
        let id = match &task.program {
            Some(p) => design.add_task_with_program(task.name.clone(), task.weight, p.clone()),
            None => design.add_task(task.name.clone(), task.weight),
        };
        node_of.push(id);
    }

    // Input storage feeds its readers; task-to-task arcs carry over in
    // edge order; output storage collects its writers.
    for port in &flat.inputs {
        let s = design.add_storage(port.var.clone(), size_of(&port.var));
        for &t in &port.tasks {
            design.add_flow(s, node_of[t.index()])?;
        }
    }
    for (_, edge) in g.edges() {
        design.add_arc(
            node_of[edge.src.index()],
            node_of[edge.dst.index()],
            edge.label.clone(),
            edge.volume,
        )?;
    }
    for port in &flat.outputs {
        let s = design.add_storage(port.var.clone(), size_of(&port.var));
        for &t in &port.tasks {
            design.add_flow(node_of[t.index()], s)?;
        }
    }
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_taskgraph::hierarchy::ExternalPort;
    use banger_taskgraph::TaskGraph;

    #[test]
    fn rebuild_round_trips_through_flatten() {
        let mut g = TaskGraph::new("d");
        let p = g.add_task("p", 3.0);
        let c = g.add_task("c", 4.0);
        g.set_program(p, "P").unwrap();
        g.set_program(c, "C").unwrap();
        g.add_edge(p, c, 2.0, "x").unwrap();
        let flat = Flattened {
            graph: g,
            inputs: vec![ExternalPort {
                var: "a".into(),
                tasks: vec![p],
            }],
            outputs: vec![ExternalPort {
                var: "y".into(),
                tasks: vec![c],
            }],
        };
        let mut sizes = BTreeMap::new();
        sizes.insert("a".to_string(), 9.0);
        let design = flat_to_design("d", &flat, &sizes).unwrap();
        let again = design.flatten().unwrap();
        assert_eq!(again.graph, flat.graph);
        assert_eq!(again.inputs, flat.inputs);
        assert_eq!(again.outputs, flat.outputs);
    }
}
