//! Map expansion: tiling a dense-LU template task into a data-parallel
//! compound.
//!
//! A template node describes a whole-array computation at drawing
//! granularity — one box, one program, no parallelism. This pass
//! recognises the dense LU factorisation template (the exact shape
//! produced by [`dense_lu_program`]) and replaces the node *in place*
//! ([`banger_taskgraph::HierGraph::replace_task_with_compound`]) with a
//! tiled right-looking block-LU expansion: one scatter task per tile,
//! a chain of rank-`b` update (gemm) tasks, a factor/solve kernel per
//! tile, and a gather that reassembles the full matrix. For `tiles = T`
//! the compound holds `T^2` scatters, `sum(min(i,j))` gemms, `T^2`
//! kernels, `T^2` relabel copies and one gather — thousands of tasks at
//! `T = 16`, all from one drawn node.
//!
//! # Value preservation
//!
//! The expansion is *bit-identical* in values: the per-element sequence
//! of floating-point operations (update steps ascending, division before
//! the row's updates, columns ascending) is exactly the dense template's,
//! and every operand a tiled kernel reads is already at its final dense
//! value when read. It is *not* ops-preserving — scatter, gather and the
//! per-tile copies cost extra interpreter operations by construction.
//!
//! # PITS naming constraints
//!
//! A PITS program may not declare one variable as both input and output,
//! so the working-tile chain alternates between `z0` and `z1`: each
//! kernel comes in an even variant (reads `z0`) and an odd variant
//! (reads `z1`), chosen by how many gemm steps precede it. Kernel
//! programs are shared across tiles; scatter/relabel/gather programs are
//! per-tile because their offsets (and the router's name-binding
//! contract: producer output = arc label = consumer input) require
//! distinct names.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use banger_calc::ast::{Expr, Program, Stmt};
use banger_calc::library::ProgramLibrary;
use banger_calc::parser::parse_program;
use banger_taskgraph::hierarchy::{HierGraph, HierNodeId, NodeKind};

use crate::OptError;

/// What [`expand_dense_lu`] built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandStats {
    /// Tiles per dimension.
    pub tiles: usize,
    /// Block (tile) edge length `n / tiles`.
    pub block: usize,
    /// Tasks inside the generated compound.
    pub tasks_added: usize,
    /// Programs added to the library.
    pub programs_added: usize,
}

/// Generates the dense LU factorisation template: Doolittle elimination,
/// row-major 1-based indexing, no pivoting — the same operation order as
/// [`banger::lu::solve_reference`]'s factor phase.
///
/// This is both a usable program and the *recognition pattern* for
/// [`expand_dense_lu`]: a task qualifies for expansion exactly when its
/// program structurally equals `dense_lu_program(name, a, lu, n)` for
/// its declared input `a` and output `lu`.
pub fn dense_lu_program(name: &str, a: &str, lu: &str, n: usize) -> Program {
    let mut s = String::new();
    let _ = writeln!(s, "task {name}");
    let _ = writeln!(s, "  in {a}");
    let _ = writeln!(s, "  out {lu}");
    let _ = writeln!(s, "  local t, r, c");
    let _ = writeln!(s, "begin");
    let _ = writeln!(s, "  {lu} := {a}");
    let _ = writeln!(s, "  for t := 1 to {} do", n - 1);
    let _ = writeln!(s, "    for r := t + 1 to {n} do");
    let _ = writeln!(
        s,
        "      {lu}[(r - 1) * {n} + t] := {lu}[(r - 1) * {n} + t] / {lu}[(t - 1) * {n} + t]"
    );
    let _ = writeln!(s, "      for c := t + 1 to {n} do");
    let _ = writeln!(
        s,
        "        {lu}[(r - 1) * {n} + c] := {lu}[(r - 1) * {n} + c] - \
         {lu}[(r - 1) * {n} + t] * {lu}[(t - 1) * {n} + c]"
    );
    let _ = writeln!(s, "      end");
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "  end");
    let _ = writeln!(s, "end");
    parse_program(&s).expect("generated dense LU template parses")
}

/// Recognises a dense-LU template and returns `(input, output, n)`.
fn recognize(prog: &Program) -> Option<(String, String, usize)> {
    if prog.inputs.len() != 1 || prog.outputs.len() != 1 {
        return None;
    }
    let n = match prog.body.get(1)? {
        Stmt::For {
            to: Expr::Num(x), ..
        } if *x >= 1.0 && x.fract() == 0.0 => *x as usize + 1,
        _ => return None,
    };
    let (a, lu) = (prog.inputs[0].clone(), prog.outputs[0].clone());
    let template = dense_lu_program(&prog.name, &a, &lu, n);
    (*prog == template).then_some((a, lu, n))
}

/// Even/odd working-tile variable for a chain position.
fn zvar(parity: usize) -> &'static str {
    if parity.is_multiple_of(2) {
        "z0"
    } else {
        "z1"
    }
}

fn parity_suffix(parity: usize) -> &'static str {
    if parity.is_multiple_of(2) {
        "e"
    } else {
        "o"
    }
}

/// The shared factor/update kernels, two parity variants each.
fn kernel_programs(prefix: &str, b: usize) -> Vec<Program> {
    let mut progs = Vec::new();
    for p in 0..2 {
        let (zin, zout, sfx) = (zvar(p), zvar(p + 1), parity_suffix(p));

        // getrf: dense LU of the diagonal tile (template restricted to
        // one block).
        let mut s = String::new();
        let _ = writeln!(
            s,
            "task {prefix}_getrf_{sfx} in {zin} out f local t, r, c begin"
        );
        let _ = writeln!(s, "  f := {zin}");
        let _ = writeln!(s, "  for t := 1 to {} do", b - 1);
        let _ = writeln!(s, "    for r := t + 1 to {b} do");
        let _ = writeln!(
            s,
            "      f[(r - 1) * {b} + t] := f[(r - 1) * {b} + t] / f[(t - 1) * {b} + t]"
        );
        let _ = writeln!(s, "      for c := t + 1 to {b} do");
        let _ = writeln!(
            s,
            "        f[(r - 1) * {b} + c] := f[(r - 1) * {b} + c] - \
             f[(r - 1) * {b} + t] * f[(t - 1) * {b} + c]"
        );
        let _ = writeln!(s, "      end end end end");
        progs.push(parse_program(&s).expect("getrf parses"));

        // trsmr: U block right of the diagonal — the remaining update
        // steps of its own block row (no divisions land in it).
        let mut s = String::new();
        let _ = writeln!(
            s,
            "task {prefix}_trsmr_{sfx} in f, {zin} out u local t, r, c begin"
        );
        let _ = writeln!(s, "  u := {zin}");
        let _ = writeln!(s, "  for t := 1 to {} do", b - 1);
        let _ = writeln!(s, "    for r := t + 1 to {b} do");
        let _ = writeln!(s, "      for c := 1 to {b} do");
        let _ = writeln!(
            s,
            "        u[(r - 1) * {b} + c] := u[(r - 1) * {b} + c] - \
             f[(r - 1) * {b} + t] * u[(t - 1) * {b} + c]"
        );
        let _ = writeln!(s, "      end end end end");
        progs.push(parse_program(&s).expect("trsmr parses"));

        // trsmc: L block below the diagonal — divisions by the pivot
        // diagonal plus trailing updates inside the block column.
        let mut s = String::new();
        let _ = writeln!(
            s,
            "task {prefix}_trsmc_{sfx} in f, {zin} out l local t, r, c begin"
        );
        let _ = writeln!(s, "  l := {zin}");
        let _ = writeln!(s, "  for t := 1 to {b} do");
        let _ = writeln!(s, "    for r := 1 to {b} do");
        let _ = writeln!(
            s,
            "      l[(r - 1) * {b} + t] := l[(r - 1) * {b} + t] / f[(t - 1) * {b} + t]"
        );
        let _ = writeln!(s, "      for c := t + 1 to {b} do");
        let _ = writeln!(
            s,
            "        l[(r - 1) * {b} + c] := l[(r - 1) * {b} + c] - \
             l[(r - 1) * {b} + t] * f[(t - 1) * {b} + c]"
        );
        let _ = writeln!(s, "      end end end end");
        progs.push(parse_program(&s).expect("trsmc parses"));

        // gemm: one rank-b update block-step, alternating the chain
        // variable (PITS forbids `in z out z`).
        let mut s = String::new();
        let _ = writeln!(
            s,
            "task {prefix}_gemm_{sfx} in l, u, {zin} out {zout} local t, r, c begin"
        );
        let _ = writeln!(s, "  {zout} := {zin}");
        let _ = writeln!(s, "  for t := 1 to {b} do");
        let _ = writeln!(s, "    for r := 1 to {b} do");
        let _ = writeln!(s, "      for c := 1 to {b} do");
        let _ = writeln!(
            s,
            "        {zout}[(r - 1) * {b} + c] := {zout}[(r - 1) * {b} + c] - \
             l[(r - 1) * {b} + t] * u[(t - 1) * {b} + c]"
        );
        let _ = writeln!(s, "      end end end end");
        progs.push(parse_program(&s).expect("gemm parses"));
    }
    progs
}

/// Expands the named top-level dense-LU template task of `design` into a
/// `tiles x tiles` block-LU compound, registering the generated programs
/// in `lib`. The node keeps its id, so surrounding arcs stay attached;
/// the compound imports the template's input variable and exports its
/// output variable.
pub fn expand_dense_lu(
    design: &mut HierGraph,
    task: &str,
    lib: &mut ProgramLibrary,
    tiles: usize,
) -> Result<ExpandStats, OptError> {
    let (node_id, pname) = find_template_task(design, task)?;
    let prog = lib
        .get(&pname)
        .ok_or_else(|| OptError::UnknownProgram(pname.clone()))?;
    let (a, lu, n) = recognize(prog).ok_or_else(|| OptError::NotATemplate(task.to_string()))?;
    if tiles < 2 || n % tiles != 0 || n / tiles < 2 {
        return Err(OptError::BadTiling { n, tiles });
    }
    let b = n / tiles;

    // A fresh name prefix for the generated programs (collision-bumped
    // against the library).
    let mut prefix = pname.clone();
    while lib.get(&format!("{prefix}_gather")).is_some() {
        prefix.push_str("_x");
    }

    let mut programs = kernel_programs(&prefix, b);

    // Per-tile scatter: copy tile (i, j) out of the full matrix.
    for i in 0..tiles {
        for j in 0..tiles {
            let (ro, co) = (i * b, j * b);
            let mut s = String::new();
            let _ = writeln!(s, "task {prefix}_sc_{i}_{j} in {a} out z0 local r, c begin");
            let _ = writeln!(s, "  z0 := zeros({})", b * b);
            let _ = writeln!(s, "  for r := 1 to {b} do for c := 1 to {b} do");
            let _ = writeln!(
                s,
                "    z0[(r - 1) * {b} + c] := {a}[(r + {ro} - 1) * {n} + c + {co}]"
            );
            let _ = writeln!(s, "  end end end");
            programs.push(parse_program(&s).expect("scatter parses"));
        }
    }

    // Per-tile relabel: give each finished tile a unique variable name
    // so the gather can import all of them (a whole-array copy-on-write
    // assignment: one operation, no element copies).
    for i in 0..tiles {
        for j in 0..tiles {
            let src = kernel_output(i, j);
            let mut s = String::new();
            let _ = writeln!(
                s,
                "task {prefix}_rl_{i}_{j} in {src} out q_{i}_{j} begin q_{i}_{j} := {src} end"
            );
            programs.push(parse_program(&s).expect("relabel parses"));
        }
    }

    // Gather: assemble the full factored matrix from all tiles.
    let mut s = String::new();
    let _ = write!(s, "task {prefix}_gather in ");
    for i in 0..tiles {
        for j in 0..tiles {
            if i + j > 0 {
                let _ = write!(s, ", ");
            }
            let _ = write!(s, "q_{i}_{j}");
        }
    }
    let _ = writeln!(s, " out {lu} local r, c begin");
    let _ = writeln!(s, "  {lu} := zeros({})", n * n);
    for i in 0..tiles {
        for j in 0..tiles {
            let (ro, co) = (i * b, j * b);
            let _ = writeln!(s, "  for r := 1 to {b} do for c := 1 to {b} do");
            let _ = writeln!(
                s,
                "    {lu}[(r + {ro} - 1) * {n} + c + {co}] := q_{i}_{j}[(r - 1) * {b} + c]"
            );
            let _ = writeln!(s, "  end end");
        }
    }
    let _ = writeln!(s, "end");
    programs.push(parse_program(&s).expect("gather parses"));

    let programs_added = programs.len();
    for p in programs {
        lib.add(p);
    }
    let weight = |name: &str| -> f64 { lib.estimate_weight(name).unwrap_or(1.0).max(1.0) };

    // Build the inner design.
    let mut inner = HierGraph::new(format!("{task}_tiled"));
    let vol = (b * b) as f64;
    let mut scatter: BTreeMap<(usize, usize), HierNodeId> = BTreeMap::new();
    let mut kernel: BTreeMap<(usize, usize), HierNodeId> = BTreeMap::new();
    let mut chain_end: BTreeMap<(usize, usize), HierNodeId> = BTreeMap::new();
    for i in 0..tiles {
        for j in 0..tiles {
            let sc = inner.add_task_with_program(
                format!("sc_{i}_{j}"),
                weight(&format!("{prefix}_sc_{i}_{j}")),
                format!("{prefix}_sc_{i}_{j}"),
            );
            scatter.insert((i, j), sc);
            chain_end.insert((i, j), sc);
        }
    }
    // Kernel + gemm chain per tile, in block-step order so every arc's
    // producer node already exists.
    for i in 0..tiles {
        for j in 0..tiles {
            let steps = i.min(j);
            let mut prev = chain_end[&(i, j)];
            for t in 0..steps {
                let g = format!("{prefix}_gemm_{}", parity_suffix(t));
                let mm = inner.add_task_with_program(format!("mm_{i}_{j}_{t}"), weight(&g), g);
                inner.add_arc(prev, mm, zvar(t), vol)?;
                prev = mm;
            }
            let kname = format!("{prefix}_{}_{}", kernel_kind(i, j), parity_suffix(steps));
            let k = inner.add_task_with_program(format!("k_{i}_{j}"), weight(&kname), kname);
            inner.add_arc(prev, k, zvar(steps), vol)?;
            kernel.insert((i, j), k);
        }
    }
    // Cross-tile dependencies: factor panels feed the updates.
    for i in 0..tiles {
        for j in 0..tiles {
            let steps = i.min(j);
            for t in 0..steps {
                let mm_name = format!("mm_{i}_{j}_{t}");
                let mm = find_inner(&inner, &mm_name);
                inner.add_arc(kernel[&(i, t)], mm, "l", vol)?;
                inner.add_arc(kernel[&(t, j)], mm, "u", vol)?;
            }
            if i != j {
                let diag = if i > j { (j, j) } else { (i, i) };
                inner.add_arc(kernel[&diag], kernel[&(i, j)], "f", vol)?;
            }
        }
    }
    // Relabel + gather.
    let gather = inner.add_task_with_program(
        "gather",
        weight(&format!("{prefix}_gather")),
        format!("{prefix}_gather"),
    );
    for i in 0..tiles {
        for j in 0..tiles {
            let rl = inner.add_task_with_program(
                format!("rl_{i}_{j}"),
                weight(&format!("{prefix}_rl_{i}_{j}")),
                format!("{prefix}_rl_{i}_{j}"),
            );
            inner.add_arc(kernel[&(i, j)], rl, kernel_output(i, j), vol)?;
            inner.add_arc(rl, gather, format!("q_{i}_{j}"), vol)?;
        }
    }

    let tasks_added = inner.leaf_task_count();
    let mut inputs = BTreeMap::new();
    inputs.insert(a, scatter.values().copied().collect::<Vec<_>>());
    let mut outputs = BTreeMap::new();
    outputs.insert(lu, vec![gather]);
    design.replace_task_with_compound(node_id, inner, inputs, outputs)?;

    Ok(ExpandStats {
        tiles,
        block: b,
        tasks_added,
        programs_added,
    })
}

/// The variable a tile's terminal kernel produces.
fn kernel_output(i: usize, j: usize) -> &'static str {
    use std::cmp::Ordering::*;
    match i.cmp(&j) {
        Equal => "f",
        Less => "u",
        Greater => "l",
    }
}

fn kernel_kind(i: usize, j: usize) -> &'static str {
    use std::cmp::Ordering::*;
    match i.cmp(&j) {
        Equal => "getrf",
        Less => "trsmr",
        Greater => "trsmc",
    }
}

fn find_inner(inner: &HierGraph, name: &str) -> HierNodeId {
    inner
        .nodes()
        .find(|(_, n)| n.name == name)
        .map(|(id, _)| id)
        .expect("inner node exists by construction")
}

fn find_template_task(design: &HierGraph, task: &str) -> Result<(HierNodeId, String), OptError> {
    for (id, node) in design.nodes() {
        if node.name == task {
            return match &node.kind {
                NodeKind::Task {
                    program: Some(p), ..
                } => Ok((id, p.clone())),
                _ => Err(OptError::NotATemplate(task.to_string())),
            };
        }
    }
    Err(OptError::UnknownTask(task.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_calc::Value;
    use banger_exec::{execute, ExecOptions};
    use std::collections::BTreeMap as Map;

    /// A design with one dense-LU template node: A -> lu -> LU.
    fn template_design(n: usize) -> (HierGraph, ProgramLibrary) {
        let mut lib = ProgramLibrary::new();
        lib.add(dense_lu_program("DenseLU", "A", "LU", n));
        let mut g = HierGraph::new("lu");
        let a = g.add_storage("A", (n * n) as f64);
        let t = g.add_task_with_program("lu", (n * n * n) as f64, "DenseLU");
        let out = g.add_storage("LU", (n * n) as f64);
        g.add_flow(a, t).unwrap();
        g.add_flow(t, out).unwrap();
        (g, lib)
    }

    fn run(design: &HierGraph, lib: &ProgramLibrary, a: &[f64]) -> Vec<f64> {
        let flat = design.flatten().unwrap();
        let mut ext = Map::new();
        ext.insert("A".to_string(), Value::array(a.to_vec()));
        let report = execute(&flat, lib, &ext, &ExecOptions::default()).unwrap();
        report.outputs["LU"].as_array("LU").unwrap().to_vec()
    }

    #[test]
    fn template_is_recognised_and_nontemplates_are_not() {
        let (_, lib) = template_design(8);
        assert!(recognize(lib.get("DenseLU").unwrap()).is_some());
        let other = parse_program("task T in a out b begin b := a end").unwrap();
        assert!(recognize(&other).is_none());
    }

    #[test]
    fn tiled_expansion_is_bit_identical_to_dense() {
        let n = 8;
        let (design, lib) = template_design(n);
        // Deterministic well-conditioned matrix.
        let a: Vec<f64> = (0..n * n)
            .map(|k| {
                let (i, j) = (k / n, k % n);
                if i == j {
                    (n + 2) as f64
                } else {
                    1.0 + ((i * 3 + j * 7) % 5) as f64 * 0.25
                }
            })
            .collect();
        let dense = run(&design, &lib, &a);

        let (mut tiled, mut tiled_lib) = template_design(n);
        let stats = expand_dense_lu(&mut tiled, "lu", &mut tiled_lib, 2).unwrap();
        assert_eq!(stats.block, 4);
        let got = run(&tiled, &tiled_lib, &a);
        assert_eq!(dense.len(), got.len());
        for (k, (d, g)) in dense.iter().zip(&got).enumerate() {
            assert!(
                d.to_bits() == g.to_bits(),
                "element {k}: dense {d:?} vs tiled {g:?}"
            );
        }
    }

    #[test]
    fn expansion_task_count_scales_with_tiles() {
        let n = 16;
        let (mut design, mut lib) = template_design(n);
        let stats = expand_dense_lu(&mut design, "lu", &mut lib, 4).unwrap();
        // T^2 scatters + sum(min(i,j)) gemms + T^2 kernels + T^2
        // relabels + 1 gather.
        let t = 4usize;
        let gemms: usize = (0..t).flat_map(|i| (0..t).map(move |j| i.min(j))).sum();
        assert_eq!(stats.tasks_added, 3 * t * t + gemms + 1);
        assert_eq!(design.leaf_task_count(), stats.tasks_added);
        assert!(design.flatten().is_ok());
    }

    #[test]
    fn bad_tilings_are_rejected() {
        let (mut design, mut lib) = template_design(8);
        for tiles in [0, 1, 3, 8] {
            let err = expand_dense_lu(&mut design, "lu", &mut lib, tiles);
            assert!(
                matches!(err, Err(OptError::BadTiling { .. })),
                "tiles={tiles}: {err:?}"
            );
        }
        assert!(matches!(
            expand_dense_lu(&mut design, "nosuch", &mut lib, 2),
            Err(OptError::UnknownTask(_))
        ));
    }
}
