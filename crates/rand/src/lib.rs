//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the narrow slice of the rand 0.8 API it actually uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float ranges,
//! and `Rng::gen_bool`. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic, fast, and good enough for test-graph generation (we make no
//! statistical claims beyond that). The stream differs from upstream rand's
//! ChaCha-based `StdRng`, which only shifts which random graphs the seeds
//! denote; all consumers treat seeds as opaque.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Map 64 random bits onto [0, 1) with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased integer in [0, n) via Lemire's multiply-shift with rejection.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty sample range");
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * n as u128) >> 64) as u64;
        let lo = x.wrapping_mul(n);
        // Rejection only matters in the tiny biased tail.
        if lo >= n || lo >= n.wrapping_neg() % n {
            return hi;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty gen_range");
                let span = (b as i128 - a as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                (a as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty gen_range");
                a + (unit_f64(rng.next_u64()) as $t) * (b - a)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(1994);
        let mut b = StdRng::seed_from_u64(1994);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let z = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
