//! The paper's four-parameter machine cost model, combined with a topology
//! and routing into a complete target-machine description.
//!
//! > "A program is tailored to a certain machine by considering the
//! > following characteristics of the target machine: 1. Processor speed
//! > 2. Process startup time 3. Message passing startup time 4. Message
//! > transmission speed."  — Lewis, ICPP 1994
//!
//! Time is dimensionless ("time units"); weights are "operations" and
//! volumes are "data units". With the defaults, one unit of work takes one
//! time unit on a unit-speed processor.

use crate::routing::RoutingTable;
use crate::topology::{ProcId, Topology};

/// How messages traverse multi-hop routes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchingMode {
    /// 1990s-style store-and-forward: the full message is retransmitted on
    /// every hop, so transfer time scales with `hops * volume`.
    StoreAndForward,
    /// Cut-through / wormhole: the message pipeline crosses hops with a
    /// small per-hop latency; transfer time is `hops * hop_latency +
    /// volume / rate`.
    CutThrough {
        /// Extra latency added per hop.
        hop_latency: f64,
    },
}

/// The paper's four machine parameters plus the switching discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Operations per time unit executed by a (relative-speed-1) processor.
    pub processor_speed: f64,
    /// Fixed cost added to every task execution (process startup time).
    pub process_startup: f64,
    /// Fixed cost added to every inter-processor message (message-passing
    /// startup time).
    pub msg_startup: f64,
    /// Data units transmitted per time unit on one link.
    pub transmission_rate: f64,
    /// Multi-hop discipline.
    pub switching: SwitchingMode,
}

impl Default for MachineParams {
    /// A neutral machine: unit speed, unit bandwidth, no startup costs,
    /// store-and-forward switching. Schedulers behave like the classic
    /// "communication = volume x hops" model under these defaults.
    fn default() -> Self {
        MachineParams {
            processor_speed: 1.0,
            process_startup: 0.0,
            msg_startup: 0.0,
            transmission_rate: 1.0,
            switching: SwitchingMode::StoreAndForward,
        }
    }
}

impl MachineParams {
    /// Validates that all parameters are usable (positive speeds/rates,
    /// non-negative startups, finite values).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.processor_speed.is_finite() && self.processor_speed > 0.0) {
            return Err(format!(
                "processor_speed must be > 0, got {}",
                self.processor_speed
            ));
        }
        if !(self.transmission_rate.is_finite() && self.transmission_rate > 0.0) {
            return Err(format!(
                "transmission_rate must be > 0, got {}",
                self.transmission_rate
            ));
        }
        if !(self.process_startup.is_finite() && self.process_startup >= 0.0) {
            return Err(format!(
                "process_startup must be >= 0, got {}",
                self.process_startup
            ));
        }
        if !(self.msg_startup.is_finite() && self.msg_startup >= 0.0) {
            return Err(format!(
                "msg_startup must be >= 0, got {}",
                self.msg_startup
            ));
        }
        if let SwitchingMode::CutThrough { hop_latency } = self.switching {
            if !(hop_latency.is_finite() && hop_latency >= 0.0) {
                return Err(format!("hop_latency must be >= 0, got {hop_latency}"));
            }
        }
        Ok(())
    }
}

/// A complete target machine: topology + parameters + routing +
/// (optionally heterogeneous) per-processor relative speeds.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    topology: Topology,
    params: MachineParams,
    routing: RoutingTable,
    /// Relative speed of each processor (1.0 = nominal).
    speeds: Vec<f64>,
}

impl Machine {
    /// Builds a machine with homogeneous unit-relative-speed processors.
    /// Panics on invalid parameters; use [`Machine::try_new`] to handle
    /// user-supplied descriptions.
    pub fn new(topology: Topology, params: MachineParams) -> Self {
        Machine::try_new(topology, params).expect("invalid machine parameters")
    }

    /// Fallible constructor validating the parameter set.
    pub fn try_new(topology: Topology, params: MachineParams) -> Result<Self, String> {
        params.validate()?;
        let routing = RoutingTable::build(&topology);
        let speeds = vec![1.0; topology.processors()];
        Ok(Machine {
            topology,
            params,
            routing,
            speeds,
        })
    }

    /// Sets a processor's relative speed (heterogeneous machines).
    pub fn set_relative_speed(&mut self, p: ProcId, speed: f64) -> Result<(), String> {
        if !(speed.is_finite() && speed > 0.0) {
            return Err(format!("relative speed must be > 0, got {speed}"));
        }
        let slot = self
            .speeds
            .get_mut(p.index())
            .ok_or_else(|| format!("no processor {p}"))?;
        *slot = speed;
        Ok(())
    }

    /// The interconnection topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The cost parameters.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// The routing table.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Number of processors.
    #[inline]
    pub fn processors(&self) -> usize {
        self.topology.processors()
    }

    /// Iterates over processor ids.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        self.topology.proc_ids()
    }

    /// Relative speed of processor `p`.
    #[inline]
    pub fn relative_speed(&self, p: ProcId) -> f64 {
        self.speeds[p.index()]
    }

    /// Time to execute a task of the given weight on processor `p`:
    /// `process_startup + weight / (processor_speed * relative_speed)`.
    #[inline]
    pub fn exec_time(&self, weight: f64, p: ProcId) -> f64 {
        self.params.process_startup
            + weight / (self.params.processor_speed * self.speeds[p.index()])
    }

    /// Time for `volume` data units to travel from `src` to `dst`.
    /// Zero when `src == dst` (local memory); otherwise the startup cost
    /// plus hop-dependent transmission per the switching mode. Returns
    /// `f64::INFINITY` when the processors are not connected.
    #[inline]
    pub fn comm_time(&self, src: ProcId, dst: ProcId, volume: f64) -> f64 {
        if src == dst {
            return 0.0;
        }
        let hops = match self.routing.hops(src, dst) {
            Some(h) => h as f64,
            None => return f64::INFINITY,
        };
        let transfer = volume / self.params.transmission_rate;
        match self.params.switching {
            SwitchingMode::StoreAndForward => self.params.msg_startup + hops * transfer,
            SwitchingMode::CutThrough { hop_latency } => {
                self.params.msg_startup + hops * hop_latency + transfer
            }
        }
    }

    /// Per-link transfer time of a message of `volume` data units — the
    /// occupancy the simulator charges one link for.
    #[inline]
    pub fn link_transfer_time(&self, volume: f64) -> f64 {
        volume / self.params.transmission_rate
    }

    /// A one-line human description of the machine.
    pub fn describe(&self) -> String {
        format!(
            "{} ({} processors, diameter {}, speed {}, proc-startup {}, msg-startup {}, rate {})",
            self.topology.name(),
            self.processors(),
            self.routing
                .diameter()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "inf".into()),
            self.params.processor_speed,
            self.params.process_startup,
            self.params.msg_startup,
            self.params.transmission_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> Machine {
        Machine::new(
            Topology::hypercube(3),
            MachineParams {
                processor_speed: 2.0,
                process_startup: 0.5,
                msg_startup: 1.0,
                transmission_rate: 4.0,
                switching: SwitchingMode::StoreAndForward,
            },
        )
    }

    #[test]
    fn exec_time_model() {
        let m = cube();
        // 10 ops at speed 2 => 5 time units + 0.5 startup
        assert!((m.exec_time(10.0, ProcId(0)) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_speed() {
        let mut m = cube();
        m.set_relative_speed(ProcId(1), 2.0).unwrap();
        assert!((m.exec_time(10.0, ProcId(1)) - (0.5 + 10.0 / 4.0)).abs() < 1e-12);
        assert!(m.set_relative_speed(ProcId(1), 0.0).is_err());
        assert!(m.set_relative_speed(ProcId(99), 1.0).is_err());
    }

    #[test]
    fn comm_time_store_and_forward() {
        let m = cube();
        // local
        assert_eq!(m.comm_time(ProcId(3), ProcId(3), 100.0), 0.0);
        // adjacent: startup 1 + 1 * 8/4 = 3
        assert!((m.comm_time(ProcId(0), ProcId(1), 8.0) - 3.0).abs() < 1e-12);
        // diameter (3 hops to processor 7): 1 + 3 * 2 = 7
        assert!((m.comm_time(ProcId(0), ProcId(7), 8.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn comm_time_cut_through() {
        let m = Machine::new(
            Topology::hypercube(3),
            MachineParams {
                msg_startup: 1.0,
                transmission_rate: 4.0,
                switching: SwitchingMode::CutThrough { hop_latency: 0.1 },
                ..MachineParams::default()
            },
        );
        // 3 hops: 1 + 3*0.1 + 8/4 = 3.3
        assert!((m.comm_time(ProcId(0), ProcId(7), 8.0) - 3.3).abs() < 1e-12);
    }

    #[test]
    fn disconnected_comm_is_infinite() {
        let t = Topology::from_edges("x", 4, &[(0, 1), (2, 3)]).unwrap();
        let m = Machine::new(t, MachineParams::default());
        assert!(m.comm_time(ProcId(0), ProcId(2), 1.0).is_infinite());
    }

    #[test]
    fn parameter_validation() {
        for bad in [
            MachineParams {
                processor_speed: 0.0,
                ..MachineParams::default()
            },
            MachineParams {
                processor_speed: f64::NAN,
                ..MachineParams::default()
            },
            MachineParams {
                transmission_rate: -1.0,
                ..MachineParams::default()
            },
            MachineParams {
                process_startup: -0.1,
                ..MachineParams::default()
            },
            MachineParams {
                msg_startup: f64::INFINITY,
                ..MachineParams::default()
            },
            MachineParams {
                switching: SwitchingMode::CutThrough { hop_latency: -1.0 },
                ..MachineParams::default()
            },
        ] {
            assert!(
                Machine::try_new(Topology::single(), bad).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn defaults_are_neutral() {
        let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
        assert_eq!(m.exec_time(7.0, ProcId(0)), 7.0);
        assert_eq!(m.comm_time(ProcId(0), ProcId(1), 5.0), 5.0);
    }

    #[test]
    fn describe_mentions_key_facts() {
        let d = cube().describe();
        assert!(d.contains("hypercube-3"), "{d}");
        assert!(d.contains("8 processors"), "{d}");
        assert!(d.contains("diameter 3"), "{d}");
    }
}
