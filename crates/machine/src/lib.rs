#![warn(missing_docs)]

//! # banger-machine — target machine descriptions
//!
//! Banger separates the parallel program from the target machine; the
//! machine side of that contract is this crate. A [`Machine`] combines:
//!
//! * an interconnection [`topology::Topology`] — the paper's Figure 2
//!   supports hypercubes, meshes, trees, stars and fully-connected
//!   networks (we add rings, tori and arbitrary graphs);
//! * the paper's **four-parameter cost model**: processor speed, process
//!   startup time, message-passing startup time, and message transmission
//!   speed ([`machine::MachineParams`]);
//! * a [`routing::RoutingTable`] of shortest paths, used both for
//!   hop-sensitive communication estimates in the scheduler and for
//!   link-level contention in the discrete-event simulator.
//!
//! ## Example
//!
//! ```
//! use banger_machine::{Machine, MachineParams, Topology};
//!
//! let m = Machine::new(Topology::hypercube(3), MachineParams::default());
//! assert_eq!(m.processors(), 8);
//! // Communication between adjacent processors is cheaper than across
//! // the full cube diameter.
//! let near = m.comm_time(0.into(), 1.into(), 100.0);
//! let far = m.comm_time(0.into(), 7.into(), 100.0);
//! assert!(near < far);
//! ```

pub mod machine;
pub mod routing;
pub mod topology;

pub use machine::{Machine, MachineParams, SwitchingMode};
pub use routing::{LinkId, RoutingTable};
pub use topology::{ProcId, Topology, TopologyError};
