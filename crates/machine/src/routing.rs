//! All-pairs shortest-path routing over a topology.
//!
//! Distances and next-hop tables are computed by one BFS per processor
//! (links are unweighted). The scheduler uses hop counts to price
//! communication; the contention model and the discrete-event simulator use
//! the precomputed per-pair [`RoutingTable::link_slice`]s to occupy
//! individual links without allocating a route per message.

use crate::topology::{ProcId, Topology};

/// Dense index of one *directed* link (each undirected topology edge yields
/// two). Indexes into per-link state tables sized by
/// [`RoutingTable::directed_links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The id as a usize, for table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Dense all-pairs hop-count and next-hop tables, plus flattened per-pair
/// link routes so the hot scheduling/simulation paths never materialise a
/// route `Vec` per message.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTable {
    n: usize,
    /// `dist[s * n + d]` = hops from `s` to `d`; `u32::MAX` if unreachable.
    dist: Vec<u32>,
    /// `next[s * n + d]` = neighbour of `s` on a shortest path to `d`;
    /// `u32::MAX` when `s == d` or unreachable.
    next: Vec<u32>,
    /// Endpoints `(a, b)` of each directed link, indexed by [`LinkId`].
    /// Ids are assigned in `(a, b)` lexicographic order.
    link_ends: Vec<(ProcId, ProcId)>,
    /// Concatenated link routes for every ordered pair, `s`-major; the
    /// `(s, d)` route occupies `pair_links[pair_offsets[s*n+d] .. pair_offsets[s*n+d+1]]`.
    pair_links: Vec<LinkId>,
    /// `n * n + 1` offsets into `pair_links`.
    pair_offsets: Vec<u32>,
}

impl RoutingTable {
    /// Builds the table with one BFS per source. Deterministic: ties are
    /// broken toward lower processor ids (neighbour lists are sorted).
    pub fn build(topo: &Topology) -> Self {
        let n = topo.processors();
        let mut dist = vec![u32::MAX; n * n];
        let mut next = vec![u32::MAX; n * n];
        let mut queue = std::collections::VecDeque::with_capacity(n);
        for s in 0..n {
            let row = s * n;
            dist[row + s] = 0;
            queue.clear();
            queue.push_back(ProcId(s as u32));
            while let Some(u) = queue.pop_front() {
                let du = dist[row + u.index()];
                for &v in topo.neighbors(u) {
                    if dist[row + v.index()] == u32::MAX {
                        dist[row + v.index()] = du + 1;
                        // First hop toward v: if u is the source, the first
                        // hop is v itself; otherwise inherit u's first hop.
                        next[row + v.index()] = if u.index() == s {
                            v.0
                        } else {
                            next[row + u.index()]
                        };
                        queue.push_back(v);
                    }
                }
            }
        }

        // Directed link ids in (a, b) lexicographic order. Adjacency lists
        // are sorted, so a simple scan assigns stable ids.
        let mut link_ends = Vec::with_capacity(2 * topo.link_count());
        let mut link_of = std::collections::HashMap::new();
        for a in 0..n {
            for &b in topo.neighbors(ProcId(a as u32)) {
                let id = LinkId(link_ends.len() as u32);
                link_ends.push((ProcId(a as u32), b));
                link_of.insert((a as u32, b.0), id);
            }
        }

        // Flatten every pair's shortest-path link route once, so the
        // schedulers and the simulator can borrow `&[LinkId]` slices instead
        // of rebuilding (and allocating) routes per message.
        let mut pair_links = Vec::new();
        let mut pair_offsets = Vec::with_capacity(n * n + 1);
        pair_offsets.push(0u32);
        for s in 0..n {
            for d in 0..n {
                if s != d && dist[s * n + d] != u32::MAX {
                    let mut cur = s as u32;
                    while cur != d as u32 {
                        let nxt = next[cur as usize * n + d];
                        debug_assert_ne!(nxt, u32::MAX);
                        pair_links.push(link_of[&(cur, nxt)]);
                        cur = nxt;
                    }
                }
                pair_offsets.push(pair_links.len() as u32);
            }
        }

        RoutingTable {
            n,
            dist,
            next,
            link_ends,
            pair_links,
            pair_offsets,
        }
    }

    /// Number of *directed* links (twice the undirected link count).
    #[inline]
    pub fn directed_links(&self) -> usize {
        self.link_ends.len()
    }

    /// Endpoints `(a, b)` of a directed link.
    #[inline]
    pub fn link_endpoints(&self, l: LinkId) -> (ProcId, ProcId) {
        self.link_ends[l.index()]
    }

    /// The precomputed shortest-path link route `s -> d`, hop by hop.
    /// Empty when `s == d` *or* when `d` is unreachable — callers that must
    /// distinguish the two check [`RoutingTable::hops`].
    #[inline]
    pub fn link_slice(&self, s: ProcId, d: ProcId) -> &[LinkId] {
        let i = s.index() * self.n + d.index();
        let lo = self.pair_offsets[i] as usize;
        let hi = self.pair_offsets[i + 1] as usize;
        &self.pair_links[lo..hi]
    }

    /// Number of processors covered.
    pub fn processors(&self) -> usize {
        self.n
    }

    /// Hop count from `s` to `d`; `None` when unreachable.
    #[inline]
    pub fn hops(&self, s: ProcId, d: ProcId) -> Option<u32> {
        let h = self.dist[s.index() * self.n + d.index()];
        (h != u32::MAX).then_some(h)
    }

    /// The network diameter (max finite hop count); `None` for a
    /// disconnected machine.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for s in 0..self.n {
            for d in 0..self.n {
                let h = self.dist[s * self.n + d];
                if h == u32::MAX {
                    return None;
                }
                best = best.max(h);
            }
        }
        Some(best)
    }

    /// Average hop distance over all ordered pairs of distinct processors.
    pub fn mean_distance(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let mut sum = 0u64;
        let mut count = 0u64;
        for s in 0..self.n {
            for d in 0..self.n {
                if s != d {
                    let h = self.dist[s * self.n + d];
                    if h != u32::MAX {
                        sum += h as u64;
                        count += 1;
                    }
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// The full shortest path from `s` to `d`, inclusive of both endpoints.
    /// Empty when unreachable; `[s]` when `s == d`.
    pub fn path(&self, s: ProcId, d: ProcId) -> Vec<ProcId> {
        if s == d {
            return vec![s];
        }
        if self.hops(s, d).is_none() {
            return Vec::new();
        }
        let mut path = vec![s];
        let mut cur = s;
        while cur != d {
            let nxt = self.next[cur.index() * self.n + d.index()];
            debug_assert_ne!(nxt, u32::MAX);
            cur = ProcId(nxt);
            path.push(cur);
        }
        path
    }

    /// The directed links `(a, b)` traversed by the shortest path `s -> d`.
    /// Allocates; hot paths use [`RoutingTable::link_slice`] instead.
    pub fn links(&self, s: ProcId, d: ProcId) -> Vec<(ProcId, ProcId)> {
        self.link_slice(s, d)
            .iter()
            .map(|&l| self.link_endpoints(l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn hypercube_hops_equal_hamming_distance() {
        let t = Topology::hypercube(4);
        let r = RoutingTable::build(&t);
        for s in 0..16u32 {
            for d in 0..16u32 {
                assert_eq!(r.hops(ProcId(s), ProcId(d)), Some((s ^ d).count_ones()));
            }
        }
        assert_eq!(r.diameter(), Some(4));
    }

    #[test]
    fn mesh_manhattan_distance() {
        let t = Topology::mesh(3, 5);
        let r = RoutingTable::build(&t);
        let id = |row: u32, col: u32| ProcId(row * 5 + col);
        assert_eq!(r.hops(id(0, 0), id(2, 4)), Some(6));
        assert_eq!(r.diameter(), Some(6));
    }

    #[test]
    fn star_diameter_two() {
        let t = Topology::star(8);
        let r = RoutingTable::build(&t);
        assert_eq!(r.diameter(), Some(2));
        assert_eq!(r.hops(ProcId(3), ProcId(5)), Some(2));
        assert_eq!(
            r.path(ProcId(3), ProcId(5)),
            vec![ProcId(3), ProcId(0), ProcId(5)]
        );
    }

    #[test]
    fn fully_connected_diameter_one() {
        let t = Topology::fully_connected(5);
        let r = RoutingTable::build(&t);
        assert_eq!(r.diameter(), Some(1));
        assert!((r.mean_distance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ring_wraps() {
        let t = Topology::ring(6);
        let r = RoutingTable::build(&t);
        assert_eq!(r.hops(ProcId(0), ProcId(5)), Some(1));
        assert_eq!(r.hops(ProcId(0), ProcId(3)), Some(3));
        assert_eq!(r.diameter(), Some(3));
    }

    #[test]
    fn paths_are_consistent_with_hops() {
        for t in [
            Topology::hypercube(3),
            Topology::mesh(3, 3),
            Topology::tree(2, 3),
            Topology::ring(7),
        ] {
            let r = RoutingTable::build(&t);
            for s in t.proc_ids() {
                for d in t.proc_ids() {
                    let p = r.path(s, d);
                    assert_eq!(p.len() as u32 - 1, r.hops(s, d).unwrap(), "{s}->{d}");
                    assert_eq!(p.first(), Some(&s));
                    assert_eq!(p.last(), Some(&d));
                    // every step is a real link
                    for w in p.windows(2) {
                        assert!(t.neighbors(w[0]).contains(&w[1]), "{:?}", w);
                    }
                }
            }
        }
    }

    #[test]
    fn self_path() {
        let t = Topology::mesh(2, 2);
        let r = RoutingTable::build(&t);
        assert_eq!(r.path(ProcId(1), ProcId(1)), vec![ProcId(1)]);
        assert!(r.links(ProcId(1), ProcId(1)).is_empty());
        assert_eq!(r.hops(ProcId(1), ProcId(1)), Some(0));
    }

    #[test]
    fn disconnected_machine() {
        let t = Topology::from_edges("x", 4, &[(0, 1), (2, 3)]).unwrap();
        let r = RoutingTable::build(&t);
        assert_eq!(r.hops(ProcId(0), ProcId(2)), None);
        assert_eq!(r.diameter(), None);
        assert!(r.path(ProcId(0), ProcId(2)).is_empty());
    }

    #[test]
    fn links_direction() {
        let t = Topology::linear(4);
        let r = RoutingTable::build(&t);
        assert_eq!(
            r.links(ProcId(0), ProcId(3)),
            vec![
                (ProcId(0), ProcId(1)),
                (ProcId(1), ProcId(2)),
                (ProcId(2), ProcId(3)),
            ]
        );
    }

    #[test]
    fn single_processor_table() {
        let t = Topology::single();
        let r = RoutingTable::build(&t);
        assert_eq!(r.diameter(), Some(0));
        assert_eq!(r.mean_distance(), 0.0);
        assert_eq!(r.directed_links(), 0);
    }

    #[test]
    fn link_slices_match_paths() {
        for t in [
            Topology::hypercube(3),
            Topology::mesh(3, 3),
            Topology::star(6),
            Topology::ring(7),
            Topology::tree(2, 3),
        ] {
            let r = RoutingTable::build(&t);
            assert_eq!(r.directed_links(), 2 * t.link_count());
            for s in t.proc_ids() {
                for d in t.proc_ids() {
                    let slice = r.link_slice(s, d);
                    // Slice endpoints reproduce the path windows exactly.
                    let from_slice: Vec<(ProcId, ProcId)> =
                        slice.iter().map(|&l| r.link_endpoints(l)).collect();
                    let from_path: Vec<(ProcId, ProcId)> =
                        r.path(s, d).windows(2).map(|w| (w[0], w[1])).collect();
                    assert_eq!(from_slice, from_path, "{s}->{d} on {}", t.name());
                    assert_eq!(slice.len() as u32, r.hops(s, d).unwrap(), "{s}->{d}");
                }
            }
        }
    }

    #[test]
    fn link_ids_are_dense_and_consistent() {
        let t = Topology::mesh(2, 3);
        let r = RoutingTable::build(&t);
        for i in 0..r.directed_links() {
            let (a, b) = r.link_endpoints(LinkId(i as u32));
            assert!(t.neighbors(a).contains(&b));
        }
        // Every directed topology edge got exactly one id.
        let mut seen: Vec<(ProcId, ProcId)> = (0..r.directed_links())
            .map(|i| r.link_endpoints(LinkId(i as u32)))
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 2 * t.link_count());
    }

    #[test]
    fn disconnected_pair_has_empty_slice() {
        let t = Topology::from_edges("x", 4, &[(0, 1), (2, 3)]).unwrap();
        let r = RoutingTable::build(&t);
        assert!(r.link_slice(ProcId(0), ProcId(2)).is_empty());
        assert!(!r.link_slice(ProcId(0), ProcId(1)).is_empty());
    }
}
