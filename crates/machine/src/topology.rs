//! Interconnection network topologies (paper Figure 2).
//!
//! A [`Topology`] is an undirected graph over processors. Constructors are
//! provided for every family the paper lists — hypercube, mesh, tree, star,
//! fully-connected — plus rings, tori, linear arrays and arbitrary edge
//! lists. A compact spec syntax (`"hypercube:3"`, `"mesh:4x4"`, ...) lets
//! command-line tools describe machines the way Banger's dialog did.

use std::fmt;

/// Identifier of a processor; a dense index into the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl ProcId {
    /// Dense index of the processor.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ProcId {
    fn from(v: u32) -> Self {
        ProcId(v)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Errors from topology construction or spec parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A parameter was out of range (e.g. zero processors).
    BadParameter(String),
    /// An edge referenced a processor outside the machine.
    UnknownProcessor(u32),
    /// The spec string could not be parsed.
    BadSpec(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::BadParameter(m) => write!(f, "bad topology parameter: {m}"),
            TopologyError::UnknownProcessor(p) => write!(f, "unknown processor {p}"),
            TopologyError::BadSpec(m) => write!(f, "bad topology spec: {m}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected interconnection network over `n` processors.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    name: String,
    n: usize,
    /// Sorted adjacency lists.
    adj: Vec<Vec<ProcId>>,
}

impl Topology {
    /// Builds a topology from an explicit undirected edge list.
    pub fn from_edges(
        name: impl Into<String>,
        n: usize,
        edges: &[(u32, u32)],
    ) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::BadParameter(
                "a machine needs at least one processor".into(),
            ));
        }
        let mut adj: Vec<Vec<ProcId>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a as usize >= n {
                return Err(TopologyError::UnknownProcessor(a));
            }
            if b as usize >= n {
                return Err(TopologyError::UnknownProcessor(b));
            }
            if a == b {
                return Err(TopologyError::BadParameter(format!(
                    "self-link on processor {a}"
                )));
            }
            if !adj[a as usize].contains(&ProcId(b)) {
                adj[a as usize].push(ProcId(b));
                adj[b as usize].push(ProcId(a));
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        Ok(Topology {
            name: name.into(),
            n,
            adj,
        })
    }

    /// A single processor with no links (the sequential baseline machine).
    pub fn single() -> Self {
        Topology::from_edges("single", 1, &[]).unwrap()
    }

    /// A `dim`-dimensional binary hypercube with `2^dim` processors;
    /// processors are adjacent iff their ids differ in exactly one bit.
    /// The degenerate 0-dimensional cube is one linkless processor, and
    /// canonicalizes to [`Topology::single`] so its name (and thus its
    /// printed spec) stays parseable — the spec syntax spells one
    /// processor `single`, never `hypercube:0`.
    pub fn hypercube(dim: u32) -> Self {
        if dim == 0 {
            return Topology::single();
        }
        let n = 1usize << dim;
        let mut edges = Vec::with_capacity(n * dim as usize / 2);
        for p in 0..n as u32 {
            for b in 0..dim {
                let q = p ^ (1 << b);
                if p < q {
                    edges.push((p, q));
                }
            }
        }
        Topology::from_edges(format!("hypercube-{dim}"), n, &edges).unwrap()
    }

    /// A `rows x cols` 2-D mesh (no wraparound).
    pub fn mesh(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1);
        let idx = |r: usize, c: usize| (r * cols + c) as u32;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
            }
        }
        Topology::from_edges(format!("mesh-{rows}x{cols}"), rows * cols, &edges).unwrap()
    }

    /// A `rows x cols` 2-D torus (mesh with wraparound links).
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2);
        let idx = |r: usize, c: usize| (r * cols + c) as u32;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                edges.push((idx(r, c), idx((r + 1) % rows, c)));
                edges.push((idx(r, c), idx(r, (c + 1) % cols)));
            }
        }
        Topology::from_edges(format!("torus-{rows}x{cols}"), rows * cols, &edges).unwrap()
    }

    /// A ring of `n` processors.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2);
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Topology::from_edges(format!("ring-{n}"), n, &edges).unwrap()
    }

    /// A linear array of `n` processors.
    pub fn linear(n: usize) -> Self {
        assert!(n >= 1);
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Topology::from_edges(format!("linear-{n}"), n, &edges).unwrap()
    }

    /// A star: processor 0 is the hub, all others connect only to it.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2);
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
        Topology::from_edges(format!("star-{n}"), n, &edges).unwrap()
    }

    /// A complete `arity`-ary tree of the given `depth` (depth 0 is a
    /// single root).
    pub fn tree(arity: usize, depth: u32) -> Self {
        assert!(arity >= 2);
        // n = (arity^(depth+1) - 1) / (arity - 1)
        let n: usize = (0..=depth).map(|d| arity.pow(d)).sum();
        let mut edges = Vec::new();
        // Children of node i are arity*i + 1 ..= arity*i + arity.
        for i in 0..n {
            for k in 1..=arity {
                let child = arity * i + k;
                if child < n {
                    edges.push((i as u32, child as u32));
                }
            }
        }
        Topology::from_edges(format!("tree-{arity}x{depth}"), n, &edges).unwrap()
    }

    /// A fully-connected machine: every processor pair has a direct link.
    pub fn fully_connected(n: usize) -> Self {
        assert!(n >= 1);
        let mut edges = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n as u32 {
            for b in a + 1..n as u32 {
                edges.push((a, b));
            }
        }
        Topology::from_edges(format!("full-{n}"), n, &edges).unwrap()
    }

    /// Parses a compact spec: `hypercube:3`, `mesh:4x4`, `torus:4x4`,
    /// `ring:8`, `linear:8`, `star:8`, `tree:2x3` (arity x depth),
    /// `full:8`, `single`.
    ///
    /// ```
    /// use banger_machine::Topology;
    /// let t = Topology::parse("mesh:3x4").unwrap();
    /// assert_eq!(t.processors(), 12);
    /// assert!(Topology::parse("klein-bottle:7").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<Self, TopologyError> {
        let bad = |m: &str| TopologyError::BadSpec(format!("{m} (in {spec:?})"));
        let (kind, args) = match spec.split_once(':') {
            Some((k, a)) => (k.trim(), a.trim()),
            None => (spec.trim(), ""),
        };
        let one = |args: &str| -> Result<usize, TopologyError> {
            args.parse().map_err(|_| bad("expected one integer"))
        };
        let two = |args: &str| -> Result<(usize, usize), TopologyError> {
            let (a, b) = args.split_once('x').ok_or_else(|| bad("expected AxB"))?;
            Ok((
                a.trim().parse().map_err(|_| bad("bad first integer"))?,
                b.trim().parse().map_err(|_| bad("bad second integer"))?,
            ))
        };
        let check = |cond: bool, m: &str| if cond { Ok(()) } else { Err(bad(m)) };
        match kind {
            "single" => Ok(Topology::single()),
            "hypercube" => {
                let d = one(args)?;
                check(
                    d >= 1,
                    "hypercube dimension must be >= 1 (one processor is spelled `single`)",
                )?;
                check(d <= 20, "hypercube dimension too large")?;
                Ok(Topology::hypercube(d as u32))
            }
            "mesh" => {
                let (r, c) = two(args)?;
                check(r >= 1 && c >= 1, "mesh needs positive extents")?;
                Ok(Topology::mesh(r, c))
            }
            "torus" => {
                let (r, c) = two(args)?;
                check(r >= 2 && c >= 2, "torus needs extents >= 2")?;
                Ok(Topology::torus(r, c))
            }
            "ring" => {
                let n = one(args)?;
                check(n >= 2, "ring needs >= 2 processors")?;
                Ok(Topology::ring(n))
            }
            "linear" => {
                let n = one(args)?;
                check(n >= 1, "linear needs >= 1 processor")?;
                Ok(Topology::linear(n))
            }
            "star" => {
                let n = one(args)?;
                check(n >= 2, "star needs >= 2 processors")?;
                Ok(Topology::star(n))
            }
            "tree" => {
                let (a, d) = two(args)?;
                check(a >= 2, "tree arity must be >= 2")?;
                check(d <= 10, "tree depth too large")?;
                Ok(Topology::tree(a, d as u32))
            }
            "full" => {
                let n = one(args)?;
                check(n >= 1, "full needs >= 1 processor")?;
                Ok(Topology::fully_connected(n))
            }
            other => Err(bad(&format!("unknown topology kind {other:?}"))),
        }
    }

    /// The topology's name (e.g. `hypercube-3`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processors.
    #[inline]
    pub fn processors(&self) -> usize {
        self.n
    }

    /// Neighbours of processor `p` in ascending id order.
    #[inline]
    pub fn neighbors(&self, p: ProcId) -> &[ProcId] {
        &self.adj[p.index()]
    }

    /// Degree of processor `p`.
    pub fn degree(&self, p: ProcId) -> usize {
        self.adj[p.index()].len()
    }

    /// Total number of (undirected) links.
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Iterates over processor ids.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.n as u32).map(ProcId)
    }

    /// True when every processor can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![ProcId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(p) = stack.pop() {
            for &q in self.neighbors(p) {
                if !seen[q.index()] {
                    seen[q.index()] = true;
                    count += 1;
                    stack.push(q);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_distance_is_hamming() {
        let t = Topology::hypercube(4);
        assert_eq!(t.processors(), 16);
        for p in 0..16u32 {
            assert_eq!(t.degree(ProcId(p)), 4);
            for &q in t.neighbors(ProcId(p)) {
                assert_eq!((p ^ q.0).count_ones(), 1);
            }
        }
        assert_eq!(t.link_count(), 16 * 4 / 2);
        assert!(t.is_connected());
    }

    #[test]
    fn mesh_shape() {
        let t = Topology::mesh(3, 4);
        assert_eq!(t.processors(), 12);
        // links: 2*4 vertical + 3*3 horizontal = 17
        assert_eq!(t.link_count(), 17);
        // corner degree 2, edge 3, centre 4
        assert_eq!(t.degree(ProcId(0)), 2);
        assert_eq!(t.degree(ProcId(1)), 3);
        assert_eq!(t.degree(ProcId(5)), 4);
        assert!(t.is_connected());
    }

    #[test]
    fn torus_regular_degree_4() {
        let t = Topology::torus(3, 3);
        for p in t.proc_ids() {
            assert_eq!(t.degree(p), 4);
        }
        assert_eq!(t.link_count(), 18);
    }

    #[test]
    fn ring_and_linear() {
        let r = Topology::ring(5);
        assert_eq!(r.link_count(), 5);
        for p in r.proc_ids() {
            assert_eq!(r.degree(p), 2);
        }
        let l = Topology::linear(5);
        assert_eq!(l.link_count(), 4);
        assert_eq!(l.degree(ProcId(0)), 1);
        assert_eq!(l.degree(ProcId(2)), 2);
    }

    #[test]
    fn star_hub() {
        let t = Topology::star(6);
        assert_eq!(t.degree(ProcId(0)), 5);
        for p in 1..6u32 {
            assert_eq!(t.degree(ProcId(p)), 1);
        }
        assert_eq!(t.link_count(), 5);
    }

    #[test]
    fn tree_sizes() {
        let t = Topology::tree(2, 3);
        assert_eq!(t.processors(), 15);
        assert_eq!(t.link_count(), 14);
        assert_eq!(t.degree(ProcId(0)), 2); // root
        assert_eq!(t.degree(ProcId(1)), 3); // internal
        assert_eq!(t.degree(ProcId(14)), 1); // leaf
        let t3 = Topology::tree(3, 2);
        assert_eq!(t3.processors(), 13);
    }

    #[test]
    fn fully_connected_complete() {
        let t = Topology::fully_connected(6);
        assert_eq!(t.link_count(), 15);
        for p in t.proc_ids() {
            assert_eq!(t.degree(p), 5);
        }
    }

    #[test]
    fn single_machine() {
        let t = Topology::single();
        assert_eq!(t.processors(), 1);
        assert_eq!(t.link_count(), 0);
        assert!(t.is_connected());
    }

    #[test]
    fn from_edges_validation() {
        assert!(Topology::from_edges("x", 0, &[]).is_err());
        assert!(matches!(
            Topology::from_edges("x", 2, &[(0, 5)]),
            Err(TopologyError::UnknownProcessor(5))
        ));
        assert!(Topology::from_edges("x", 2, &[(1, 1)]).is_err());
        // duplicate edges collapse
        let t = Topology::from_edges("x", 2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    fn disconnected_detected() {
        let t = Topology::from_edges("x", 4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!t.is_connected());
    }

    #[test]
    fn parse_specs() {
        assert_eq!(Topology::parse("hypercube:3").unwrap().processors(), 8);
        assert_eq!(Topology::parse("mesh:2x3").unwrap().processors(), 6);
        assert_eq!(Topology::parse("torus:3x3").unwrap().processors(), 9);
        assert_eq!(Topology::parse("ring:7").unwrap().processors(), 7);
        assert_eq!(Topology::parse("linear:4").unwrap().processors(), 4);
        assert_eq!(Topology::parse("star:5").unwrap().processors(), 5);
        assert_eq!(Topology::parse("tree:2x2").unwrap().processors(), 7);
        assert_eq!(Topology::parse("full:5").unwrap().processors(), 5);
        assert_eq!(Topology::parse("single").unwrap().processors(), 1);
        assert_eq!(Topology::parse(" mesh : 2x2 ").unwrap().processors(), 4);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "frobnicate:3",
            "hypercube:x",
            "hypercube:99",
            "mesh:4",
            "mesh:0x3",
            "ring:1",
            "tree:1x2",
            "star:1",
        ] {
            assert!(Topology::parse(bad).is_err(), "spec {bad:?} should fail");
        }
    }

    #[test]
    fn parse_rejects_zero_dimensions() {
        // Every zero-extent spec must fail at parse time — a degenerate
        // machine here would only surface as confusing scheduler errors
        // (or an accidental 1-processor "hypercube") downstream.
        for bad in [
            "hypercube:0",
            "mesh:0x3",
            "mesh:3x0",
            "torus:0x4",
            "ring:0",
            "linear:0",
            "star:0",
            "tree:0x2",
            "full:0",
        ] {
            let err = Topology::parse(bad).unwrap_err();
            let TopologyError::BadSpec(msg) = &err else {
                panic!("spec {bad:?}: unexpected error {err:?}");
            };
            assert!(msg.contains(&format!("{bad:?}")), "spec {bad:?}: {msg}");
        }
    }
}
