//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! vendors the subset of the proptest 1.x API the workspace's property tests
//! use: the `Strategy` trait with `prop_map` / `prop_recursive` / `boxed`,
//! tuple and range strategies, `Just`, `prop_oneof!` (weighted and
//! unweighted), `prop::collection::vec`, `prop::bool::ANY`, `any::<T>()`,
//! `ProptestConfig::with_cases`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberate and documented:
//! - **No shrinking.** A failing case reports its case index and the
//!   deterministic per-test seed; rerunning the test replays the exact
//!   sequence.
//! - **Deterministic by default.** The RNG is seeded from the test function's
//!   name, so failures reproduce across runs and machines without
//!   `.proptest-regressions` files (existing regression files are ignored).
//! - Recursive strategies are expanded eagerly to their depth bound rather
//!   than lazily, which is equivalent for generation purposes.

pub mod test_runner {
    /// Deterministic generator used to drive strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x51A5_EED5_EED5_EED5,
            }
        }

        /// Seed derived from a test's name: stable across runs and hosts.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Mirror of `proptest::test_runner::Config` (the parts we use).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!` / `prop_assert_eq!`.
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for producing random values of one type.
    ///
    /// Unlike upstream there is no value tree / shrinking: `generate` yields
    /// the final value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Eagerly builds `depth` levels of the recursive strategy, with
        /// `self` as the leaf. `_size`/`_branch` are accepted for signature
        /// compatibility; the depth bound alone limits generated values.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut s: BoxedStrategy<Self::Value> = self.boxed();
            for _ in 0..depth {
                s = f(s).boxed();
            }
            s
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between strategies; backs `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of bounds")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    let span = (b as i128 - a as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (a as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    a + (rng.unit_f64() as $t) * (b - a)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy for one primitive type.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyPrimitive<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T> Default for AnyPrimitive<T> {
        fn default() -> Self {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive::default()
                }
            }
        )*};
    }

    any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive::default()
        }
    }
}

pub mod bool {
    pub use crate::arbitrary::AnyPrimitive;

    /// Mirror of `proptest::bool::ANY`.
    pub const ANY: AnyPrimitive<bool> = AnyPrimitive(std::marker::PhantomData);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bound on collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        let s = (1usize..5, 0.0f64..1.0).prop_map(|(n, x)| n as f64 + x);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1.0..5.0).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = crate::test_runner::TestRng::from_seed(11);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(hits > 800, "expected ~900 true picks, saw {hits}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_asserts(v in prop::collection::vec(0u64..10, 1..8), flag in prop::bool::ANY) {
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.len(), v.iter().map(|&x| x as usize).filter(|&x| x < 10).count());
            if flag {
                prop_assert!(v.iter().all(|&x| x < 10));
            }
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(u64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(v) => {
                    assert!(*v < 4, "leaf outside the 0..4 base strategy: {v}");
                    1
                }
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u64..4)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }
}
